"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` path in that case).

The ``bench`` extra pulls in the pytest-benchmark harness used by the
modules under ``benchmarks/``; the engine speedup recorder
(``python benchmarks/record_perf.py [--smoke]``, which appends to
``BENCH_engine.json``) needs no extras.

The ``fast`` extra pulls in NumPy, which unlocks the vectorized columnar CSP
engine (``engine="columnar"``).  Everything works without it — the columnar
engine silently falls back to the pure-Python indexed engine, with identical
results — so NumPy stays optional rather than a hard dependency.
"""

from setuptools import setup

setup(
    extras_require={
        "bench": ["pytest-benchmark"],
        "fast": ["numpy"],
    },
)
