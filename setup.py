"""Setuptools shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package
(``pip install -e . --no-build-isolation`` falls back to the legacy
``setup.py develop`` path in that case).
"""

from setuptools import setup

setup()
