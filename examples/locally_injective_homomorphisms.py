#!/usr/bin/env python3
"""Scenario: counting locally injective homomorphisms (Corollary 6).

Locally injective homomorphisms model interference-free frequency assignments:
mapping a pattern network G into a host network G' such that no two
neighbours of any pattern vertex collide.  The paper encodes #LIHom as an
extended conjunctive query (edges become atoms, common-neighbour pairs become
disequalities) and Corollary 6 derives an FPTRAS for bounded-treewidth
patterns from Theorem 5.

This example walks through the encoding for a small pattern, shows the query
it produces, and compares exact and approximate counts for growing host
graphs.

Run with:  python examples/locally_injective_homomorphisms.py
"""

from __future__ import annotations

import time

import networkx as nx

from repro.applications import (
    count_locally_injective_homomorphisms_approx,
    count_locally_injective_homomorphisms_exact,
    lihom_query_and_database,
)
from repro.decomposition import exact_treewidth
from repro.util.estimation import relative_error
from repro.workloads import erdos_renyi_graph


def main() -> None:
    # The pattern: a path on four vertices (a "chain" of frequencies).
    pattern = nx.path_graph(4)
    print("pattern: path on 4 vertices")

    host_example = erdos_renyi_graph(8, 0.4, rng=1)
    query, _ = lihom_query_and_database(pattern, host_example)
    print(f"ECQ encoding: {query}")
    print(f"  free variables:  {len(query.free_variables)}")
    print(f"  disequalities:   {len(query.disequalities)} (common-neighbour pairs)")
    print(f"  query treewidth: {exact_treewidth(query.hypergraph())}\n")

    for host_size in (6, 8, 10):
        host = erdos_renyi_graph(host_size, 0.4, rng=host_size)
        exact = count_locally_injective_homomorphisms_exact(pattern, host)
        start = time.perf_counter()
        estimate = count_locally_injective_homomorphisms_approx(
            pattern, host, epsilon=0.35, delta=0.15, rng=host_size
        )
        elapsed = time.perf_counter() - start
        error = relative_error(estimate, exact) if exact else 0.0
        print(
            f"host with {host_size:2d} vertices: exact = {exact:6d}, "
            f"FPTRAS = {estimate:8.1f}  (rel. error {error:.3f}, {elapsed:.2f}s)"
        )


if __name__ == "__main__":
    main()
