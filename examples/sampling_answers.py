#!/usr/bin/env python3
"""Scenario: approximately uniform sampling of query answers and counting a
union of queries (the Section-6 extensions).

The script samples answers of a two-hop query over a random graph with the
self-reducibility (JVV) sampler, compares the empirical distribution with the
uniform one, and then estimates the size of a union of two queries with the
Karp–Luby estimator.

Run with:  python examples/sampling_answers.py
"""

from __future__ import annotations

import collections

from repro import parse_query
from repro.core import count_answers_exact, enumerate_answers_exact
from repro.sampling import sample_answers
from repro.unions import approx_count_union, exact_count_union
from repro.workloads import database_from_graph, erdos_renyi_graph


def main() -> None:
    database = database_from_graph(erdos_renyi_graph(9, 0.35, rng=5))
    query = parse_query("Ans(x, y) :- E(x, z), E(z, y)")

    answers = enumerate_answers_exact(query, database)
    print(f"query:          {query}")
    print(f"exact #answers: {len(answers)}")

    num_samples = 120
    samples = sample_answers(query, database, num_samples=num_samples, rng=0, exact=True)
    counts = collections.Counter(samples)
    uniform = 1.0 / len(answers)
    total_variation = 0.5 * sum(
        abs(counts.get(answer, 0) / num_samples - uniform) for answer in sorted(answers)
    )
    print(f"drew {num_samples} samples with the JVV self-reducibility sampler")
    print(f"total-variation distance to uniform: {total_variation:.3f}")
    most_common = counts.most_common(3)
    print(f"most frequent samples: {most_common}\n")

    union = [
        parse_query("Ans(x, y) :- E(x, y)"),
        parse_query("Ans(x, y) :- E(x, z), E(z, y)"),
    ]
    truth = exact_count_union(union, database)
    estimate = approx_count_union(
        union, database, epsilon=0.25, delta=0.1, rng=1, exact_components=True,
        num_samples=300,
    )
    print("union of queries (Karp–Luby):")
    print(f"  |Ans(phi_1) ∪ Ans(phi_2)| exact    = {truth}")
    print(f"  |Ans(phi_1) ∪ Ans(phi_2)| estimate = {estimate:.1f}")


if __name__ == "__main__":
    main()
