#!/usr/bin/env python3
"""Scenario: exploring the Figure-1 classification.

Given a handful of query shapes, this example computes every width measure of
their hypergraphs, reports which cell of Figure 1 the corresponding query
class falls into (does it admit an FPTRAS? an FPRAS? under which assumption is
the negative answer proved?), and which algorithm of this package applies.

Run with:  python examples/dichotomy_explorer.py
"""

from __future__ import annotations

from repro import parse_query
from repro.core import classify_query
from repro.queries.builders import (
    clique_query,
    hamiltonian_path_query,
    high_arity_acyclic_query,
    star_query,
)


def describe(name: str, query) -> None:
    report = classify_query(query)
    widths = report.widths
    verdict = report.class_verdict_if_widths_bounded
    print(f"--- {name}")
    print(f"  query:       {query}")
    print(f"  class:       {report.query_class.value}")
    print(
        "  widths:      "
        f"tw = {widths.treewidth}, hw = {widths.hypertreewidth:.1f}, "
        f"fhw = {widths.fractional_hypertreewidth:.2f}, "
        f"aw ∈ [{widths.adaptive_width.lower_bound:.2f}, "
        f"{widths.adaptive_width.upper_bound:.2f}], arity = {widths.arity}"
    )
    print(f"  FPTRAS:      {verdict.fptras.value}  ({verdict.fptras_reference})")
    print(f"  FPRAS:       {verdict.fpras.value}  ({verdict.fpras_reference})")
    print(f"  recommended: {report.recommended_algorithm}")
    print(f"               {report.recommendation_reason}\n")


def main() -> None:
    describe("two-hop CQ", parse_query("Ans(x, y) :- E(x, z), E(z, y)"))
    describe("friends DCQ (intro example)", parse_query("Ans(x) :- F(x, y), F(x, z), y != z"))
    describe(
        "non-coworker friends ECQ",
        parse_query("Ans(x) :- F(x, y), F(x, z), y != z, !W(y, z)"),
    )
    describe("footnote-4 star DCQ (k = 4)", star_query(4, with_disequalities=True))
    describe("Hamiltonian-path DCQ (Observation 10)", hamiltonian_path_query(5))
    describe("5-clique CQ (Observation 9 family)", clique_query(5))
    describe(
        "arity-4 acyclic chain (Theorems 13/16 territory)",
        high_arity_acyclic_query(num_blocks=3, block_arity=4, shared=1, num_free=3),
    )


if __name__ == "__main__":
    main()
