#!/usr/bin/env python3
"""Quickstart: parse a query, build a database, and count answers exactly and
approximately.

This reproduces the introduction's running example: an answer to

    phi(x) = ∃y ∃z  F(x, y) ∧ F(x, z) ∧ y != z

is a person with at least two (distinct) friends.  Because the query contains
a disequality it is a DCQ; its hypergraph is a star (treewidth 1, arity 2), so
Theorem 5 / Theorem 13 give an FPTRAS — and, as Observation 10 explains, an
FPTRAS is the best one can hope for once disequalities are allowed.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, approx_count_answers, count_answers_exact, parse_query
from repro.core import classify_query, fptras_count_dcq


def main() -> None:
    # A small friendship database (symmetric binary relation F).
    friendships = [
        ("alice", "bob"),
        ("alice", "carol"),
        ("bob", "carol"),
        ("dave", "alice"),
        ("erin", "dave"),
    ]
    database = Database(universe=["alice", "bob", "carol", "dave", "erin", "frank"])
    for a, b in friendships:
        database.add_fact("F", (a, b))
        database.add_fact("F", (b, a))

    # The introduction's example query.
    query = parse_query("Ans(x) :- F(x, y), F(x, z), y != z")
    print(f"query:        {query}")
    print(f"query class:  {query.query_class().value}")
    print(f"||phi||:      {query.size()}")

    # Which cell of Figure 1 does it live in, and what does the package
    # recommend running?
    report = classify_query(query)
    print(f"treewidth:    {report.widths.treewidth}")
    print(f"recommended:  {report.recommended_algorithm}")
    print(f"reason:       {report.recommendation_reason}")

    # Exact count (fine at this scale) ...
    exact = count_answers_exact(query, database)
    print(f"\nexact count:  {exact}")

    # ... the convenience wrapper (rounds the estimate) ...
    rounded = approx_count_answers(query, database, epsilon=0.2, delta=0.05, seed=0)
    print(f"approximate:  {rounded}")

    # ... and the Theorem-13 FPTRAS with full diagnostics.
    result = fptras_count_dcq(
        query, database, epsilon=0.2, delta=0.05, rng=0, return_result=True
    )
    print(f"FPTRAS:       {result.estimate:.2f}")
    print(f"oracle mode:  {result.oracle_mode}")
    print(f"EdgeFree calls: {result.statistics.edgefree_calls}")


if __name__ == "__main__":
    main()
