#!/usr/bin/env python3
"""Scenario: approximate analytics over a social network.

The paper's motivation is counting answers to select-project-join queries when
the query is small and the database is large.  This example builds a synthetic
social network (a preferential-attachment graph, so it has hubs) and runs a
small workload of CQs, DCQs and ECQs over it:

* "pairs of people with a common friend"           (CQ, Theorem 16 FPRAS)
* "pairs of *distinct* people with a common friend" (DCQ, Theorem 13 FPTRAS)
* "people with >= 2 friends who are not coworkers"  (ECQ, Theorem 5 FPTRAS)

For each query the script reports the exact count (the network is kept small
enough that the baseline still runs) and the approximate count, together with
the relative error — mirroring the accuracy benches.

Run with:  python examples/social_network_analytics.py
"""

from __future__ import annotations

import time

from repro import parse_query
from repro.core import (
    count_answers_exact,
    fpras_count_cq,
    fptras_count_dcq,
    fptras_count_ecq,
)
from repro.util.estimation import relative_error
from repro.workloads import database_from_graph, power_law_graph
from repro.util.rng import as_generator


def build_network(num_people: int, seed: int):
    """A social network with a friendship relation F and a sparse coworker
    relation W (both symmetric)."""
    rng = as_generator(seed)
    friendship_graph = power_law_graph(num_people, edges_per_vertex=2, rng=rng)
    database = database_from_graph(friendship_graph, relation="F")
    people = sorted(database.universe)
    for _ in range(num_people // 2):
        a, b = rng.choice(len(people), size=2, replace=False)
        database.add_fact("W", (people[int(a)], people[int(b)]))
        database.add_fact("W", (people[int(b)], people[int(a)]))
    return database


def main() -> None:
    database = build_network(num_people=16, seed=7)
    print(f"network size: {len(database.universe)} people, "
          f"{len(database.relation('F')) // 2} friendships, "
          f"{len(database.relation('W')) // 2} coworker pairs\n")

    workload = [
        (
            "pairs with a common friend (CQ)",
            parse_query("Ans(x, y) :- F(x, z), F(z, y)"),
            lambda q: fpras_count_cq(q, database, epsilon=0.3, delta=0.1, rng=1),
        ),
        (
            "distinct pairs with a common friend (DCQ)",
            parse_query("Ans(x, y) :- F(x, z), F(z, y), x != y"),
            lambda q: fptras_count_dcq(q, database, epsilon=0.35, delta=0.15, rng=2),
        ),
        (
            "people with two distinct friends who are not coworkers (ECQ)",
            parse_query("Ans(x) :- F(x, y), F(x, z), y != z, !W(y, z)"),
            lambda q: fptras_count_ecq(q, database, epsilon=0.35, delta=0.15, rng=3),
        ),
    ]

    for name, query, scheme in workload:
        exact = count_answers_exact(query, database)
        start = time.perf_counter()
        estimate = scheme(query)
        elapsed = time.perf_counter() - start
        error = relative_error(estimate, exact) if exact else 0.0
        print(f"{name}")
        print(f"  query:     {query}")
        print(f"  exact:     {exact}")
        print(f"  estimate:  {estimate:.1f}   (relative error {error:.3f}, "
              f"{elapsed:.2f}s)\n")


if __name__ == "__main__":
    main()
