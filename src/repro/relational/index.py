"""Positional tuple indexes for relations and table constraints.

A :class:`TupleIndex` is the shared, immutable acceleration structure behind
the indexed CSP/join engine: for a relation (or a constraint's ``allowed``
table) it stores the tuples in a fixed order and, for every argument
position, a mapping ``value -> frozenset of tuple ids`` holding that value at
that position.  With it,

* "is some allowed tuple compatible with this partial assignment?" becomes an
  intersection of a few id-sets instead of a scan of the whole table,
* GAC propagation can kill exactly the tuples that lost a domain value
  (``by_position[p][v]``) instead of re-filtering the table, and
* forward checking reads the supported neighbour values straight off the
  surviving ids.

Indexes are built once per relation per :class:`~repro.relational.structure.Structure`
version (see :meth:`Structure.relation_index`) and shared by every constraint
over that relation, so the Hom oracle pays the build cost once per database,
not once per query node.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

Value = Hashable
ValueTuple = Tuple[Value, ...]


class TupleIndex:
    """An immutable positional index over a set of same-arity tuples."""

    __slots__ = ("tuples", "allowed", "by_position", "all_ids", "arity")

    def __init__(self, tuples: Iterable[ValueTuple], arity: Optional[int] = None) -> None:
        ordered = tuple(tuples)
        self.tuples: Tuple[ValueTuple, ...] = ordered
        self.allowed: FrozenSet[ValueTuple] = frozenset(ordered)
        if arity is None:
            arity = len(ordered[0]) if ordered else 0
        self.arity: int = arity
        # The id-sets are built once and treated as immutable afterwards; the
        # engine only reads and intersects them (plain sets keep construction
        # cheap — this runs once per relation per structure version).
        buckets: Tuple[Dict[Value, Set[int]], ...] = tuple({} for _ in range(arity))
        for tid, tup in enumerate(ordered):
            for position, value in enumerate(tup):
                bucket = buckets[position]
                ids = bucket.get(value)
                if ids is None:
                    bucket[value] = {tid}
                else:
                    ids.add(tid)
        self.by_position: Tuple[Dict[Value, Set[int]], ...] = buckets
        self.all_ids: FrozenSet[int] = frozenset(range(len(ordered)))

    @classmethod
    def from_tuples(cls, tuples: Iterable[ValueTuple], arity: Optional[int] = None) -> "TupleIndex":
        """Build an index from an iterable of tuples (deduplicated; tuple ids
        are an internal detail and carry no semantics)."""
        if not isinstance(tuples, (set, frozenset)):
            tuples = set(tuples)
        return cls(tuples, arity=arity)

    def ids_for(self, position: int, value: Value) -> FrozenSet[int]:
        """Ids of the tuples holding ``value`` at ``position`` (empty set if
        none)."""
        return self.by_position[position].get(value, _EMPTY_IDS)

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return f"TupleIndex(|tuples|={len(self.tuples)}, arity={self.arity})"


_EMPTY_IDS: FrozenSet[int] = frozenset()
