"""Positional tuple indexes for relations and table constraints.

A :class:`TupleIndex` is the shared, immutable acceleration structure behind
the indexed CSP/join engine: for a relation (or a constraint's ``allowed``
table) it stores the tuples in a fixed order and, for every argument
position, a mapping ``value -> frozenset of tuple ids`` holding that value at
that position.  With it,

* "is some allowed tuple compatible with this partial assignment?" becomes an
  intersection of a few id-sets instead of a scan of the whole table,
* GAC propagation can kill exactly the tuples that lost a domain value
  (``by_position[p][v]``) instead of re-filtering the table, and
* forward checking reads the supported neighbour values straight off the
  surviving ids.

Indexes are built once per relation per :class:`~repro.relational.structure.Structure`
version (see :meth:`Structure.relation_index`) and shared by every constraint
over that relation, so the Hom oracle pays the build cost once per database,
not once per query node.

Under live updates a single-fact change must not pay the full
``O(|R| * arity)`` rebuild (re-hashing every value of every tuple), so an
index can also be **derived** from its predecessor: :meth:`with_fact_added`
and :meth:`with_fact_removed` return a *new* index sharing every untouched
id-set with the old one — the old index is never mutated, so constraints
holding it (and structure copies sharing it) keep a consistent snapshot.
Removal leaves a tombstoned slot in ``tuples`` (its id simply drops out of
``all_ids`` and the buckets); once tombstones dominate, the derivation
compacts back to a full rebuild.  Derivation is not O(1): the id-sets are
shared but the flat containers (``tuples``, ``allowed``, ``all_ids``, one
bucket dict per position) are still pointer-copied, so the win over a
rebuild is the skipped per-value hashing and id-set construction — a large
constant factor, not an asymptotic one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set, Tuple

Value = Hashable
ValueTuple = Tuple[Value, ...]


class TupleIndex:
    """An immutable positional index over a set of same-arity tuples."""

    __slots__ = ("tuples", "allowed", "by_position", "all_ids", "arity")

    def __init__(self, tuples: Iterable[ValueTuple], arity: Optional[int] = None) -> None:
        ordered = tuple(tuples)
        self.tuples: Tuple[ValueTuple, ...] = ordered
        self.allowed: FrozenSet[ValueTuple] = frozenset(ordered)
        if arity is None:
            arity = len(ordered[0]) if ordered else 0
        self.arity: int = arity
        # The id-sets are built once and treated as immutable afterwards; the
        # engine only reads and intersects them (plain sets keep construction
        # cheap — this runs once per relation per structure version).
        buckets: Tuple[Dict[Value, Set[int]], ...] = tuple({} for _ in range(arity))
        for tid, tup in enumerate(ordered):
            for position, value in enumerate(tup):
                bucket = buckets[position]
                ids = bucket.get(value)
                if ids is None:
                    bucket[value] = {tid}
                else:
                    ids.add(tid)
        self.by_position: Tuple[Dict[Value, Set[int]], ...] = buckets
        self.all_ids: FrozenSet[int] = frozenset(range(len(ordered)))

    @classmethod
    def from_tuples(cls, tuples: Iterable[ValueTuple], arity: Optional[int] = None) -> "TupleIndex":
        """Build an index from an iterable of tuples (deduplicated; tuple ids
        are an internal detail and carry no semantics)."""
        if not isinstance(tuples, (set, frozenset)):
            tuples = set(tuples)
        return cls(tuples, arity=arity)

    def ids_for(self, position: int, value: Value) -> FrozenSet[int]:
        """Ids of the tuples holding ``value`` at ``position`` (empty set if
        none)."""
        return self.by_position[position].get(value, _EMPTY_IDS)

    # ------------------------------------------------------ delta derivation
    def _derive(self) -> "TupleIndex":
        """An uninitialised sibling for the delta constructors to fill in."""
        sibling = TupleIndex.__new__(TupleIndex)
        sibling.arity = self.arity
        return sibling

    def with_fact_added(self, fact: ValueTuple) -> "TupleIndex":
        """A new index over ``tuples + {fact}``; ``self`` is untouched.

        Only the id-sets of the new fact's ``(position, value)`` buckets are
        rebuilt — every other bucket is shared with this index, skipping the
        ``O(|R| * arity)`` hashing of a full rebuild.
        """
        fact = tuple(fact)
        if self.arity and len(fact) != self.arity:
            raise ValueError(
                f"cannot add a tuple of length {len(fact)} to an index of "
                f"arity {self.arity}"
            )
        if fact in self.allowed:
            return self
        if not self.arity:
            # Arity was never pinned (empty, arity-less index): rebuild.
            return TupleIndex((fact,), arity=len(fact))
        tid = len(self.tuples)
        sibling = self._derive()
        sibling.tuples = self.tuples + (fact,)
        sibling.allowed = self.allowed | {fact}
        buckets = []
        for position, value in enumerate(fact):
            bucket = dict(self.by_position[position])
            ids = bucket.get(value)
            bucket[value] = {tid} if ids is None else ids | {tid}
            buckets.append(bucket)
        sibling.by_position = tuple(buckets)
        sibling.all_ids = self.all_ids | {tid}
        return sibling

    def with_fact_removed(self, fact: ValueTuple) -> "TupleIndex":
        """A new index over ``tuples - {fact}``; ``self`` is untouched.

        The removed tuple's slot is tombstoned: it stays in ``tuples`` (ids
        are positional) but its id leaves ``all_ids`` and every bucket, so
        the engine never visits it.  When tombstones outnumber the live
        tuples the index is compacted via a full rebuild instead.
        """
        fact = tuple(fact)
        if fact not in self.allowed:
            raise KeyError(f"tuple {fact!r} is not in the index")
        live = len(self.allowed) - 1
        if not self.arity or live * 2 < len(self.tuples) - 1:
            return TupleIndex(self.allowed - {fact}, arity=self.arity)
        ids = None
        for position, value in enumerate(fact):
            bucket_ids = self.by_position[position][value]
            ids = bucket_ids if ids is None else ids & bucket_ids
            if len(ids) == 1:
                break
        # Tuples are deduplicated, so exactly one id matches every position.
        (tid,) = (tid for tid in ids if self.tuples[tid] == fact)
        sibling = self._derive()
        sibling.tuples = self.tuples
        sibling.allowed = self.allowed - {fact}
        buckets = []
        for position, value in enumerate(fact):
            bucket = dict(self.by_position[position])
            remaining = bucket[value] - {tid}
            if remaining:
                bucket[value] = remaining
            else:
                del bucket[value]
            buckets.append(bucket)
        sibling.by_position = tuple(buckets)
        sibling.all_ids = self.all_ids - {tid}
        return sibling

    def __len__(self) -> int:
        return len(self.tuples)

    def __repr__(self) -> str:
        return f"TupleIndex(|tuples|={len(self.tuples)}, arity={self.arity})"


_EMPTY_IDS: FrozenSet[int] = frozenset()
