"""Homomorphisms between relational structures (Section 2.2).

Given structures ``A`` and ``B`` with ``sig(A) ⊆ sig(B)``, a homomorphism from
``A`` to ``B`` is a map ``h : U(A) -> U(B)`` such that every fact
``(a_1, ..., a_t) ∈ R^A`` is mapped to a fact ``(h(a_1), ..., h(a_t)) ∈ R^B``.

This module provides the ``Hom`` decision procedure used as the oracle in
Lemma 22 (and hence in the FPTRASes of Theorems 5 and 13), together with
enumeration and exact counting used as baselines in tests and benches.

The implementation reduces Hom(A, B) to a CSP (variables = U(A), domains =
U(B), one table constraint per fact of A) and solves it with the engine in
:mod:`repro.relational.csp`, whose search order follows an elimination
ordering of H(A).  For bounded-treewidth, bounded-arity left-hand sides this
matches the role of Theorem 31 (Dalmau–Kolaitis–Vardi); for the
unbounded-arity benches it stands in for Marx's Theorem 36 (see DESIGN.md,
substitution 2).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional

from repro.relational.csp import DEFAULT_ENGINE, Constraint, CSPInstance
from repro.relational.structure import Structure

Element = Hashable
Homomorphism = Dict[Element, Element]


def is_homomorphism(
    mapping: Dict[Element, Element], source: Structure, target: Structure
) -> bool:
    """Check whether ``mapping`` is a homomorphism from ``source`` to
    ``target``."""
    if not source.signature <= target.signature:
        return False
    for element in source.universe:
        if element not in mapping:
            return False
        if mapping[element] not in target.universe:
            return False
    for name, fact in source.facts():
        image = tuple(mapping[element] for element in fact)
        if not target.has_fact(name, image):
            return False
    return True


def _build_csp(
    source: Structure, target: Structure, engine: str = DEFAULT_ENGINE
) -> CSPInstance:
    """The CSP whose solutions are exactly Hom(source -> target).

    Constraints are built through the trusted fast path and share the
    target's per-relation tuple indexes (and, for the columnar engine, its
    structure-cached column arrays), so repeated Hom queries against the same
    database pay the index and encoding builds once.
    """
    if not source.signature <= target.signature:
        raise ValueError(
            "sig(A) must be a sub-signature of sig(B) for Hom(A, B) to be defined"
        )
    target_universe = target.canonical_universe()
    domains = {element: target_universe for element in source.universe}
    columnar = engine == "columnar"
    constraints: List[Constraint] = []
    for name, fact in source.facts():
        index = target.relation_index(name)
        table = target.columnar_relation(name) if columnar else None
        constraints.append(Constraint.trusted(tuple(fact), index=index, table=table))
    return CSPInstance(domains, constraints, engine=engine)


def exists_homomorphism(
    source: Structure, target: Structure, engine: str = DEFAULT_ENGINE
) -> bool:
    """The Hom decision problem: is there a homomorphism from ``source`` to
    ``target``?

    An empty source universe admits exactly one (empty) homomorphism, even if
    the target universe is empty.
    """
    if not source.universe:
        return True
    if not target.universe:
        return False
    return _build_csp(source, target, engine=engine).is_satisfiable()


def find_homomorphism(
    source: Structure, target: Structure, engine: str = DEFAULT_ENGINE
) -> Optional[Homomorphism]:
    """Return one homomorphism from ``source`` to ``target`` or ``None``."""
    if not source.universe:
        return {}
    if not target.universe:
        return None
    return _build_csp(source, target, engine=engine).solve()


def enumerate_homomorphisms(
    source: Structure,
    target: Structure,
    limit: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> Iterator[Homomorphism]:
    """Enumerate homomorphisms from ``source`` to ``target`` (optionally at
    most ``limit`` of them)."""
    if not source.universe:
        yield {}
        return
    if not target.universe:
        return
    yield from _build_csp(source, target, engine=engine).iter_solutions(limit=limit)


def count_homomorphisms(
    source: Structure, target: Structure, engine: str = DEFAULT_ENGINE
) -> int:
    """Exact |Hom(source -> target)| by enumeration (baseline / test helper;
    exponential in the worst case)."""
    if not source.universe:
        return 1
    if not target.universe:
        return 0
    return _build_csp(source, target, engine=engine).count_solutions()
