"""Relational signatures, structures/databases and the homomorphism engine.

A *signature* is a finite set of relation symbols with specified positive
arities; a *structure* (and in particular a relational *database*) consists of
a finite universe together with a relation for every symbol of its signature
(Sections 1.1 and 2.2 of the paper).  Homomorphisms between structures are the
lens through which the paper expresses query answers (Section 2.2); the
``Hom`` decision oracle needed by Lemma 22 is provided by
:mod:`repro.relational.homomorphism`.
"""

from repro.relational.signature import RelationSymbol, Signature
from repro.relational.structure import Database, Structure
from repro.relational.homomorphism import (
    count_homomorphisms,
    enumerate_homomorphisms,
    exists_homomorphism,
    find_homomorphism,
    is_homomorphism,
)
from repro.relational.csp import (
    DEFAULT_ENGINE,
    ENGINES,
    CSPInstance,
    Constraint,
    NotEqualConstraint,
    NotInRelationConstraint,
    solve_csp,
)
from repro.relational.index import TupleIndex
from repro.relational.changelog import (
    ChangeLog,
    ChangeLogGap,
    RelationDelta,
    rewind,
)
from repro.relational.io import (
    database_from_dict,
    database_to_dict,
    load_database_json,
    load_edge_list,
    load_relation_csv,
    save_database_json,
)

__all__ = [
    "RelationSymbol",
    "Signature",
    "Structure",
    "Database",
    "is_homomorphism",
    "exists_homomorphism",
    "find_homomorphism",
    "enumerate_homomorphisms",
    "count_homomorphisms",
    "CSPInstance",
    "Constraint",
    "NotEqualConstraint",
    "NotInRelationConstraint",
    "TupleIndex",
    "ChangeLog",
    "ChangeLogGap",
    "RelationDelta",
    "rewind",
    "DEFAULT_ENGINE",
    "ENGINES",
    "solve_csp",
    "database_to_dict",
    "database_from_dict",
    "save_database_json",
    "load_database_json",
    "load_relation_csv",
    "load_edge_list",
]
