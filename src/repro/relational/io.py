"""Loading and saving databases.

Small utilities so the examples, the CLI and downstream users can keep
databases in plain files:

* JSON — ``{"universe": [...], "relations": {"E": [[1, 2], ...], ...},
  "arities": {"E": 2, ...}}`` (universe may be omitted; it is then the
  active domain).  Saved files always carry ``arities``, so declared-but-
  unpopulated relations — including relations a stream of deletions emptied
  out — survive the round trip and a reloaded database re-subscribes cleanly
  against queries mentioning them.
* CSV — one file per relation, one fact per line; the relation name is the
  file's stem.
* edge lists — ``u v`` per line, loaded as a (by default symmetric) binary
  relation, the usual input format for the graph workloads.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.relational.signature import RelationSymbol, Signature
from repro.relational.structure import Database

PathLike = Union[str, Path]


def database_to_dict(database: Database) -> Dict:
    """A JSON-serialisable dictionary representation of a database.

    Every declared relation appears (empty ones as ``[]``) and ``arities``
    records the full signature, so :func:`database_from_dict` reconstructs
    declared-but-unpopulated symbols instead of refusing to guess their
    arity.
    """
    return {
        "universe": list(database.canonical_universe()),
        "relations": {
            name: sorted([list(fact) for fact in facts], key=repr)
            for name, facts in database.relations().items()
        },
        "arities": {
            symbol.name: symbol.arity for symbol in database.signature
        },
    }


def database_from_dict(data: Dict) -> Database:
    """Inverse of :func:`database_to_dict`.

    Arities are inferred from the first tuple of each relation; empty
    relations may declare their arity via ``"arities": {"R": 2}``.
    """
    universe = data.get("universe", [])
    relations = data.get("relations", {})
    arities = data.get("arities", {})
    signature = Signature()
    for name, arity in arities.items():
        signature.add(RelationSymbol(name, int(arity)))
    for name, facts in relations.items():
        facts = list(facts)
        if facts and signature.get(name) is None:
            signature.add(RelationSymbol(name, len(facts[0])))
        elif not facts and signature.get(name) is None:
            raise ValueError(
                f"relation {name!r} is empty; declare its arity under 'arities'"
            )
    database = Database(signature=signature, universe=universe)
    for name, facts in relations.items():
        for fact in facts:
            database.add_fact(name, tuple(_normalise(value) for value in fact))
    return database


def _normalise(value):
    """JSON round-trips tuples into lists and all scalars into json types;
    keep values hashable and stable."""
    if isinstance(value, list):
        return tuple(_normalise(item) for item in value)
    return value


def save_database_json(database: Database, path: PathLike) -> None:
    """Write a database to a JSON file."""
    path = Path(path)
    path.write_text(json.dumps(database_to_dict(database), indent=2, default=str))


def load_database_json(path: PathLike) -> Database:
    """Read a database from a JSON file produced by :func:`save_database_json`
    (or hand-written in the same format)."""
    path = Path(path)
    return database_from_dict(json.loads(path.read_text()))


def load_relation_csv(
    path: PathLike, relation: Optional[str] = None, database: Optional[Database] = None
) -> Database:
    """Load one relation from a CSV file (one fact per row).

    The relation name defaults to the file stem; rows must all have the same
    length.  If ``database`` is given the relation is added to it (and the
    same object returned), otherwise a fresh database is created.
    """
    path = Path(path)
    name = relation if relation is not None else path.stem
    if database is None:
        database = Database()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            database.add_fact(name, tuple(cell.strip() for cell in row))
    return database


def load_edge_list(
    path: PathLike,
    relation: str = "E",
    symmetric: bool = True,
    comment_prefix: str = "#",
) -> Database:
    """Load a whitespace-separated edge list (``u v`` per line) as a binary
    relation; the standard input format for graph benchmarks."""
    path = Path(path)
    database = Database(signature=Signature([RelationSymbol(relation, 2)]))
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line or line.startswith(comment_prefix):
            continue
        parts = line.split()
        if len(parts) != 2:
            raise ValueError(f"cannot parse edge-list line {line!r}")
        u, v = parts
        database.add_fact(relation, (u, v))
        if symmetric:
            database.add_fact(relation, (v, u))
    return database
