"""Opt-in change capture for live databases.

A :class:`ChangeLog` attaches to one :class:`~repro.relational.structure.Structure`
through its fact-observer hook and records every effective ``add_fact`` /
``remove_fact`` together with the relation version the mutation produced.
Given a :meth:`Structure.version_fingerprint` taken earlier, the log can then
reconstruct the **net per-relation delta** between that fingerprint and the
structure's current contents — the input of the incremental counting paths in
:mod:`repro.stream`.

Versions are the glue: every fact mutation bumps exactly one relation's
counter by one, so "the changes since fingerprint ``F``" are precisely the
recorded events whose version exceeds ``F``'s entry for their relation.  The
log can only answer for fingerprints taken while it was attached (and not yet
:meth:`trimmed <trim>` past); anything older raises :class:`ChangeLogGap`,
which callers treat as "recount from scratch".

Facts are netted: an insert followed by a delete of the same fact (or vice
versa) cancels, so long insert/delete churn over a small working set yields
small deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

from repro.relational.structure import Fact, Structure

#: The shape produced by :meth:`Structure.version_fingerprint`.
Fingerprint = Tuple[int, Tuple[Tuple[str, int], ...]]


class ChangeLogGap(KeyError):
    """The log cannot reconstruct the delta since the given fingerprint —
    it was attached (or trimmed) after the fingerprint was taken."""


@dataclass(frozen=True)
class RelationDelta:
    """The net change of one relation between two points in time."""

    added: FrozenSet[Fact]
    removed: FrozenSet[Fact]

    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def __len__(self) -> int:
        return len(self.added) + len(self.removed)

    def inverted(self) -> "RelationDelta":
        """The delta that undoes this one."""
        return RelationDelta(added=self.removed, removed=self.added)


#: ``{relation name: RelationDelta}`` with empty deltas omitted.
StructureDelta = Dict[str, RelationDelta]


class ChangeLog:
    """Record per-relation fact deltas of one structure, keyed by version.

    Attach with ``log = ChangeLog(database)`` (registers itself as a fact
    observer); detach with :meth:`detach`.  While attached, every effective
    mutation appends one ``(version, op, fact)`` event to the mutated
    relation's event list.

    ``relation_filter`` (optional) drops events for relations no reader will
    ever ask about — the streaming layer passes "is any live subscription
    watching this relation?", so heavy churn on unwatched relations does not
    grow the log.  Filtering is sound for :meth:`delta_since` as long as a
    relation is watched from before the fingerprint in question was taken
    (earlier filtered events are below the fingerprint and never replayed).
    """

    def __init__(self, structure: Structure, relation_filter=None) -> None:
        self._structure = structure
        self._filter = relation_filter
        # Events for version v are reconstructable iff v > floor[name]; the
        # floor starts at the version current when the log attached and rises
        # when the log is trimmed.
        self._floor: Dict[str, int] = dict(structure._relation_versions)
        self._events: Dict[str, List[Tuple[int, str, Fact]]] = {}
        self._attached = True
        structure.register_fact_observer(self._record)

    # ------------------------------------------------------------- lifecycle
    @property
    def structure(self) -> Structure:
        return self._structure

    @property
    def attached(self) -> bool:
        return self._attached

    def detach(self) -> None:
        """Stop recording (idempotent).  Recorded events stay readable."""
        if self._attached:
            self._structure.unregister_fact_observer(self._record)
            self._attached = False

    def _record(self, name: str, op: str, fact: Fact, version: int) -> None:
        if self._filter is not None and not self._filter(name):
            return
        self._events.setdefault(name, []).append((version, op, fact))

    def num_events(self) -> int:
        return sum(len(events) for events in self._events.values())

    def recorded_relations(self) -> Tuple[str, ...]:
        """Names of the relations currently holding recorded events."""
        return tuple(sorted(self._events))

    def mark_floor(self, name: str) -> None:
        """Raise ``name``'s floor to the structure's current version —
        called when a previously filtered relation starts being recorded, so
        :meth:`covers` honestly reflects the unrecorded window."""
        version = self._structure._relation_versions.get(name, 0)
        if version > self._floor.get(name, 0):
            self._floor[name] = version

    # --------------------------------------------------------------- queries
    def covers(self, fingerprint: Fingerprint) -> bool:
        """Whether the log reaches back to ``fingerprint``: for every
        relation in it, events from the fingerprinted version onward are
        still recorded (i.e. the version is at or above the log's floor).

        A detached log covers nothing — mutations after :meth:`detach` went
        unrecorded, so its deltas can no longer be trusted to reach the
        structure's *current* contents."""
        if not self._attached:
            return False
        _, relation_versions = fingerprint
        return all(
            version >= self._floor.get(name, 0)
            for name, version in relation_versions
        )

    def delta_since(self, fingerprint: Fingerprint) -> StructureDelta:
        """The net per-relation delta between ``fingerprint`` and the
        structure's current contents, restricted to the relations the
        fingerprint mentions.  Raises :class:`ChangeLogGap` when the log does
        not reach back that far (see :meth:`covers`)."""
        if not self.covers(fingerprint):
            raise ChangeLogGap(
                "change log does not cover the requested fingerprint "
                "(attached or trimmed after it was taken)"
            )
        _, relation_versions = fingerprint
        delta: StructureDelta = {}
        for name, since_version in relation_versions:
            net: Dict[Fact, int] = {}
            for version, op, fact in self._events.get(name, ()):
                if version <= since_version:
                    continue
                net[fact] = net.get(fact, 0) + (1 if op == "add" else -1)
            added = frozenset(fact for fact, sign in net.items() if sign > 0)
            removed = frozenset(fact for fact, sign in net.items() if sign < 0)
            if added or removed:
                delta[name] = RelationDelta(added=added, removed=removed)
        return delta

    # ------------------------------------------------------------ compaction
    def trim(self, fingerprint: Fingerprint) -> int:
        """Forget events at or before ``fingerprint`` (which no reader will
        ask about again), raising the floor accordingly.  Returns the number
        of events dropped.  Long-running streams call this with the oldest
        fingerprint any live subscription still holds."""
        _, relation_versions = fingerprint
        dropped = 0
        for name, version in relation_versions:
            if version > self._floor.get(name, 0):
                self._floor[name] = version
            events = self._events.get(name)
            if not events:
                continue
            kept = [event for event in events if event[0] > version]
            dropped += len(events) - len(kept)
            if kept:
                self._events[name] = kept
            else:
                del self._events[name]
        return dropped


def rewind(
    database: Structure, delta: StructureDelta
) -> Structure:
    """A copy of ``database`` with ``delta`` undone — the "old" side of an
    incremental recount.

    Relation contents are restored exactly.  The universe is *not* shrunk
    (``remove_fact`` never removes elements), so when the delta introduced
    new universe elements the rewound copy keeps them as isolated elements;
    :func:`repro.stream.delta.delta_applicable` guards the counting paths
    that would be affected.
    """
    old = database.copy()
    for name, relation_delta in delta.items():
        for fact in relation_delta.added:
            old.remove_fact(name, fact)
        for fact in relation_delta.removed:
            old.add_fact(name, fact)
    return old


__all__ = [
    "ChangeLog",
    "ChangeLogGap",
    "RelationDelta",
    "StructureDelta",
    "Fingerprint",
    "rewind",
]
