"""A small constraint-satisfaction (CSP) engine.

The homomorphism problem Hom(A, B) — the decision oracle required by
Lemma 22 and provided to it by Theorems 31 (Dalmau–Kolaitis–Vardi, bounded
treewidth) and 36 (Marx, bounded adaptive width) — is an instance of CSP:
variables are the elements of ``U(A)``, domains are ``U(B)``, and every fact
of ``A`` is a constraint whose allowed tuples are the corresponding relation
of ``B``.

The engine combines

* per-variable domain initialisation from unary projections of the
  constraints,
* generalized arc consistency (GAC) propagation, and
* backtracking search whose variable order follows an elimination ordering of
  the constraint hypergraph (min-fill), which makes the search backtrack-free
  on acyclic instances and polynomial on bounded-treewidth instances in
  practice — the role Theorem 31 plays in the paper.

It supports deciding satisfiability, finding one solution, enumerating, and
counting all solutions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.hypergraph import Hypergraph

Variable = Hashable
Value = Hashable
AssignmentTuple = Tuple[Value, ...]


@dataclass(frozen=True)
class Constraint:
    """A table constraint: the variables in ``scope`` must jointly take a
    tuple of values from ``allowed``."""

    scope: Tuple[Variable, ...]
    allowed: FrozenSet[AssignmentTuple]

    def __post_init__(self) -> None:
        for tup in self.allowed:
            if len(tup) != len(self.scope):
                raise ValueError(
                    f"allowed tuple {tup!r} does not match scope of length {len(self.scope)}"
                )

    def is_satisfied_by(self, assignment: Dict[Variable, Value]) -> bool:
        """Whether a *total* assignment of the scope satisfies the constraint."""
        return tuple(assignment[v] for v in self.scope) in self.allowed

    def consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        """Whether some allowed tuple agrees with the given partial assignment
        on the assigned scope variables."""
        positions = [
            (index, assignment[variable])
            for index, variable in enumerate(self.scope)
            if variable in assignment
        ]
        if not positions:
            return True
        return any(
            all(tup[index] == value for index, value in positions) for tup in self.allowed
        )

    def project_to(self, variable: Variable) -> Set[Value]:
        """Values of ``variable`` appearing in at least one allowed tuple."""
        values: Set[Value] = set()
        for index, scope_variable in enumerate(self.scope):
            if scope_variable == variable:
                values.update(tup[index] for tup in self.allowed)
        return values


#: Backwards/forwards-compatible alias: the table constraint is the basic kind.
TableConstraint = Constraint


@dataclass(frozen=True)
class NotEqualConstraint:
    """A binary disequality constraint ``left != right``.

    Used for the disequality atoms of DCQs/ECQs: representing them as table
    constraints would need ``|U(D)|^2`` tuples, whereas this class checks the
    predicate directly.
    """

    left: Variable
    right: Variable

    @property
    def scope(self) -> Tuple[Variable, ...]:
        return (self.left, self.right)

    def is_satisfied_by(self, assignment: Dict[Variable, Value]) -> bool:
        return assignment[self.left] != assignment[self.right]

    def consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        if self.left in assignment and self.right in assignment:
            return assignment[self.left] != assignment[self.right]
        return True


@dataclass(frozen=True)
class NotInRelationConstraint:
    """A negated table constraint: the scope tuple must *not* belong to the
    forbidden relation (used for the negated predicates of ECQs without
    materialising the ``|U(D)|^{arity}`` complement)."""

    scope: Tuple[Variable, ...]
    forbidden: FrozenSet[AssignmentTuple]

    def is_satisfied_by(self, assignment: Dict[Variable, Value]) -> bool:
        return tuple(assignment[v] for v in self.scope) not in self.forbidden

    def consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        if all(variable in assignment for variable in self.scope):
            return self.is_satisfied_by(assignment)
        return True


class CSPInstance:
    """A CSP over explicit finite domains with table constraints."""

    def __init__(
        self,
        domains: Dict[Variable, Iterable[Value]],
        constraints: Sequence[Constraint] = (),
    ) -> None:
        self._domains: Dict[Variable, Set[Value]] = {
            variable: set(values) for variable, values in domains.items()
        }
        self._constraints: List[Constraint] = []
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def variables(self) -> List[Variable]:
        return sorted(self._domains, key=repr)

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    def domain(self, variable: Variable) -> Set[Value]:
        return set(self._domains[variable])

    def add_constraint(self, constraint) -> None:
        """Add a constraint (table, disequality, or negated-table)."""
        unknown = [v for v in constraint.scope if v not in self._domains]
        if unknown:
            raise KeyError(f"constraint over unknown variables {unknown!r}")
        self._constraints.append(constraint)

    # ---------------------------------------------------------------- solving
    def constraint_hypergraph(self) -> Hypergraph:
        """Hypergraph whose vertices are variables and whose edges are the
        constraint scopes (used to pick a good search order)."""
        return Hypergraph(
            vertices=self._domains.keys(),
            edges=[frozenset(constraint.scope) for constraint in self._constraints]
            or [],
        )

    def _search_order(self) -> List[Variable]:
        """Variable order from a min-fill elimination ordering, reversed so
        that "last eliminated" variables (roughly, the most connected) are
        assigned first."""
        from repro.decomposition.treewidth import _greedy_ordering  # local import

        hypergraph = self.constraint_hypergraph()
        if hypergraph.num_edges() == 0:
            return self.variables
        ordering = _greedy_ordering(hypergraph.primal_graph(), "min_fill")
        ordered = list(reversed(ordering))
        remaining = [v for v in self.variables if v not in set(ordered)]
        return ordered + remaining

    def propagate(
        self, domains: Optional[Dict[Variable, Set[Value]]] = None
    ) -> Optional[Dict[Variable, Set[Value]]]:
        """Generalized arc consistency: repeatedly remove domain values not
        supported by every constraint.  Returns the reduced domains, or
        ``None`` if some domain becomes empty (no solution)."""
        if domains is None:
            domains = {v: set(values) for v, values in self._domains.items()}
        changed = True
        while changed:
            changed = False
            for constraint in self._constraints:
                if not isinstance(constraint, Constraint):
                    # Only table constraints participate in GAC propagation;
                    # disequalities and negated tables are checked during search.
                    continue
                scope = constraint.scope
                # Restrict allowed tuples to current domains.
                live = [
                    tup
                    for tup in constraint.allowed
                    if all(value in domains[var] for var, value in zip(scope, tup))
                ]
                if not live:
                    return None
                for index, variable in enumerate(scope):
                    supported = {tup[index] for tup in live}
                    if not domains[variable] <= supported:
                        domains[variable] &= supported
                        changed = True
                        if not domains[variable]:
                            return None
        return domains

    def _constraints_by_variable(self) -> Dict[Variable, List[Constraint]]:
        index: Dict[Variable, List[Constraint]] = {v: [] for v in self._domains}
        for constraint in self._constraints:
            for variable in set(constraint.scope):
                index[variable].append(constraint)
        return index

    def iter_solutions(self, limit: Optional[int] = None) -> Iterator[Dict[Variable, Value]]:
        """Enumerate solutions by propagation + backtracking search."""
        domains = self.propagate()
        if domains is None:
            return
        order = self._search_order()
        by_variable = self._constraints_by_variable()
        produced = 0

        def backtrack(position: int, assignment: Dict[Variable, Value]) -> Iterator[Dict[Variable, Value]]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if position == len(order):
                produced += 1
                yield dict(assignment)
                return
            variable = order[position]
            for value in sorted(domains[variable], key=repr):
                assignment[variable] = value
                consistent = all(
                    constraint.consistent_with_partial(assignment)
                    for constraint in by_variable[variable]
                )
                if consistent:
                    yield from backtrack(position + 1, assignment)
                    if limit is not None and produced >= limit:
                        del assignment[variable]
                        return
                del assignment[variable]

        yield from backtrack(0, {})

    def solve(self) -> Optional[Dict[Variable, Value]]:
        """Return one solution, or ``None`` if the instance is unsatisfiable."""
        for solution in self.iter_solutions(limit=1):
            return solution
        return None

    def is_satisfiable(self) -> bool:
        return self.solve() is not None

    def count_solutions(self) -> int:
        """Exact number of solutions (exponential in the worst case; intended
        for the small instances used as test baselines)."""
        return sum(1 for _ in self.iter_solutions())


def solve_csp(
    domains: Dict[Variable, Iterable[Value]], constraints: Sequence[Constraint]
) -> Optional[Dict[Variable, Value]]:
    """Convenience wrapper: build a :class:`CSPInstance` and return one
    solution (or ``None``)."""
    return CSPInstance(domains, constraints).solve()
