"""A small constraint-satisfaction (CSP) engine.

The homomorphism problem Hom(A, B) — the decision oracle required by
Lemma 22 and provided to it by Theorems 31 (Dalmau–Kolaitis–Vardi, bounded
treewidth) and 36 (Marx, bounded adaptive width) — is an instance of CSP:
variables are the elements of ``U(A)``, domains are ``U(B)``, and every fact
of ``A`` is a constraint whose allowed tuples are the corresponding relation
of ``B``.

The engine combines

* per-variable domain initialisation from unary projections of the
  constraints,
* generalized arc consistency (GAC) propagation, and
* backtracking search whose variable order follows an elimination ordering of
  the constraint hypergraph (min-fill), which makes the search backtrack-free
  on acyclic instances and polynomial on bounded-treewidth instances in
  practice — the role Theorem 31 plays in the paper.

It supports deciding satisfiability, finding one solution, enumerating, and
counting all solutions.

Engine architecture
-------------------
Two interchangeable engines implement the same semantics (identical solution
sets *and* identical enumeration order); select one with
``CSPInstance(..., engine=...)``:

``engine="indexed"`` (default)
    The propagation-based engine.  Every table :class:`Constraint` carries a
    positional :class:`~repro.relational.index.TupleIndex` over its allowed
    tuples — ``(position, value) -> frozenset of tuple ids`` — which is
    shared across constraints over the same relation when built via
    :meth:`Structure.relation_index` and :meth:`Constraint.trusted`.
    On top of the indexes:

    * ``consistent_with_partial`` intersects the id-sets of the assigned
      scope positions (smallest bucket first) instead of scanning the table;
    * :meth:`CSPInstance.propagate` runs a support-counting GAC (GAC4-style):
      it materialises the live tuple ids and per-position value counts once,
      then drains a worklist of ``(variable, removed value)`` events, killing
      exactly the tuples indexed under the removed value and decrementing
      supports — no full fixpoint re-scans;
    * search computes the min-fill variable order and a canonical
      (repr-sorted) per-variable value order **once**, and forward-checks
      each assignment: the surviving tuple ids of every touched constraint
      prune the unassigned neighbours' domains (with an undo trail), so dead
      branches are cut before recursing.

``engine="naive"``
    The original scan-based engine, retained verbatim for differential
    testing and benchmarking: ``consistent_with_partial`` scans ``allowed``,
    ``propagate`` re-filters every table to its live tuples until a full
    fixpoint round changes nothing, and the search re-sorts the domain of the
    current variable at every node.

``engine="columnar"``
    The vectorized engine over :mod:`repro.relational.columnar` storage:
    every value is interned to an int32 code by its position in the
    repr-sorted universe, each table constraint becomes one contiguous code
    array per scope position, and

    * GAC propagation keeps per-(constraint, position) support counts as
      ``np.bincount`` arrays over codes, killing rows with boolean-mask
      intersections and decrementing supports in bulk when domain values die;
    * forward checking intersects per-column row groups (stable argsort +
      binary-searched group boundaries) with ``np.intersect1d`` and prunes
      neighbour domains through scatter masks instead of Python set algebra;
    * search walks codes in ascending order — which *is* the repr-sorted
      value order — so it enumerates the exact solutions, in the exact order,
      of the indexed engine, decoding codes to values only at yield time.

    When NumPy is not installed the engine resolves to ``"indexed"`` at
    construction; when a universe exceeds the int32 code space (or a caller
    passes domains outside the interned universe) the instance silently runs
    the indexed code paths instead — same answers, scalar speed.

All engines treat :class:`NotEqualConstraint` and
:class:`NotInRelationConstraint` the same way during propagation (they do not
participate in GAC); the indexed and columnar engines additionally
forward-check disequalities by deleting the just-assigned value from the
partner's domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.hypergraph import Hypergraph
from repro.relational import columnar as _columnar
from repro.relational.columnar import ColumnarRelation, UniverseEncoder
from repro.relational.index import TupleIndex

Variable = Hashable
Value = Hashable
AssignmentTuple = Tuple[Value, ...]

#: The engines understood by :class:`CSPInstance`.
ENGINES = ("indexed", "naive", "columnar")
DEFAULT_ENGINE = "indexed"


@dataclass(frozen=True)
class Constraint:
    """A table constraint: the variables in ``scope`` must jointly take a
    tuple of values from ``allowed``."""

    scope: Tuple[Variable, ...]
    allowed: FrozenSet[AssignmentTuple]

    def __post_init__(self) -> None:
        for tup in self.allowed:
            if len(tup) != len(self.scope):
                raise ValueError(
                    f"allowed tuple {tup!r} does not match scope of length {len(self.scope)}"
                )

    @classmethod
    def trusted(
        cls,
        scope: Sequence[Variable],
        allowed: Optional[Iterable[AssignmentTuple]] = None,
        index: Optional[TupleIndex] = None,
        table: Optional[ColumnarRelation] = None,
    ) -> "Constraint":
        """Fast-path constructor for internally-built constraints.

        Skips the O(|allowed|) tuple-length validation of ``__post_init__``
        (the caller vouches that the arities match) and optionally attaches a
        pre-built, shared :class:`TupleIndex` — typically
        ``structure.relation_index(name)`` — so sibling constraints over the
        same relation share one index.  ``allowed`` defaults to
        ``index.allowed`` when an index is given.  ``table`` optionally
        attaches the relation's shared :class:`ColumnarRelation` (typically
        ``structure.columnar_relation(name)``) so the columnar engine reuses
        the structure-cached column arrays instead of re-encoding.
        """
        if allowed is None:
            if index is None:
                raise ValueError("trusted() needs either allowed tuples or an index")
            allowed_set = index.allowed
        else:
            allowed_set = allowed if isinstance(allowed, frozenset) else frozenset(allowed)
        self = object.__new__(cls)
        object.__setattr__(self, "scope", tuple(scope))
        object.__setattr__(self, "allowed", allowed_set)
        if index is not None:
            object.__setattr__(self, "_index", index)
        if table is not None:
            object.__setattr__(self, "_table", table)
        return self

    @property
    def table(self) -> Optional[ColumnarRelation]:
        """The shared columnar storage attached by :meth:`trusted`, if any
        (the columnar engine encodes ad hoc when absent)."""
        return self.__dict__.get("_table")

    @property
    def index(self) -> TupleIndex:
        """The positional index over ``allowed`` (built lazily and cached; a
        shared index may have been attached by :meth:`trusted`)."""
        existing = self.__dict__.get("_index")
        if existing is None:
            existing = TupleIndex.from_tuples(self.allowed, arity=len(self.scope))
            object.__setattr__(self, "_index", existing)
        return existing

    def is_satisfied_by(self, assignment: Dict[Variable, Value]) -> bool:
        """Whether a *total* assignment of the scope satisfies the constraint."""
        return tuple(assignment[v] for v in self.scope) in self.allowed

    def consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        """Whether some allowed tuple agrees with the given partial assignment
        on the assigned scope variables (index-intersection, not a scan)."""
        index = self.index
        buckets: List[FrozenSet[int]] = []
        for position, variable in enumerate(self.scope):
            if variable in assignment:
                bucket = index.by_position[position].get(assignment[variable]) if index.tuples else None
                if not bucket:
                    # No allowed tuple holds this value at this position —
                    # unless nothing is assigned at all, the partial fails.
                    return False
                buckets.append(bucket)
        if not buckets:
            return True
        if len(buckets) == 1:
            return True
        buckets.sort(key=len)
        ids = buckets[0]
        for bucket in buckets[1:]:
            ids = ids & bucket
            if not ids:
                return False
        return True

    def scan_consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        """The original O(|allowed| * |scope|) scan, kept for the naive
        engine."""
        positions = [
            (index, assignment[variable])
            for index, variable in enumerate(self.scope)
            if variable in assignment
        ]
        if not positions:
            return True
        return any(
            all(tup[index] == value for index, value in positions) for tup in self.allowed
        )

    def project_to(self, variable: Variable) -> Set[Value]:
        """Values of ``variable`` appearing in at least one allowed tuple."""
        index = self.index
        values: Set[Value] = set()
        for position, scope_variable in enumerate(self.scope):
            if scope_variable == variable and position < len(index.by_position):
                values.update(index.by_position[position].keys())
        return values


#: Backwards/forwards-compatible alias: the table constraint is the basic kind.
TableConstraint = Constraint


@dataclass(frozen=True)
class NotEqualConstraint:
    """A binary disequality constraint ``left != right``.

    Used for the disequality atoms of DCQs/ECQs: representing them as table
    constraints would need ``|U(D)|^2`` tuples, whereas this class checks the
    predicate directly.
    """

    left: Variable
    right: Variable

    @property
    def scope(self) -> Tuple[Variable, ...]:
        return (self.left, self.right)

    def is_satisfied_by(self, assignment: Dict[Variable, Value]) -> bool:
        return assignment[self.left] != assignment[self.right]

    def consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        if self.left in assignment and self.right in assignment:
            return assignment[self.left] != assignment[self.right]
        return True


@dataclass(frozen=True)
class NotInRelationConstraint:
    """A negated table constraint: the scope tuple must *not* belong to the
    forbidden relation (used for the negated predicates of ECQs without
    materialising the ``|U(D)|^{arity}`` complement)."""

    scope: Tuple[Variable, ...]
    forbidden: FrozenSet[AssignmentTuple]

    def is_satisfied_by(self, assignment: Dict[Variable, Value]) -> bool:
        return tuple(assignment[v] for v in self.scope) not in self.forbidden

    def consistent_with_partial(self, assignment: Dict[Variable, Value]) -> bool:
        if all(variable in assignment for variable in self.scope):
            return self.is_satisfied_by(assignment)
        return True


class _TableState:
    """Mutable GAC bookkeeping for one table constraint: the live tuple ids
    and, per scope position, the support count of every surviving value."""

    __slots__ = ("constraint", "index", "live", "counts")

    def __init__(self, constraint: Constraint, live: Set[int]) -> None:
        self.constraint = constraint
        self.index = constraint.index
        self.live = live
        tuples = self.index.tuples
        counts: List[Dict[Value, int]] = [dict() for _ in constraint.scope]
        for tid in live:
            for position, value in enumerate(tuples[tid]):
                bucket = counts[position]
                bucket[value] = bucket.get(value, 0) + 1
        self.counts = counts


#: Sentinel: "the columnar engine cannot serve this call" (fall back to the
#: indexed code paths) — distinct from ``None``, which means "unsatisfiable".
_COLUMNAR_UNSET = object()


class _ColumnarContext:
    """Per-instance columnar preliminaries: the interned encoder and, for
    every table constraint, its column arrays and scope variable indexes."""

    __slots__ = ("encoder", "var_list", "var_index", "tables")

    def __init__(
        self,
        encoder: UniverseEncoder,
        var_list: List[Variable],
        tables: List[Tuple[Constraint, ColumnarRelation, Tuple[int, ...]]],
    ) -> None:
        self.encoder = encoder
        self.var_list = var_list
        self.var_index = {variable: i for i, variable in enumerate(var_list)}
        self.tables = tables


class _ColumnarTableState:
    """Mutable vectorized GAC bookkeeping for one table constraint: a live-row
    boolean mask and one ``np.bincount`` support array per scope position."""

    __slots__ = ("constraint", "rel", "scope_idx", "live", "counts")

    def __init__(self, constraint, rel, scope_idx, live, counts) -> None:
        self.constraint = constraint
        self.rel = rel
        self.scope_idx = scope_idx
        self.live = live
        self.counts = counts


class _ColumnarSearchTable:
    """Search-time view of one table constraint: columns compressed to the
    propagation-live rows, plus lazily built per-node lookup structures.
    The live rows never change during search (only the domain masks do), so
    everything here is computed at most once per search and then served by
    dict/set lookups — the per-node work must not pay NumPy's per-call
    overhead on tiny arrays:

    * ``buckets(position)`` — code -> row-id array (group-by, built from one
      stable argsort);
    * ``has_pair`` — binary tables get an int-keyed row set, turning the
      "both scope variables assigned" check into one Python set probe;
    * ``support_mask`` — binary tables get a cached boolean mask over the
      codes of the opposite position, so forward-checking one assignment is
      a single vectorized AND against the domain mask.
    """

    __slots__ = ("cols", "n_codes", "_buckets", "_masks", "_pairs")

    def __init__(self, state: _ColumnarTableState, n_codes: int) -> None:
        np = _columnar.np
        rel = state.rel
        if state.live.all():
            self.cols = rel.columns
        else:
            live_idx = np.flatnonzero(state.live)
            self.cols = tuple(column[live_idx] for column in rel.columns)
        self.n_codes = n_codes
        self._buckets: List[Optional[Dict[int, object]]] = [None] * len(self.cols)
        self._masks: List[Optional[Dict[int, object]]] = [None] * len(self.cols)
        self._pairs: Optional[Set[int]] = None

    def buckets(self, position: int) -> Dict[int, object]:
        """code -> ascending row-id array at ``position`` (codes with rows)."""
        groups = self._buckets[position]
        if groups is None:
            np = _columnar.np
            groups = {}
            column = self.cols[position]
            if column.size:
                order = np.argsort(column, kind="stable")
                sorted_codes = column[order]
                boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
                starts = np.concatenate(([0], boundaries))
                for code, chunk in zip(
                    sorted_codes[starts].tolist(), np.split(order, boundaries)
                ):
                    groups[code] = chunk
            self._buckets[position] = groups
        return groups

    def has_pair(self, code0: int, code1: int) -> bool:
        """Membership probe for binary tables: is ``(code0, code1)`` a row?"""
        pairs = self._pairs
        if pairs is None:
            np = _columnar.np
            keys = self.cols[0].astype(np.int64) * self.n_codes + self.cols[1]
            pairs = self._pairs = set(keys.tolist())
        return code0 * self.n_codes + code1 in pairs

    def support_mask(self, assigned_position: int, code: int):
        """For binary tables: the boolean mask (over codes) of the opposite
        position's values co-occurring with ``code`` — cached per code."""
        masks = self._masks[assigned_position]
        if masks is None:
            masks = {}
            self._masks[assigned_position] = masks
        mask = masks.get(code)
        if mask is None:
            np = _columnar.np
            mask = np.zeros(self.n_codes, dtype=bool)
            bucket = self.buckets(assigned_position).get(code)
            if bucket is not None:
                mask[self.cols[1 - assigned_position][bucket]] = True
            masks[code] = mask
        return mask


class CSPInstance:
    """A CSP over explicit finite domains with table constraints.

    Parameters
    ----------
    domains:
        Mapping from variable to an iterable of candidate values.
    constraints:
        Table, disequality, or negated-table constraints.
    engine:
        ``"indexed"`` (default) for the propagation-based engine,
        ``"naive"`` for the original scan-based one, or ``"columnar"`` for
        the vectorized NumPy engine; see the module docstring's "Engine
        architecture" section.  ``"columnar"`` resolves to ``"indexed"``
        when NumPy is not installed.
    search_order:
        Optional pre-computed variable order (skips the min-fill computation;
        used by callers that solve many instances over the same scopes, e.g.
        the EdgeFree oracle).
    """

    def __init__(
        self,
        domains: Dict[Variable, Iterable[Value]],
        constraints: Sequence[Constraint] = (),
        engine: str = DEFAULT_ENGINE,
        search_order: Optional[Sequence[Variable]] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        if engine == "columnar" and not _columnar.columnar_available():
            engine = "indexed"
        self._engine = engine
        # Keep the raw domain iterables: the columnar context recognises the
        # shared canonical-universe tuple by identity and skips per-value
        # re-encoding for full-universe domains (the common builder case).
        self._domain_sources: Dict[Variable, object] = dict(domains)
        self._columnar_ctx: object = _COLUMNAR_UNSET
        self._domains: Dict[Variable, Set[Value]] = {
            variable: set(values) for variable, values in domains.items()
        }
        self._variables_cache: Optional[List[Variable]] = None
        self._order_hint: Optional[List[Variable]] = (
            list(search_order) if search_order is not None else None
        )
        self._order_cache: Optional[List[Variable]] = None
        self._by_variable_cache: Optional[Dict[Variable, List[Constraint]]] = None
        self._constraints: List[Constraint] = []
        for constraint in constraints:
            self.add_constraint(constraint)

    @property
    def engine(self) -> str:
        return self._engine

    @property
    def variables(self) -> List[Variable]:
        if self._variables_cache is None:
            self._variables_cache = sorted(self._domains, key=repr)
        return list(self._variables_cache)

    @property
    def constraints(self) -> List[Constraint]:
        return list(self._constraints)

    def domain(self, variable: Variable) -> Set[Value]:
        return set(self._domains[variable])

    def add_constraint(self, constraint) -> None:
        """Add a constraint (table, disequality, or negated-table)."""
        unknown = [v for v in constraint.scope if v not in self._domains]
        if unknown:
            raise KeyError(f"constraint over unknown variables {unknown!r}")
        self._constraints.append(constraint)
        self._order_cache = None
        self._by_variable_cache = None
        self._columnar_ctx = _COLUMNAR_UNSET

    # ---------------------------------------------------------------- solving
    def constraint_hypergraph(self) -> Hypergraph:
        """Hypergraph whose vertices are variables and whose edges are the
        constraint scopes (used to pick a good search order)."""
        return Hypergraph(
            vertices=self._domains.keys(),
            edges=[frozenset(constraint.scope) for constraint in self._constraints]
            or [],
        )

    def search_order(self) -> List[Variable]:
        """Variable order from a min-fill elimination ordering, reversed so
        that "last eliminated" variables (roughly, the most connected) are
        assigned first.  Computed once per instance and cached."""
        if self._order_cache is None:
            if self._order_hint is not None:
                known = set(self._order_hint)
                self._order_cache = list(self._order_hint) + [
                    v for v in self.variables if v not in known
                ]
            else:
                from repro.decomposition.treewidth import _greedy_ordering  # local import

                hypergraph = self.constraint_hypergraph()
                if hypergraph.num_edges() == 0:
                    self._order_cache = self.variables
                else:
                    ordering = _greedy_ordering(hypergraph.primal_graph(), "min_fill")
                    ordered = list(reversed(ordering))
                    remaining = [v for v in self.variables if v not in set(ordered)]
                    self._order_cache = ordered + remaining
        return list(self._order_cache)

    # Backwards-compatible private alias.
    _search_order = search_order

    def propagate(
        self, domains: Optional[Dict[Variable, Set[Value]]] = None
    ) -> Optional[Dict[Variable, Set[Value]]]:
        """Generalized arc consistency: remove domain values not supported by
        every table constraint.  Returns the reduced domains, or ``None`` if
        some domain becomes empty (no solution).  All engines compute the
        same fixpoint; they differ only in how they reach it."""
        trusted_sources = domains is None
        if domains is None:
            domains = {v: set(values) for v, values in self._domains.items()}
        if self._engine == "naive":
            return self._propagate_naive(domains)
        if self._engine == "columnar":
            outcome = self._propagate_columnar(domains, trusted_sources)
            if outcome is not _COLUMNAR_UNSET:
                return outcome
        return self._propagate_indexed(domains)

    def _propagate_naive(
        self, domains: Dict[Variable, Set[Value]]
    ) -> Optional[Dict[Variable, Set[Value]]]:
        """Full-fixpoint GAC by re-filtering every table until stable (the
        original implementation, kept for the naive engine)."""
        changed = True
        while changed:
            changed = False
            for constraint in self._constraints:
                if not isinstance(constraint, Constraint):
                    # Only table constraints participate in GAC propagation;
                    # disequalities and negated tables are checked during search.
                    continue
                scope = constraint.scope
                # Restrict allowed tuples to current domains.
                live = [
                    tup
                    for tup in constraint.allowed
                    if all(value in domains[var] for var, value in zip(scope, tup))
                ]
                if not live:
                    return None
                for index, variable in enumerate(scope):
                    supported = {tup[index] for tup in live}
                    if not domains[variable] <= supported:
                        domains[variable] &= supported
                        changed = True
                        if not domains[variable]:
                            return None
        return domains

    def _propagate_indexed(
        self, domains: Dict[Variable, Set[Value]]
    ) -> Optional[Dict[Variable, Set[Value]]]:
        """Support-counting GAC with a worklist of removed values (GAC4-style):
        only constraints whose variables actually shrank are revisited, and
        each revisit touches only the tuples indexed under the removed value."""
        states: List[_TableState] = []
        occurrences: Dict[Variable, List[Tuple[_TableState, Tuple[int, ...]]]] = {}
        worklist: List[Tuple[Variable, Value]] = []

        # Build each table's live set under the initial domains, its support
        # counts, and the initial domain restrictions.
        for constraint in self._constraints:
            if not isinstance(constraint, Constraint):
                continue
            index = constraint.index
            scope = constraint.scope
            live = set(index.all_ids)
            for position, variable in enumerate(scope):
                if not live:
                    break
                domain = domains[variable]
                bucket = index.by_position[position]
                if len(domain) * 4 < len(bucket):
                    # Small domain (e.g. variables pinned by the streaming
                    # delta probes): gather the surviving ids directly
                    # instead of subtracting every missing value's bucket.
                    kept: Set[int] = set()
                    for value in domain:
                        ids = bucket.get(value)
                        if ids:
                            kept |= ids
                    live &= kept
                    continue
                missing = [value for value in bucket if value not in domain]
                if not missing:
                    continue
                if len(missing) == len(bucket):
                    live.clear()
                    break
                for value in missing:
                    live.difference_update(bucket[value])
            if not live:
                return None
            state = _TableState(constraint, live)
            states.append(state)
            positions_by_variable: Dict[Variable, List[int]] = {}
            for position, variable in enumerate(scope):
                positions_by_variable.setdefault(variable, []).append(position)
            for variable, positions in positions_by_variable.items():
                occurrences.setdefault(variable, []).append((state, tuple(positions)))
            for position, variable in enumerate(scope):
                supported = state.counts[position]
                domain = domains[variable]
                if not domain <= supported.keys():
                    removed = domain - supported.keys()
                    domain -= removed
                    if not domain:
                        return None
                    worklist.extend((variable, value) for value in removed)

        # Drain the worklist: each removed (variable, value) kills exactly the
        # live tuples indexed under it, decrementing supports and possibly
        # removing further values.
        while worklist:
            variable, value = worklist.pop()
            for state, positions in occurrences.get(variable, ()):
                live = state.live
                if not live:
                    continue
                index = state.index
                tuples = index.tuples
                counts = state.counts
                scope = state.constraint.scope
                for position in positions:
                    bucket = index.by_position[position].get(value)
                    if not bucket:
                        continue
                    dead = live & bucket
                    if not dead:
                        continue
                    live -= dead
                    if not live:
                        return None
                    for tid in dead:
                        for position2, value2 in enumerate(tuples[tid]):
                            count_bucket = counts[position2]
                            remaining = count_bucket[value2] - 1
                            if remaining:
                                count_bucket[value2] = remaining
                            else:
                                del count_bucket[value2]
                                variable2 = scope[position2]
                                domain2 = domains[variable2]
                                if value2 in domain2:
                                    domain2.discard(value2)
                                    if not domain2:
                                        return None
                                    worklist.append((variable2, value2))
        return domains

    # ------------------------------------------------------------- columnar
    def _columnar_context(self) -> Optional[_ColumnarContext]:
        """Build (and cache) the columnar preliminaries, or ``None`` when the
        instance cannot be interned (NumPy absent, int32 overflow)."""
        if self._columnar_ctx is not _COLUMNAR_UNSET:
            return self._columnar_ctx
        self._columnar_ctx = self._build_columnar_context()
        return self._columnar_ctx

    def _build_columnar_context(self) -> Optional[_ColumnarContext]:
        if not _columnar.columnar_available():
            return None
        table_constraints = [c for c in self._constraints if isinstance(c, Constraint)]
        # Preferred path: every table carries a shared ColumnarRelation from
        # one structure (one encoder), and every domain is covered by it.
        shared: Optional[UniverseEncoder] = None
        use_shared = bool(table_constraints)
        for constraint in table_constraints:
            attached = constraint.__dict__.get("_table")
            if attached is None:
                use_shared = False
                break
            if shared is None:
                shared = attached.encoder
            elif attached.encoder is not shared:
                use_shared = False
                break
        if use_shared and shared is not None:
            code_of = shared.code_of
            for variable, source in self._domain_sources.items():
                if source is shared.values:
                    continue
                if not all(value in code_of for value in self._domains[variable]):
                    use_shared = False
                    break
        var_list = self.variables
        var_pos = {variable: i for i, variable in enumerate(var_list)}
        if use_shared and shared is not None:
            tables = [
                (
                    constraint,
                    constraint.__dict__["_table"],
                    tuple(var_pos[v] for v in constraint.scope),
                )
                for constraint in table_constraints
            ]
            return _ColumnarContext(shared, var_list, tables)
        # Generic path: intern every value the instance mentions, repr-sorted
        # (so ascending codes still match the canonical value order).
        seen: Set[Value] = set()
        for domain in self._domains.values():
            seen |= domain
        for constraint in table_constraints:
            for tup in constraint.allowed:
                seen.update(tup)
        ordered = sorted(seen, key=repr)
        if len(ordered) > _columnar._INT32_LIMIT:
            return None
        encoder = UniverseEncoder(ordered)
        tables = []
        for constraint in table_constraints:
            rel = ColumnarRelation.from_facts(
                constraint.allowed, len(constraint.scope), encoder
            )
            if rel is None:
                return None
            tables.append(
                (constraint, rel, tuple(var_pos[v] for v in constraint.scope))
            )
        return _ColumnarContext(encoder, var_list, tables)

    def _columnar_masks(self, ctx, domains, trusted_sources):
        """Per-variable domain bit-masks over codes, or ``None`` when some
        domain value falls outside the encoder (caller falls back)."""
        np = _columnar.np
        encoder = ctx.encoder
        code_of = encoder.code_of
        n_codes = len(encoder)
        masks = []
        for variable in ctx.var_list:
            domain = domains[variable]
            if (
                trusted_sources
                and self._domain_sources.get(variable) is encoder.values
                and len(domain) == n_codes
            ):
                masks.append(np.ones(n_codes, dtype=bool))
                continue
            mask = np.zeros(n_codes, dtype=bool)
            try:
                codes = [code_of[value] for value in domain]
            except KeyError:
                return None
            if codes:
                mask[np.fromiter(codes, dtype=np.int64, count=len(codes))] = True
            masks.append(mask)
        return masks

    def _columnar_fixpoint(self, domains, trusted_sources):
        """Vectorized GAC to the same fixpoint as the other engines.

        Returns ``(masks, states, ctx)`` at the fixpoint, ``None`` when
        unsatisfiable, or ``_COLUMNAR_UNSET`` when the columnar engine cannot
        serve this call (caller falls back to the indexed paths).
        """
        ctx = self._columnar_context()
        if ctx is None:
            return _COLUMNAR_UNSET
        np = _columnar.np
        try:
            masks = self._columnar_masks(ctx, domains, trusted_sources)
        except KeyError:
            masks = None
        if masks is None:
            return _COLUMNAR_UNSET
        n_codes = len(ctx.encoder)
        states: List[_ColumnarTableState] = []
        occurrences: Dict[int, List[Tuple[_ColumnarTableState, Tuple[int, ...]]]] = {}
        pending: List[int] = []
        queued: Set[int] = set()

        def enqueue(vi: int) -> None:
            if vi not in queued:
                queued.add(vi)
                pending.append(vi)

        for constraint, rel, scope_idx in ctx.tables:
            if rel.num_rows == 0:
                return None
            live = np.ones(rel.num_rows, dtype=bool)
            for position, vi in enumerate(scope_idx):
                live &= masks[vi][rel.columns[position]]
            if not live.any():
                return None
            live_idx = np.flatnonzero(live)
            counts = [
                np.bincount(rel.columns[position][live_idx], minlength=n_codes)
                for position in range(len(scope_idx))
            ]
            state = _ColumnarTableState(constraint, rel, scope_idx, live, counts)
            states.append(state)
            positions_by_vi: Dict[int, List[int]] = {}
            for position, vi in enumerate(scope_idx):
                positions_by_vi.setdefault(vi, []).append(position)
            for vi, positions in positions_by_vi.items():
                occurrences.setdefault(vi, []).append((state, tuple(positions)))
            for position, vi in enumerate(scope_idx):
                supported = counts[position] > 0
                mask = masks[vi]
                if (mask & ~supported).any():
                    mask &= supported
                    if not mask.any():
                        return None
                    enqueue(vi)

        # Drain the worklist: a shrunken variable kills the live rows holding
        # its dead codes, and the kills are folded back into the support
        # counts with one bulk bincount decrement per (constraint, position).
        while pending:
            vi = pending.pop()
            queued.discard(vi)
            mask_v = masks[vi]
            for state, positions in occurrences.get(vi, ()):
                live = state.live
                dead = None
                for position in positions:
                    gone = live & ~mask_v[state.rel.columns[position]]
                    dead = gone if dead is None else (dead | gone)
                if dead is None or not dead.any():
                    continue
                live &= ~dead
                if not live.any():
                    return None
                dead_idx = np.flatnonzero(dead)
                for position, vq in enumerate(state.scope_idx):
                    decrement = np.bincount(
                        state.rel.columns[position][dead_idx], minlength=n_codes
                    )
                    support = state.counts[position]
                    support -= decrement
                    mask_q = masks[vq]
                    newly_dead = mask_q & (decrement > 0) & (support == 0)
                    if newly_dead.any():
                        mask_q &= ~newly_dead
                        if not mask_q.any():
                            return None
                        enqueue(vq)
        return masks, states, ctx

    def _propagate_columnar(self, domains, trusted_sources):
        """GAC via :meth:`_columnar_fixpoint`, decoded back into ``domains``;
        ``_COLUMNAR_UNSET`` tells :meth:`propagate` to run indexed instead."""
        outcome = self._columnar_fixpoint(domains, trusted_sources)
        if outcome is _COLUMNAR_UNSET or outcome is None:
            return outcome
        np = _columnar.np
        masks, _states, ctx = outcome
        values = ctx.encoder.values
        for vi, variable in enumerate(ctx.var_list):
            domains[variable] = {values[code] for code in np.flatnonzero(masks[vi])}
        return domains

    def _iter_columnar(self, limit: Optional[int]) -> Iterator[Dict[Variable, Value]]:
        """Vectorized search over the interned columns: same variable order,
        same (ascending-code = repr-sorted) value order, and sound
        forward-checking — hence the same solutions in the same order as the
        indexed engine, decoded to values only at assignment time."""
        domains = {v: set(values) for v, values in self._domains.items()}
        outcome = self._columnar_fixpoint(domains, True)
        if outcome is _COLUMNAR_UNSET:
            yield from self._iter_indexed(limit)
            return
        if outcome is None:
            return
        np = _columnar.np
        masks, states, ctx = outcome
        encoder = ctx.encoder
        values = encoder.values
        n_codes = len(encoder)
        var_index = ctx.var_index
        order = self.search_order()
        by_variable = self._constraints_by_variable()
        search_tables: Dict[int, _ColumnarSearchTable] = {
            id(state.constraint): _ColumnarSearchTable(state, n_codes)
            for state in states
        }
        # Canonical per-variable value order: ascending codes, computed once.
        codes_order: Dict[Variable, List[int]] = {
            variable: [int(code) for code in np.flatnonzero(masks[var_index[variable]])]
            for variable in order
        }
        assignment: Dict[Variable, Value] = {}
        assigned_codes: Dict[Variable, int] = {}
        produced = 0
        Trail = List[Tuple[int, object]]

        def undo(trail: Trail) -> None:
            for vi, removed in trail:
                masks[vi] |= removed

        def forward_check(variable: Variable, code: int) -> Optional[Trail]:
            trail: Trail = []
            for constraint in by_variable[variable]:
                if isinstance(constraint, Constraint):
                    table = search_tables[id(constraint)]
                    scope = constraint.scope
                    if len(scope) == 2:
                        # Binary fast path: one set probe (both assigned) or
                        # one cached-mask AND (one assigned) per node.
                        left, right = scope
                        left_code = assigned_codes.get(left)
                        right_code = assigned_codes.get(right)
                        if left_code is not None and right_code is not None:
                            if not table.has_pair(left_code, right_code):
                                undo(trail)
                                return None
                            continue
                        if left_code is not None:
                            supported = table.support_mask(0, left_code)
                            other = right
                        else:
                            supported = table.support_mask(1, right_code)
                            other = left
                        vi = var_index[other]
                        current = masks[vi]
                        removed = current & ~supported
                        if removed.any():
                            current &= supported
                            trail.append((vi, removed))
                            if not current.any():
                                undo(trail)
                                return None
                        continue
                    rows = None
                    unassigned: List[Tuple[int, Variable]] = []
                    failed = False
                    for position, scope_variable in enumerate(scope):
                        if scope_variable in assignment:
                            bucket = table.buckets(position).get(
                                assigned_codes[scope_variable]
                            )
                            if bucket is None:
                                failed = True
                                break
                            if rows is None:
                                rows = bucket
                            else:
                                rows = np.intersect1d(rows, bucket, assume_unique=True)
                                if rows.size == 0:
                                    failed = True
                                    break
                        else:
                            unassigned.append((position, scope_variable))
                    if failed:
                        undo(trail)
                        return None
                    if rows is None:
                        continue
                    for position, scope_variable in unassigned:
                        vi = var_index[scope_variable]
                        current = masks[vi]
                        supported = np.zeros(n_codes, dtype=bool)
                        supported[table.cols[position][rows]] = True
                        removed = current & ~supported
                        if removed.any():
                            current &= supported
                            trail.append((vi, removed))
                            if not current.any():
                                undo(trail)
                                return None
                elif isinstance(constraint, NotEqualConstraint):
                    other = (
                        constraint.right
                        if variable == constraint.left
                        else constraint.left
                    )
                    if other in assignment:
                        if assigned_codes[other] == code:
                            undo(trail)
                            return None
                    else:
                        vi = var_index[other]
                        current = masks[vi]
                        if current[code]:
                            removed = np.zeros(n_codes, dtype=bool)
                            removed[code] = True
                            current[code] = False
                            trail.append((vi, removed))
                            if not current.any():
                                undo(trail)
                                return None
                else:
                    if not constraint.consistent_with_partial(assignment):
                        undo(trail)
                        return None
            return trail

        def backtrack(position: int) -> Iterator[Dict[Variable, Value]]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if position == len(order):
                produced += 1
                yield assignment
                return
            variable = order[position]
            live = masks[var_index[variable]]
            for code in codes_order[variable]:
                if not live[code]:
                    continue
                assignment[variable] = values[code]
                assigned_codes[variable] = code
                trail = forward_check(variable, code)
                if trail is not None:
                    yield from backtrack(position + 1)
                    undo(trail)
                    if limit is not None and produced >= limit:
                        del assignment[variable]
                        del assigned_codes[variable]
                        return
                del assignment[variable]
                del assigned_codes[variable]

        yield from backtrack(0)

    def _constraints_by_variable(self) -> Dict[Variable, List[Constraint]]:
        if self._by_variable_cache is None:
            index: Dict[Variable, List[Constraint]] = {v: [] for v in self._domains}
            for constraint in self._constraints:
                for variable in set(constraint.scope):
                    index[variable].append(constraint)
            self._by_variable_cache = index
        return self._by_variable_cache

    # ---------------------------------------------------------------- search
    def iter_solutions(self, limit: Optional[int] = None) -> Iterator[Dict[Variable, Value]]:
        """Enumerate solutions by propagation + backtracking search.  Both
        engines yield the same solutions in the same order."""
        for assignment in self._iter_assignments(limit):
            yield dict(assignment)

    def _iter_assignments(self, limit: Optional[int]) -> Iterator[Dict[Variable, Value]]:
        """Yield the internal (shared, mutable) assignment dict at every
        solution; callers must copy if they keep it."""
        if self._engine == "naive":
            yield from self._iter_naive(limit)
        elif self._engine == "columnar":
            yield from self._iter_columnar(limit)
        else:
            yield from self._iter_indexed(limit)

    def _iter_naive(self, limit: Optional[int]) -> Iterator[Dict[Variable, Value]]:
        """The original search: re-sorts the current variable's domain at
        every node and checks consistency by scanning the tables."""
        domains = self.propagate()
        if domains is None:
            return
        order = self.search_order()
        by_variable = self._constraints_by_variable()
        produced = 0

        def consistent_check(constraint, assignment) -> bool:
            if isinstance(constraint, Constraint):
                return constraint.scan_consistent_with_partial(assignment)
            return constraint.consistent_with_partial(assignment)

        def backtrack(position: int, assignment: Dict[Variable, Value]) -> Iterator[Dict[Variable, Value]]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if position == len(order):
                produced += 1
                yield assignment
                return
            variable = order[position]
            for value in sorted(domains[variable], key=repr):
                assignment[variable] = value
                consistent = all(
                    consistent_check(constraint, assignment)
                    for constraint in by_variable[variable]
                )
                if consistent:
                    yield from backtrack(position + 1, assignment)
                    if limit is not None and produced >= limit:
                        del assignment[variable]
                        return
                del assignment[variable]

        yield from backtrack(0, {})

    def _iter_indexed(self, limit: Optional[int]) -> Iterator[Dict[Variable, Value]]:
        """Index-driven search: canonical value orders computed once, and
        forward checking prunes neighbour domains through the tuple indexes
        (with an undo trail) before recursing."""
        domains = self.propagate()
        if domains is None:
            return
        order = self.search_order()
        by_variable = self._constraints_by_variable()
        # Canonical per-variable value order, computed once (not per node).
        value_order: Dict[Variable, List[Value]] = {
            variable: sorted(values, key=repr) for variable, values in domains.items()
        }
        current: Dict[Variable, Set[Value]] = {
            variable: set(values) for variable, values in domains.items()
        }
        assignment: Dict[Variable, Value] = {}
        produced = 0
        Trail = List[Tuple[Variable, Set[Value]]]

        def undo(trail: Trail) -> None:
            for variable, removed in trail:
                current[variable] |= removed

        def forward_check(variable: Variable, value: Value) -> Optional[Trail]:
            """Check the constraints touching ``variable`` and prune the
            domains of their unassigned variables; returns the undo trail, or
            ``None`` on a dead end (already undone)."""
            trail: Trail = []
            for constraint in by_variable[variable]:
                if isinstance(constraint, Constraint):
                    index = constraint.index
                    if not index.tuples:
                        undo(trail)
                        return None
                    scope = constraint.scope
                    ids: Optional[FrozenSet[int]] = None
                    unassigned: List[Tuple[int, Variable]] = []
                    failed = False
                    for position, scope_variable in enumerate(scope):
                        if scope_variable in assignment:
                            bucket = index.by_position[position].get(
                                assignment[scope_variable]
                            )
                            if not bucket:
                                failed = True
                                break
                            if ids is None:
                                ids = bucket
                            else:
                                ids = ids & bucket
                                if not ids:
                                    failed = True
                                    break
                        else:
                            unassigned.append((position, scope_variable))
                    if failed:
                        undo(trail)
                        return None
                    if ids is None:
                        continue
                    tuples = index.tuples
                    for position, scope_variable in unassigned:
                        domain = current[scope_variable]
                        if len(ids) <= 4 * len(domain):
                            supported = {tuples[tid][position] for tid in ids}
                            removed = domain - supported
                        else:
                            bucket = index.by_position[position]
                            removed = {
                                candidate
                                for candidate in domain
                                if ids.isdisjoint(bucket.get(candidate, _EMPTY))
                            }
                        if removed:
                            domain -= removed
                            trail.append((scope_variable, removed))
                            if not domain:
                                undo(trail)
                                return None
                elif isinstance(constraint, NotEqualConstraint):
                    other = (
                        constraint.right
                        if variable == constraint.left
                        else constraint.left
                    )
                    if other in assignment:
                        if assignment[other] == value:
                            undo(trail)
                            return None
                    else:
                        domain = current[other]
                        if value in domain:
                            domain.discard(value)
                            trail.append((other, {value}))
                            if not domain:
                                undo(trail)
                                return None
                else:
                    if not constraint.consistent_with_partial(assignment):
                        undo(trail)
                        return None
            return trail

        def backtrack(position: int) -> Iterator[Dict[Variable, Value]]:
            nonlocal produced
            if limit is not None and produced >= limit:
                return
            if position == len(order):
                produced += 1
                yield assignment
                return
            variable = order[position]
            live = current[variable]
            for value in value_order[variable]:
                if value not in live:
                    continue
                assignment[variable] = value
                trail = forward_check(variable, value)
                if trail is not None:
                    yield from backtrack(position + 1)
                    undo(trail)
                    if limit is not None and produced >= limit:
                        del assignment[variable]
                        return
                del assignment[variable]

        yield from backtrack(0)

    def solve(self) -> Optional[Dict[Variable, Value]]:
        """Return one solution, or ``None`` if the instance is unsatisfiable."""
        for solution in self.iter_solutions(limit=1):
            return solution
        return None

    def is_satisfiable(self) -> bool:
        for _ in self._iter_assignments(limit=1):
            return True
        return False

    def count_solutions(self) -> int:
        """Exact number of solutions (exponential in the worst case; intended
        for the small instances used as test baselines).  Avoids copying each
        solution dict."""
        return sum(1 for _ in self._iter_assignments(None))


_EMPTY: FrozenSet[int] = frozenset()


def solve_csp(
    domains: Dict[Variable, Iterable[Value]],
    constraints: Sequence[Constraint],
    engine: str = DEFAULT_ENGINE,
) -> Optional[Dict[Variable, Value]]:
    """Convenience wrapper: build a :class:`CSPInstance` and return one
    solution (or ``None``)."""
    return CSPInstance(domains, constraints, engine=engine).solve()
