"""Columnar (struct-of-arrays) relation storage over an interned universe.

This is the data layer behind ``engine="columnar"`` in
:mod:`repro.relational.csp`: relations are stored as one contiguous int32
array per position — the struct-of-arrays idiom — over a per-structure
*interned universe* (a stable value <-> int32 code bijection), so that

* constraint-consistency checks become vectorized row-mask intersections,
* GAC support counting becomes ``np.bincount`` arithmetic, and
* bag joins (:mod:`repro.core.bag_solutions`) become hash/merge joins on
  integer key columns.

Code assignment is the load-bearing determinism trick: codes are assigned by
position in the **repr-sorted** universe (exactly
:meth:`Structure.canonical_universe` order), so ascending code order over any
subset equals ``sorted(subset, key=repr)`` — the canonical value order the
indexed engine uses.  A columnar search that walks codes in ascending order
therefore reproduces the indexed engine's enumeration order bit for bit.

Everything here degrades gracefully: when NumPy is not installed
(``HAS_NUMPY`` is ``False``) or a universe exceeds the int32 code space, the
builders return ``None`` and callers fall back to the indexed engine.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via the HAS_NUMPY monkeypatch tests
    import numpy as np

    HAS_NUMPY = True
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]
    HAS_NUMPY = False

Value = Hashable

#: Largest universe representable in int32 codes.  Module-level (rather than
#: inlined) so tests can monkeypatch it down to force the overflow fallback.
_INT32_LIMIT = 2**31 - 1


def columnar_available() -> bool:
    """Whether the columnar engine can run at all (NumPy importable)."""
    return HAS_NUMPY


class UniverseEncoder:
    """A stable value <-> int32 code bijection over an ordered universe.

    ``values`` must already be in canonical (repr-sorted) order; codes are
    positions in that order, so ``code_a < code_b`` iff ``repr(value_a)``
    sorts before ``repr(value_b)`` — see the module docstring.
    """

    __slots__ = ("values", "code_of")

    def __init__(self, values: Sequence[Value]) -> None:
        self.values: Tuple[Value, ...] = tuple(values)
        self.code_of: Dict[Value, int] = {
            value: code for code, value in enumerate(self.values)
        }

    def __len__(self) -> int:
        return len(self.values)

    def decode(self, code: int) -> Value:
        return self.values[code]

    def encode_facts(self, facts: Iterable[Tuple[Value, ...]], arity: int):
        """Encode an iterable of equal-arity tuples into an ``(n, arity)``
        int32 array, or ``None`` if some value is outside the universe."""
        code_of = self.code_of
        flat: List[int] = []
        try:
            for fact in facts:
                for value in fact:
                    flat.append(code_of[value])
        except KeyError:
            return None
        if arity == 0:
            return np.zeros((len(flat), 0), dtype=np.int32)
        array = np.fromiter(flat, dtype=np.int32, count=len(flat))
        return array.reshape(-1, arity)


def build_encoder(ordered_values: Sequence[Value]) -> Optional[UniverseEncoder]:
    """An encoder over ``ordered_values`` (already canonical-ordered), or
    ``None`` when NumPy is missing or the universe exceeds int32 codes."""
    if not HAS_NUMPY:
        return None
    if len(ordered_values) > _INT32_LIMIT:
        return None
    return UniverseEncoder(ordered_values)


class ColumnarRelation:
    """One relation stored column-wise: per position a contiguous int32 code
    array, plus a per-column stable argsort and its sorted codes (the
    group-boundary index — ``rows_matching`` binary-searches the sorted codes
    for a value's contiguous row group)."""

    __slots__ = ("encoder", "arity", "num_rows", "columns", "orders", "sorted_codes")

    def __init__(self, encoder: UniverseEncoder, arity: int, matrix) -> None:
        self.encoder = encoder
        self.arity = arity
        self.num_rows = int(matrix.shape[0])
        self.columns: Tuple = tuple(
            np.ascontiguousarray(matrix[:, position]) for position in range(arity)
        )
        orders = []
        sorted_codes = []
        for column in self.columns:
            order = np.argsort(column, kind="stable")
            orders.append(order)
            sorted_codes.append(column[order])
        self.orders: Tuple = tuple(orders)
        self.sorted_codes: Tuple = tuple(sorted_codes)

    @classmethod
    def from_facts(
        cls,
        facts: Iterable[Tuple[Value, ...]],
        arity: int,
        encoder: UniverseEncoder,
    ) -> Optional["ColumnarRelation"]:
        matrix = encoder.encode_facts(facts, arity)
        if matrix is None:
            return None
        return cls(encoder, arity, matrix)

    def rows_matching(self, position: int, code: int):
        """Row ids (ascending, unique) holding ``code`` at ``position``."""
        sorted_codes = self.sorted_codes[position]
        lo = int(np.searchsorted(sorted_codes, code, side="left"))
        hi = int(np.searchsorted(sorted_codes, code, side="right"))
        return self.orders[position][lo:hi]

    def matrix(self):
        """The ``(num_rows, arity)`` code matrix (a fresh stack)."""
        if self.arity == 0:
            return np.zeros((self.num_rows, 0), dtype=np.int32)
        return np.stack(self.columns, axis=1)


# --------------------------------------------------------------- join kernels
def matching_pairs(left_keys, right_keys):
    """Equi-join two key matrices: return ``(left_rows, right_rows)`` index
    arrays such that ``left_keys[left_rows[i]] == right_keys[right_rows[i]]``
    for every matching pair.

    Both inputs are ``(n, s)`` int arrays over the same code space.  The join
    runs by collapsing each distinct key tuple to one group id
    (``np.unique(..., axis=0, return_inverse=True)`` over the concatenation)
    and merging the sorted group ids — no Python-level hashing per row.
    """
    num_left = left_keys.shape[0]
    num_right = right_keys.shape[0]
    if num_left == 0 or num_right == 0:
        empty = np.zeros(0, dtype=np.intp)
        return empty, empty
    combined = np.concatenate([left_keys, right_keys], axis=0)
    _, inverse = np.unique(combined, axis=0, return_inverse=True)
    inverse = inverse.reshape(-1)
    left_groups = inverse[:num_left]
    right_groups = inverse[num_left:]
    right_order = np.argsort(right_groups, kind="stable")
    right_sorted = right_groups[right_order]
    lo = np.searchsorted(right_sorted, left_groups, side="left")
    hi = np.searchsorted(right_sorted, left_groups, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        empty = np.zeros(0, dtype=np.intp)
        return empty, empty
    left_rows = np.repeat(np.arange(num_left, dtype=np.intp), counts)
    starts = np.repeat(lo, counts)
    within = np.arange(total, dtype=np.intp) - np.repeat(
        np.cumsum(counts) - counts, counts
    )
    right_rows = right_order[starts + within]
    return left_rows, right_rows


def cross_pairs(num_left: int, num_right: int):
    """Index arrays realizing the cartesian product of two row sets."""
    left_rows = np.repeat(np.arange(num_left, dtype=np.intp), num_right)
    right_rows = np.tile(np.arange(num_right, dtype=np.intp), num_left)
    return left_rows, right_rows


def distinct_rows(matrix):
    """The distinct rows of a code matrix (order not significant)."""
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        return matrix[:1] if matrix.shape[1] == 0 and matrix.shape[0] else matrix
    return np.unique(matrix, axis=0)
