"""Relational structures and databases (Sections 1.1 and 2.2).

A structure ``A`` with signature ``sig(A)`` consists of a finite universe
``U(A)`` and, for each relation symbol ``R`` of the signature, a relation
``R^A ⊆ U(A)^{ar(R)}``.  A relational database is simply a structure (the
paper uses "database" for the large right-hand side and "structure" for the
small left-hand side of the homomorphism problem).

The size of a structure is ``||A|| = |sig(A)| + |U(A)| + sum_R |R^A| * ar(R)``
(following Grohe), which is the quantity the paper's running-time bounds are
stated in.
"""

from __future__ import annotations

import itertools
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.hypergraph import Hypergraph
from repro.relational.index import TupleIndex
from repro.relational.signature import RelationSymbol, Signature

Element = Hashable
Fact = Tuple[Element, ...]

#: Process-wide source of structure identity tokens (``next()`` is atomic in
#: CPython, so no lock is needed even under threaded use).
_STRUCTURE_TOKENS = itertools.count(1)

#: How many single-fact mutations a cached relation index absorbs through
#: :meth:`TupleIndex.with_fact_added` / :meth:`~TupleIndex.with_fact_removed`
#: before :meth:`Structure.relation_index` gives up and rebuilds from scratch.
#: Streams fold one pending delta per lookup; the limit only bites when many
#: mutations pile up between lookups — exactly the "versions skip" case where
#: a rebuild beats replaying a long op chain.
_INDEX_DELTA_LIMIT = 32


class Structure:
    """A finite relational structure.

    Parameters
    ----------
    signature:
        The signature; may also be grown implicitly via :meth:`add_fact` /
        :meth:`add_relation`.
    universe:
        Iterable of universe elements.  Elements appearing in facts are added
        automatically.
    relations:
        Mapping from relation-symbol name to an iterable of tuples.
    """

    def __init__(
        self,
        signature: Optional[Signature] = None,
        universe: Iterable[Element] = (),
        relations: Optional[Mapping[str, Iterable[Sequence[Element]]]] = None,
    ) -> None:
        self._signature = signature.copy() if signature is not None else Signature()
        self._universe: Set[Element] = set(universe)
        self._relations: Dict[str, Set[Fact]] = {
            symbol.name: set() for symbol in self._signature
        }
        # Fine-grained mutation counters: derived caches are keyed to the
        # counter of what they depend on, so e.g. adding facts to one relation
        # does not invalidate another relation's tuple index, and copies can
        # share still-valid caches.
        self._universe_version: int = 0
        self._relations_version: int = 0
        self._relation_versions: Dict[str, int] = {}
        self._structure_token: int = next(_STRUCTURE_TOKENS)
        self._canonical_universe_cache: Optional[Tuple[int, Tuple[Element, ...]]] = None
        self._relation_index_cache: Dict[str, Tuple[int, TupleIndex]] = {}
        self._relation_index_pending: Dict[str, List[Tuple[str, Fact]]] = {}
        # Columnar (struct-of-arrays) mirrors of the relations, for
        # engine="columnar": the universe encoder is keyed to the universe
        # version, each relation's column store to (universe version, that
        # relation's version).  Both are carried by copy() like the tuple
        # indexes, which is what lets the colour-coding hot path reuse the
        # base relations' columns across per-colouring copies.
        self._universe_encoder_cache: Optional[Tuple[int, object]] = None
        self._columnar_cache: Dict[str, Tuple[Tuple[int, int], object]] = {}
        self._derived_cache_state: Optional[Tuple[Tuple[int, int], Dict[object, object]]] = None
        # Opt-in change capture: callbacks invoked as (name, op, fact,
        # relation_version) on every effective fact mutation ("add"/"remove").
        # Copies start with no observers — a ChangeLog watches one structure.
        self._fact_observers: List = []
        if relations:
            for name, tuples in relations.items():
                tuples = [tuple(t) for t in tuples]
                if name not in self._signature and tuples:
                    self._signature.add(RelationSymbol(name, len(tuples[0])))
                    self._relations.setdefault(name, set())
                elif name not in self._signature:
                    raise ValueError(
                        f"cannot infer the arity of empty relation {name!r}; "
                        "declare it in the signature"
                    )
                for fact in tuples:
                    self.add_fact(name, fact)

    # --------------------------------------------------------------- building
    @classmethod
    def from_relations(
        cls,
        relations: Mapping[str, Iterable[Sequence[Element]]],
        universe: Iterable[Element] = (),
        signature: Optional[Signature] = None,
    ) -> "Structure":
        """Convenience constructor from a ``{name: [tuples]}`` mapping."""
        return cls(signature=signature, universe=universe, relations=relations)

    @classmethod
    def from_graph(cls, edges: Iterable[Sequence[Element]], symmetric: bool = True,
                   universe: Iterable[Element] = ()) -> "Structure":
        """The structure of a graph over a binary relation ``E``.

        With ``symmetric=True`` both orientations of every edge are added,
        which matches the usual encoding of undirected graphs as symmetric
        binary relations.
        """
        structure = cls(signature=Signature([RelationSymbol("E", 2)]), universe=universe)
        for edge in edges:
            u, v = tuple(edge)
            structure.add_fact("E", (u, v))
            if symmetric:
                structure.add_fact("E", (v, u))
        return structure

    def add_element(self, element: Element) -> None:
        """Add a universe element (idempotent)."""
        if element not in self._universe:
            self._universe.add(element)
            self._universe_version += 1

    def add_relation(self, symbol: RelationSymbol) -> None:
        """Declare a relation symbol with an (initially) empty relation."""
        self._signature.add(symbol)
        self._relations.setdefault(symbol.name, set())
        self._relations_version += 1

    def add_fact(self, name: str, fact: Sequence[Element]) -> Fact:
        """Add a fact (tuple) to the named relation, growing the signature on
        first use and the universe as needed."""
        fact = tuple(fact)
        symbol = self._signature.get(name)
        if symbol is None:
            symbol = RelationSymbol(name, len(fact))
            self._signature.add(symbol)
            self._relations.setdefault(name, set())
        if len(fact) != symbol.arity:
            raise ValueError(
                f"relation {name!r} has arity {symbol.arity}, got a tuple of "
                f"length {len(fact)}"
            )
        relation = self._relations.setdefault(name, set())
        if fact not in relation:
            relation.add(fact)
            self._relations_version += 1
            version = self._relation_versions.get(name, 0) + 1
            self._relation_versions[name] = version
            self._record_index_delta(name, "add", fact)
            for observer in self._fact_observers:
                observer(name, "add", fact, version)
        before = len(self._universe)
        self._universe.update(fact)
        if len(self._universe) != before:
            self._universe_version += 1
        return fact

    def remove_fact(self, name: str, fact: Sequence[Element]) -> Fact:
        """Remove a fact (tuple) from the named relation — the mutation
        symmetric to :meth:`add_fact`.

        Bumps the relation's version counter (invalidating exactly the
        version-keyed caches that depend on it: the relation's tuple index,
        the derived cache, and every service result-cache entry whose
        fingerprint mentions the relation) and notifies attached change
        observers.  The universe is **not** shrunk: elements stay once seen,
        so cached canonical universes and the identities of other facts are
        unaffected.  Raises ``KeyError`` for unknown relation symbols or
        facts not present in the relation.
        """
        fact = tuple(fact)
        if name not in self._signature:
            raise KeyError(f"unknown relation symbol {name!r}")
        relation = self._relations.get(name)
        if relation is None or fact not in relation:
            raise KeyError(f"relation {name!r} has no fact {fact!r}")
        relation.remove(fact)
        self._relations_version += 1
        version = self._relation_versions.get(name, 0) + 1
        self._relation_versions[name] = version
        self._record_index_delta(name, "remove", fact)
        for observer in self._fact_observers:
            observer(name, "remove", fact, version)
        return fact

    # ---------------------------------------------------------- change capture
    def register_fact_observer(self, observer) -> None:
        """Register a change-capture callback, invoked as ``observer(name,
        op, fact, relation_version)`` after every *effective* fact mutation
        (``op`` is ``"add"`` or ``"remove"``; no-op re-adds do not fire).

        This is the hook behind :class:`repro.relational.changelog.ChangeLog`;
        observers are not carried over by :meth:`copy`.
        """
        self._fact_observers.append(observer)

    def unregister_fact_observer(self, observer) -> None:
        """Remove a previously registered observer (idempotent)."""
        try:
            self._fact_observers.remove(observer)
        except ValueError:
            pass

    # ----------------------------------------------------------------- access
    @property
    def signature(self) -> Signature:
        return self._signature

    @property
    def universe(self) -> FrozenSet[Element]:
        return frozenset(self._universe)

    def relation(self, name: str) -> FrozenSet[Fact]:
        """The relation ``R^A`` for the named symbol (empty if declared but
        unpopulated)."""
        if name not in self._signature:
            raise KeyError(f"unknown relation symbol {name!r}")
        return frozenset(self._relations.get(name, set()))

    def relations(self) -> Dict[str, FrozenSet[Fact]]:
        return {symbol.name: self.relation(symbol.name) for symbol in self._signature}

    def has_fact(self, name: str, fact: Sequence[Element]) -> bool:
        return tuple(fact) in self._relations.get(name, set())

    # ------------------------------------------------------- derived caches
    def canonical_universe(self) -> Tuple[Element, ...]:
        """The universe in canonical (repr-sorted) order, cached until the
        universe changes.

        Every code path that needs a deterministic universe order should use
        this instead of re-sorting ``structure.universe``.
        """
        cached = self._canonical_universe_cache
        if cached is not None and cached[0] == self._universe_version:
            return cached[1]
        ordered = tuple(sorted(self._universe, key=repr))
        self._canonical_universe_cache = (self._universe_version, ordered)
        return ordered

    def _record_index_delta(self, name: str, op: str, fact: Fact) -> None:
        """Remember a single-fact mutation so the next :meth:`relation_index`
        lookup can fold it into the cached index instead of rebuilding.  Once
        the pending chain exceeds ``_INDEX_DELTA_LIMIT`` the cache entry is
        dropped (rebuild on next lookup)."""
        if name not in self._relation_index_cache:
            return
        pending = self._relation_index_pending.setdefault(name, [])
        pending.append((op, fact))
        if len(pending) > _INDEX_DELTA_LIMIT:
            self._relation_index_cache.pop(name, None)
            self._relation_index_pending.pop(name, None)

    def relation_index(self, name: str) -> TupleIndex:
        """The positional :class:`TupleIndex` of the named relation, cached
        until *that* relation changes and shared by every constraint built
        from this structure (and by fast copies of it).

        Mutations do not throw the cached index away: pending single-fact
        deltas are folded in via :meth:`TupleIndex.with_fact_added` /
        :meth:`~TupleIndex.with_fact_removed` (a structurally shared
        derivation — previously handed-out indexes keep their snapshot), and
        only a version skip beyond the recorded chain falls back to a full
        ``O(|R| * arity)`` rebuild.

        Raises ``KeyError`` for unknown relation symbols, like
        :meth:`relation`.
        """
        symbol = self._signature.get(name)
        if symbol is None:
            raise KeyError(f"unknown relation symbol {name!r}")
        version = self._relation_versions.get(name, 0)
        cached = self._relation_index_cache.get(name)
        if cached is not None:
            if cached[0] == version:
                return cached[1]
            pending = self._relation_index_pending.get(name, ())
            if cached[0] + len(pending) == version:
                index = cached[1]
                for op, fact in pending:
                    index = (
                        index.with_fact_added(fact)
                        if op == "add"
                        else index.with_fact_removed(fact)
                    )
                self._relation_index_pending.pop(name, None)
                self._relation_index_cache[name] = (version, index)
                return index
        index = TupleIndex.from_tuples(
            self._relations.get(name, set()), arity=symbol.arity
        )
        self._relation_index_pending.pop(name, None)
        self._relation_index_cache[name] = (version, index)
        return index

    def universe_encoder(self):
        """The interned value <-> int32 code bijection over this structure's
        canonical universe (see :mod:`repro.relational.columnar`), cached
        until the universe changes; ``None`` when NumPy is unavailable or the
        universe exceeds the int32 code space (callers then fall back to the
        indexed engine)."""
        from repro.relational import columnar

        cached = self._universe_encoder_cache
        if cached is not None and cached[0] == self._universe_version:
            return cached[1]
        encoder = columnar.build_encoder(self.canonical_universe())
        self._universe_encoder_cache = (self._universe_version, encoder)
        return encoder

    def columnar_relation(self, name: str):
        """The :class:`~repro.relational.columnar.ColumnarRelation` mirror of
        the named relation, cached until the universe or *that* relation
        changes; ``None`` when the encoder is unavailable.  Raises
        ``KeyError`` for unknown relation symbols, like :meth:`relation`."""
        from repro.relational.columnar import ColumnarRelation

        symbol = self._signature.get(name)
        if symbol is None:
            raise KeyError(f"unknown relation symbol {name!r}")
        key = (self._universe_version, self._relation_versions.get(name, 0))
        cached = self._columnar_cache.get(name)
        if cached is not None and cached[0] == key:
            return cached[1]
        encoder = self.universe_encoder()
        if encoder is None:
            table = None
        else:
            table = ColumnarRelation.from_facts(
                self._relations.get(name, set()), symbol.arity, encoder
            )
        self._columnar_cache[name] = (key, table)
        return table

    def derived_cache(self) -> Dict[object, object]:
        """A scratch cache tied to the structure's current contents, for
        callers that memoise derived data (e.g. per-atom projection bases in
        :mod:`repro.core.bag_solutions`).  Invalidated on any mutation."""
        key = (self._universe_version, self._relations_version)
        state = self._derived_cache_state
        if state is None or state[0] != key:
            state = (key, {})
            self._derived_cache_state = state
        return state[1]

    @property
    def structure_token(self) -> int:
        """A process-wide unique identity token for this structure object.

        Version counters only order the mutations of *one* structure: two
        independently built structures can reach identical counter values with
        different contents.  Cache keys therefore pair the token with
        :meth:`version_fingerprint`; :meth:`copy` assigns a fresh token so a
        copy and its original can never serve each other stale entries after
        diverging mutations.
        """
        return self._structure_token

    def version_fingerprint(
        self, relation_names: Optional[Iterable[str]] = None
    ) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """A hashable snapshot of the mutation counters this structure's
        contents are keyed under: the universe version plus the per-relation
        versions of ``relation_names`` (default: every declared relation).

        Restricting to the relations a query actually mentions makes cache
        keys insensitive to mutations of unrelated relations: adding facts to
        ``F`` does not evict cached counts of a query over ``E``.
        """
        if relation_names is None:
            names = sorted(self._relations)
        else:
            names = sorted(set(relation_names))
        return (
            self._universe_version,
            tuple((name, self._relation_versions.get(name, 0)) for name in names),
        )

    def facts(self) -> Iterator[Tuple[str, Fact]]:
        """Iterate over all (relation name, tuple) facts."""
        for name in sorted(self._relations):
            for fact in sorted(self._relations[name], key=repr):
                yield name, fact

    def num_facts(self) -> int:
        return sum(len(tuples) for tuples in self._relations.values())

    def arity(self) -> int:
        """``ar(sig(A))``: the maximum arity in the signature."""
        return self._signature.arity()

    def size(self) -> int:
        """``||A|| = |sig(A)| + |U(A)| + sum_R |R^A| * ar(R)``."""
        relation_mass = sum(
            len(self._relations.get(symbol.name, set())) * symbol.arity
            for symbol in self._signature
        )
        return len(self._signature) + len(self._universe) + relation_mass

    # -------------------------------------------------------------- structure
    def hypergraph(self) -> Hypergraph:
        """The associated hypergraph H(A) (Section 4): vertices are the
        universe elements, and every fact contributes the hyperedge of the
        elements it mentions."""
        edges = []
        for _, fact in self.facts():
            members = frozenset(fact)
            if members:
                edges.append(members)
        return Hypergraph(vertices=self._universe, edges=edges)

    def active_domain(self) -> Set[Element]:
        """Elements that appear in at least one fact."""
        active: Set[Element] = set()
        for _, fact in self.facts():
            active.update(fact)
        return active

    def restrict_universe(self, subset: Iterable[Element]) -> "Structure":
        """The induced substructure on ``subset``: keep only facts whose
        elements all lie in the subset."""
        subset_set = set(subset)
        unknown = subset_set - self._universe
        if unknown:
            raise KeyError(f"elements not in universe: {sorted(map(repr, unknown))}")
        restricted = Structure(signature=self._signature, universe=subset_set)
        for name, fact in self.facts():
            if all(element in subset_set for element in fact):
                restricted.add_fact(name, fact)
        return restricted

    def with_unary_relation(self, name: str, members: Iterable[Element]) -> "Structure":
        """A copy with an additional unary relation ``name`` holding the given
        members (the operation used by the coloured structures of Definitions
        26 and 28 and by the "constants via singleton relations" trick)."""
        copy = self.copy()
        copy.add_relation(RelationSymbol(name, 1))
        for element in members:
            if element not in self._universe:
                raise KeyError(f"element {element!r} not in universe")
            copy.add_fact(name, (element,))
        return copy

    def complement_relation(self, name: str, arity: int) -> Set[Fact]:
        """The complement relation ``U(A)^arity \\ R^A`` used by Definition 20
        to interpret negated predicates.  Beware: its size is ``|U|^arity``."""
        universe = self.canonical_universe()
        existing = self._relations.get(name, set())
        complement: Set[Fact] = set()

        def extend(prefix: Tuple[Element, ...]) -> None:
            if len(prefix) == arity:
                if prefix not in existing:
                    complement.add(prefix)
                return
            for element in universe:
                extend(prefix + (element,))

        extend(())
        return complement

    def copy(self) -> "Structure":
        """A fast independent copy: relation sets are bulk-copied (the facts
        were validated when first added) and still-valid derived caches —
        canonical universe, per-relation tuple indexes — are carried over, so
        copies mutated in only a few relations (the colour-coding hot path)
        keep the shared indexes of the untouched ones."""
        duplicate = Structure.__new__(Structure)
        duplicate._signature = self._signature.copy()
        duplicate._universe = set(self._universe)
        duplicate._relations = {name: set(facts) for name, facts in self._relations.items()}
        duplicate._universe_version = self._universe_version
        duplicate._relations_version = self._relations_version
        duplicate._relation_versions = dict(self._relation_versions)
        duplicate._structure_token = next(_STRUCTURE_TOKENS)
        duplicate._canonical_universe_cache = self._canonical_universe_cache
        duplicate._relation_index_cache = dict(self._relation_index_cache)
        duplicate._relation_index_pending = {
            name: list(ops) for name, ops in self._relation_index_pending.items()
        }
        duplicate._universe_encoder_cache = self._universe_encoder_cache
        duplicate._columnar_cache = dict(self._columnar_cache)
        duplicate._derived_cache_state = None
        # Change observers watch the original object, not its copies.
        duplicate._fact_observers = []
        return duplicate

    # ----------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Structure):
            return NotImplemented
        return (
            self._signature == other._signature
            and self._universe == other._universe
            and {k: v for k, v in self._relations.items()}
            == {k: v for k, v in other._relations.items()}
        )

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(|U|={len(self._universe)}, "
            f"symbols={self._signature.names()}, facts={self.num_facts()})"
        )


class Database(Structure):
    """A relational database: a structure playing the "large" right-hand-side
    role in the counting problems #CQ / #DCQ / #ECQ."""

    @classmethod
    def from_graph_edges(
        cls, edges: Iterable[Sequence[Element]], symmetric: bool = True,
        universe: Iterable[Element] = ()
    ) -> "Database":
        """Database of a graph over a symmetric binary relation ``E``."""
        database = cls(signature=Signature([RelationSymbol("E", 2)]), universe=universe)
        for edge in edges:
            u, v = tuple(edge)
            database.add_fact("E", (u, v))
            if symmetric:
                database.add_fact("E", (v, u))
        return database
