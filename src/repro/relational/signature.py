"""Relational signatures (Section 1.1).

A signature consists of a finite set of relation symbols with specified
positive arities.  ``ar(R)`` denotes the arity of a symbol and ``ar(sigma)``
the maximum arity over the signature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Union


@dataclass(frozen=True, order=True)
class RelationSymbol:
    """A named relation symbol with a positive arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("relation symbols need a non-empty name")
        if self.arity <= 0:
            raise ValueError(f"arity of {self.name!r} must be positive, got {self.arity}")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Signature:
    """A finite set of relation symbols, indexed by name.

    Symbol names are unique within a signature; adding a symbol with an
    existing name but different arity is an error.
    """

    def __init__(self, symbols: Iterable[Union[RelationSymbol, tuple]] = ()) -> None:
        self._symbols: Dict[str, RelationSymbol] = {}
        for symbol in symbols:
            self.add(symbol)

    @classmethod
    def from_arities(cls, arities: Mapping[str, int]) -> "Signature":
        """Build a signature from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(name, arity) for name, arity in arities.items())

    def add(self, symbol: Union[RelationSymbol, tuple]) -> RelationSymbol:
        """Add a relation symbol (idempotent for identical symbols)."""
        if isinstance(symbol, tuple):
            symbol = RelationSymbol(*symbol)
        if not isinstance(symbol, RelationSymbol):
            raise TypeError(f"expected a RelationSymbol, got {symbol!r}")
        existing = self._symbols.get(symbol.name)
        if existing is not None and existing.arity != symbol.arity:
            raise ValueError(
                f"symbol {symbol.name!r} already has arity {existing.arity}, "
                f"cannot re-declare with arity {symbol.arity}"
            )
        self._symbols[symbol.name] = symbol
        return symbol

    def get(self, name: str) -> Optional[RelationSymbol]:
        return self._symbols.get(name)

    def __getitem__(self, name: str) -> RelationSymbol:
        try:
            return self._symbols[name]
        except KeyError:
            raise KeyError(f"unknown relation symbol {name!r}") from None

    def __contains__(self, name: object) -> bool:
        if isinstance(name, RelationSymbol):
            existing = self._symbols.get(name.name)
            return existing == name
        return name in self._symbols

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(sorted(self._symbols.values()))

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Signature):
            return NotImplemented
        return self._symbols == other._symbols

    def __le__(self, other: "Signature") -> bool:
        """Sub-signature test: every symbol of self appears (with the same
        arity) in ``other``."""
        return all(symbol in other for symbol in self)

    def names(self) -> List[str]:
        return sorted(self._symbols)

    def arity(self) -> int:
        """``ar(sigma)``: the maximum arity of any symbol (0 if empty)."""
        if not self._symbols:
            return 0
        return max(symbol.arity for symbol in self._symbols.values())

    def union(self, other: "Signature") -> "Signature":
        """The union of two signatures (arities must agree on shared names)."""
        merged = Signature(self)
        for symbol in other:
            merged.add(symbol)
        return merged

    def copy(self) -> "Signature":
        return Signature(self)

    def __repr__(self) -> str:
        return "Signature({" + ", ".join(str(s) for s in self) + "})"
