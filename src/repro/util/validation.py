"""Input-validation helpers shared by the public API."""

from __future__ import annotations

from typing import Any


def check_probability(value: float, name: str = "probability") -> float:
    """Ensure ``value`` is a probability in [0, 1] and return it as a float."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def check_epsilon_delta(epsilon: float, delta: float) -> None:
    """Validate the (epsilon, delta) parameters of an approximation scheme."""
    if not 0.0 < float(epsilon) < 1.0:
        raise ValueError(f"epsilon must be in (0, 1), got {epsilon}")
    if not 0.0 < float(delta) < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def check_positive_int(value: Any, name: str = "value") -> int:
    """Ensure ``value`` is a positive integer and return it as an ``int``."""
    if value != int(value):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_non_negative_int(value: Any, name: str = "value") -> int:
    """Ensure ``value`` is a non-negative integer and return it as an ``int``."""
    if value != int(value):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    value = int(value)
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value}")
    return value
