"""Random-number-generator plumbing.

All randomised algorithms in this package accept either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so that every algorithm is reproducible when
given a seed and so that independent sub-algorithms can be handed independent
generators derived from a single seed.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Union

import numpy as np

RNGLike = Union[None, int, np.random.Generator]


def as_generator(rng: RNGLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    ``rng`` may be ``None`` (fresh, non-reproducible entropy), an ``int`` seed,
    or an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    raise TypeError(f"cannot interpret {rng!r} as a random generator or seed")


def spawn_generators(rng: RNGLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``rng``.

    Used when a driver algorithm delegates to several Monte-Carlo
    sub-routines that must not share random streams (e.g. the repetitions in
    the median-amplification step of Lemma 22).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    generator = as_generator(rng)
    seeds = generator.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def derive_seed(master_seed: int, *path: int) -> int:
    """Derive a deterministic child seed from ``master_seed`` and an index
    path, via :class:`numpy.random.SeedSequence`.

    Used by the batch-execution service to hand every task its own
    statistically independent stream while keeping the overall run
    reproducible from one integer: task ``i`` of a batch seeded with ``s``
    always counts with ``derive_seed(s, i)``, whether it runs serially, in a
    thread, or in a worker process — so a direct library call with the same
    derived seed reproduces the service's estimate exactly.
    """
    if not all(isinstance(part, (int, np.integer)) for part in (master_seed, *path)):
        raise TypeError("derive_seed takes integer seeds and indices")
    sequence = np.random.SeedSequence([int(master_seed), *[int(part) for part in path]])
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def random_subset(items: Iterable, probability: float, rng: RNGLike = None) -> list:
    """Return a random subset of ``items`` keeping each item independently
    with the given probability."""
    generator = as_generator(rng)
    items = list(items)
    if not items:
        return []
    keep = generator.random(len(items)) < probability
    return [item for item, kept in zip(items, keep) if kept]


def random_coin(probability: float, rng: RNGLike = None) -> bool:
    """Flip a biased coin that lands heads with the given probability."""
    return bool(as_generator(rng).random() < probability)


def shuffled(items: Iterable, rng: RNGLike = None) -> list:
    """Return a new list containing ``items`` in uniformly random order."""
    generator = as_generator(rng)
    items = list(items)
    generator.shuffle(items)
    return items


def random_choice(items: Iterable, rng: RNGLike = None):
    """Pick a uniformly random element of ``items`` (which must be non-empty)."""
    items = list(items)
    if not items:
        raise ValueError("cannot choose from an empty collection")
    generator = as_generator(rng)
    return items[int(generator.integers(0, len(items)))]


def weighted_choice(items: Iterable, weights: Iterable[float], rng: RNGLike = None):
    """Pick an element of ``items`` with probability proportional to ``weights``."""
    items = list(items)
    weights_array = np.asarray(list(weights), dtype=float)
    if len(items) != len(weights_array):
        raise ValueError("items and weights must have the same length")
    if len(items) == 0:
        raise ValueError("cannot choose from an empty collection")
    total = weights_array.sum()
    if total <= 0:
        raise ValueError("weights must have a positive sum")
    generator = as_generator(rng)
    index = generator.choice(len(items), p=weights_array / total)
    return items[int(index)]
