"""A small thread-safe LRU cache with hit/miss/eviction statistics.

Backs every cache of the package:

* the **prepared-query cache** (canonical query form ->
  :class:`repro.queries.prepared.PreparedQuery`), the process-wide store of
  compiled query artifacts (hypergraph, widths, decompositions),
* the service's **plan cache** (canonical query form + planner inputs ->
  QueryPlan), which skips re-deciding on repeated queries, and
* the service's **result cache** (canonical query form + database version
  fingerprint + scheme parameters -> estimate), which skips recounting
  entirely.

The module lives in :mod:`repro.util` rather than :mod:`repro.service` so the
queries/core layers can use it without depending on the service layer;
:mod:`repro.service.cache` re-exports it under its historical name.

Entries rarely need explicit invalidation: the database component of every
result key embeds the structure's per-relation version counters, so mutating
a relation changes the keys of all affected queries and stale entries are
never *served*.  Under one-shot batch use they simply age out through LRU
eviction; under **streaming** use (long-lived, frequently mutated databases)
dead-fingerprint entries pile up faster than they churn out, so the cache
also supports targeted eviction: :meth:`LRUCache.invalidate_where` drops
every entry matching a key predicate, and
``CountingService.evict(database)`` uses it to purge all entries keyed to a
database's structure token in one call.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Optional


@dataclass
class CacheStats:
    """Counters reported by :meth:`LRUCache.stats`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    max_size: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "max_size": self.max_size,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Least-recently-used cache over hashable keys.

    ``max_size <= 0`` disables caching entirely (every lookup misses, nothing
    is stored) — used to switch the service's caches off without littering the
    call sites with conditionals.
    """

    _MISSING = object()

    def __init__(self, max_size: int) -> None:
        self._max_size = int(max_size)
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, marking it most recently used on a hit."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            if value is self._MISSING:
                self._misses += 1
                return default
            self._entries.move_to_end(key)
            self._hits += 1
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key`` without touching recency or statistics."""
        with self._lock:
            value = self._entries.get(key, self._MISSING)
            return default if value is self._MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert or refresh ``key``, evicting the least recently used entry
        when full."""
        if self._max_size <= 0:
            return
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self._max_size:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``; returns how
        many were dropped (counted as evictions in :meth:`stats`).

        The streaming hook: result keys embed a database structure token and
        version fingerprint, so ``invalidate_where(lambda key: ...token...)``
        purges the dead entries a long-lived mutating database strands,
        instead of waiting for LRU churn.  The predicate runs under the cache
        lock — keep it cheap and non-reentrant.
        """
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                del self._entries[key]
            self._evictions += len(doomed)
            return len(doomed)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._entries),
                max_size=self._max_size,
            )
