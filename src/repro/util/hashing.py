"""Process-stable hashing.

Python's builtin ``hash`` is salted per interpreter (``PYTHONHASHSEED``), so
any decision keyed on it silently diverges between the service front-end and
its pool workers.  Everything in this package that must agree *across
processes* — shard placement of facts, the fault plan's selection coins,
deterministic backoff jitter — hashes through :func:`stable_hash` instead.

Lives in :mod:`repro.util` so both the shard layer and the resilience layer
can use it without importing each other (:mod:`repro.shard.partition`
re-exports it under its historical name).
"""

from __future__ import annotations

import hashlib


def stable_hash(*parts: object) -> int:
    """A process-stable 64-bit hash of ``parts``.

    Keyed on the ``repr`` of the parts (facts hold primitive hashables —
    ints, strings, tuples — whose reprs are stable), digested with BLAKE2;
    unlike builtin ``hash``, the value survives interpreter restarts and
    ``PYTHONHASHSEED`` salting, so shard placement is reproducible.
    """
    payload = repr(parts).encode("utf-8")
    return int.from_bytes(hashlib.blake2b(payload, digest_size=8).digest(), "big")


def stable_fraction(*parts: object) -> float:
    """A deterministic uniform-looking value in ``[0, 1)`` keyed on
    ``parts`` — the coin the fault plan flips and the jitter source the
    retry policy spreads backoff with.  53 bits so the float is exact."""
    return (stable_hash(*parts) % (2**53)) / float(2**53)


__all__ = ["stable_hash", "stable_fraction"]
