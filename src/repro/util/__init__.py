"""Shared utilities: RNG handling, (epsilon, delta) estimation helpers and
validation helpers used across the package."""

from repro.util.rng import as_generator, spawn_generators
from repro.util.estimation import (
    ApproximationParameters,
    median_of_means,
    median_amplify,
    relative_error,
    required_repetitions,
)
from repro.util.validation import (
    check_epsilon_delta,
    check_positive_int,
    check_probability,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "ApproximationParameters",
    "median_of_means",
    "median_amplify",
    "relative_error",
    "required_repetitions",
    "check_epsilon_delta",
    "check_positive_int",
    "check_probability",
]
