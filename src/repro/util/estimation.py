"""Helpers for building (epsilon, delta)-approximation algorithms.

The paper's algorithms all return *(epsilon, delta)-approximations*: random
variables X with Pr(|X - V| <= epsilon * V) >= 1 - delta (Section 1.1).  The
standard toolkit for building such estimators out of unbiased but noisy
estimates is median-of-means amplification; this module provides it together
with a small dataclass bundling the approximation parameters that get threaded
through the algorithms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.util.validation import check_epsilon_delta


@dataclass(frozen=True)
class ApproximationParameters:
    """The (epsilon, delta) contract of an approximation scheme.

    Attributes
    ----------
    epsilon:
        Target relative error, in (0, 1).
    delta:
        Target failure probability, in (0, 1).
    """

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        check_epsilon_delta(self.epsilon, self.delta)

    def split_delta(self, parts: int) -> "ApproximationParameters":
        """Return parameters with the failure budget split across ``parts``
        independent sub-steps (union bound)."""
        if parts <= 0:
            raise ValueError("parts must be positive")
        return ApproximationParameters(self.epsilon, self.delta / parts)

    def with_epsilon(self, epsilon: float) -> "ApproximationParameters":
        return ApproximationParameters(epsilon, self.delta)

    def with_delta(self, delta: float) -> "ApproximationParameters":
        return ApproximationParameters(self.epsilon, delta)


def relative_error(estimate: float, truth: float) -> float:
    """Relative error |estimate - truth| / truth (0 if both are zero)."""
    if truth == 0:
        return 0.0 if estimate == 0 else math.inf
    return abs(estimate - truth) / abs(truth)


def required_repetitions(delta: float, base_failure: float = 1.0 / 3.0) -> int:
    """Number of independent repetitions needed so that the median of the
    repetitions fails with probability at most ``delta``, given that a single
    repetition fails with probability at most ``base_failure`` < 1/2.

    This is the standard Chernoff-bound computation used for median
    amplification (see e.g. the proof of Lemma 22).
    """
    if not 0 < delta < 1:
        raise ValueError("delta must be in (0, 1)")
    if not 0 < base_failure < 0.5:
        raise ValueError("base_failure must be in (0, 1/2)")
    gap = 0.5 - base_failure
    repetitions = math.ceil(math.log(1.0 / delta) / (2.0 * gap * gap))
    # Always use an odd number so the median is unambiguous.
    if repetitions % 2 == 0:
        repetitions += 1
    return max(repetitions, 1)


def median_amplify(
    estimator: Callable[[], float],
    delta: float,
    base_failure: float = 1.0 / 3.0,
) -> float:
    """Run ``estimator`` independently and return the median of the results.

    If each run of ``estimator`` returns a value outside the desired accuracy
    window with probability at most ``base_failure`` < 1/2, then the median of
    ``required_repetitions(delta, base_failure)`` runs is outside the window
    with probability at most ``delta``.
    """
    repetitions = required_repetitions(delta, base_failure)
    values = [float(estimator()) for _ in range(repetitions)]
    return float(np.median(values))


def median_of_means(
    samples: Sequence[float],
    groups: int,
) -> float:
    """Median-of-means estimator over ``samples`` split into ``groups`` groups.

    A robust estimator of the mean of the sampled distribution: split the
    samples into groups, average within each group and take the median of the
    group averages.
    """
    if groups <= 0:
        raise ValueError("groups must be positive")
    data = np.asarray(list(samples), dtype=float)
    if data.size == 0:
        raise ValueError("samples must be non-empty")
    groups = min(groups, data.size)
    chunks: List[np.ndarray] = np.array_split(data, groups)
    means = [float(chunk.mean()) for chunk in chunks if chunk.size > 0]
    return float(np.median(means))


def chernoff_sample_size(epsilon: float, delta: float, scale: float = 3.0) -> int:
    """Sample size sufficient for a multiplicative (epsilon, delta) estimate of
    a Bernoulli/Poisson-type mean via the standard Chernoff bound, assuming the
    per-sample relative variance is at most ``scale``.
    """
    check_epsilon_delta(epsilon, delta)
    return int(math.ceil(scale * math.log(2.0 / delta) / (epsilon * epsilon)))
