"""Tree automata and counting accepted inputs (Definitions 49, 50, Lemma 51).

A (nondeterministic, top-down) tree automaton ``A = (S, Sigma, Delta, s0)``
runs over labelled rooted trees in which every node has at most two children
(``Trees_2[Sigma]``, Definition 49).  A run assigns a state to every node such
that the transition relation is respected (Definition 50); the automaton
accepts a labelled tree if some run assigns the initial state to the root.

The FPRAS of Theorem 16 reduces answer counting to counting the accepted
labelled trees over a *fixed* tree shape (the nice tree decomposition), and
Lemma 51 (Arenas–Croquevielle–Jayaram–Riveros) supplies an FPRAS for that
counting problem.  This module implements

* the automaton model and acceptance test (:meth:`TreeAutomaton.accepts`),
* brute-force counting of accepted labellings (tests / tiny instances),
* :meth:`TreeAutomaton.count_labelings` — an ACJR-inspired approximate
  counter: a bottom-up dynamic program over (node, state) pairs that is exact
  at nodes whose transition targets form products or disjoint unions, and uses
  Karp–Luby union estimation with recursive approximate-uniform sampling where
  target languages may overlap (exactly the situation created by existential
  variables).  See DESIGN.md, substitution 3, for how this relates to the
  original ACJR construction.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from repro.util.rng import RNGLike, as_generator
from repro.util.validation import check_epsilon_delta

State = Hashable
Label = Hashable
NodeId = Hashable
#: A transition target: () for a leaf transition, (s,) for one child,
#: (s1, s2) for two (ordered) children.
Target = Tuple[State, ...]
#: A labelling of a rooted tree.
Labeling = Dict[NodeId, Label]


@dataclass(frozen=True)
class RootedTree:
    """A rooted tree with at most two (ordered) children per node."""

    root: NodeId
    children: Mapping[NodeId, Tuple[NodeId, ...]]

    def __post_init__(self) -> None:
        for node, kids in self.children.items():
            if len(kids) > 2:
                raise ValueError(f"node {node!r} has more than two children")

    def nodes(self) -> List[NodeId]:
        """All nodes in root-to-leaf (preorder) order."""
        order: List[NodeId] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            order.append(node)
            stack.extend(reversed(self.children.get(node, ())))
        return order

    def bottom_up(self) -> List[NodeId]:
        return list(reversed(self.nodes()))

    def children_of(self, node: NodeId) -> Tuple[NodeId, ...]:
        return tuple(self.children.get(node, ()))

    def size(self) -> int:
        return len(self.nodes())

    def subtree_nodes(self, node: NodeId) -> List[NodeId]:
        order: List[NodeId] = []
        stack = [node]
        while stack:
            current = stack.pop()
            order.append(current)
            stack.extend(reversed(self.children.get(current, ())))
        return order


class TreeAutomaton:
    """A nondeterministic top-down tree automaton (Definition 50).

    ``transitions`` maps ``(state, label)`` to the *set* of allowed targets
    (the paper writes the transition function as single-valued but uses it as
    a relation in the Lemma-52 construction; a relation is the general form).
    """

    def __init__(
        self,
        states: Iterable[State],
        alphabet: Iterable[Label],
        transitions: Mapping[Tuple[State, Label], Iterable[Target]],
        initial_state: State,
    ) -> None:
        self._states: Set[State] = set(states)
        self._alphabet: Set[Label] = set(alphabet)
        if initial_state not in self._states:
            raise ValueError("the initial state must be one of the states")
        self._initial = initial_state
        self._transitions: Dict[Tuple[State, Label], Set[Target]] = {}
        for (state, label), targets in transitions.items():
            if state not in self._states:
                raise ValueError(f"transition from unknown state {state!r}")
            if label not in self._alphabet:
                raise ValueError(f"transition on unknown label {label!r}")
            target_set = set()
            for target in targets:
                target = tuple(target)
                if len(target) > 2:
                    raise ValueError("targets have at most two states")
                for child_state in target:
                    if child_state not in self._states:
                        raise ValueError(f"transition to unknown state {child_state!r}")
                target_set.add(target)
            if target_set:
                self._transitions[(state, label)] = target_set
        # Index the states that have at least one transition on a given label;
        # acceptance tests only need to consider those states at a node.
        self._states_by_label: Dict[Label, Set[State]] = {}
        for (state, label) in self._transitions:
            self._states_by_label.setdefault(label, set()).add(state)

    # ----------------------------------------------------------------- access
    @property
    def states(self) -> FrozenSet[State]:
        return frozenset(self._states)

    @property
    def alphabet(self) -> FrozenSet[Label]:
        return frozenset(self._alphabet)

    @property
    def initial_state(self) -> State:
        return self._initial

    def targets(self, state: State, label: Label) -> FrozenSet[Target]:
        return frozenset(self._transitions.get((state, label), set()))

    def labels_from(self, state: State) -> List[Label]:
        """Labels for which the state has at least one transition."""
        return sorted(
            {label for (s, label) in self._transitions if s == state}, key=repr
        )

    def num_transitions(self) -> int:
        return sum(len(targets) for targets in self._transitions.values())

    # ------------------------------------------------------------- acceptance
    def viable_states(self, tree: RootedTree, labeling: Labeling, node: NodeId) -> Set[State]:
        """The set of states ``s`` such that the labelled subtree rooted at
        ``node`` admits an accepting run starting from ``s``."""
        viable: Dict[NodeId, Set[State]] = {}
        for current in reversed(tree.subtree_nodes(node)):
            label = labeling[current]
            kids = tree.children_of(current)
            states: Set[State] = set()
            for state in self._states_by_label.get(label, ()):
                targets = self._transitions.get((state, label), set())
                if not targets:
                    continue
                if len(kids) == 0:
                    if () in targets:
                        states.add(state)
                elif len(kids) == 1:
                    child_viable = viable[kids[0]]
                    if any(len(t) == 1 and t[0] in child_viable for t in targets):
                        states.add(state)
                else:
                    left_viable, right_viable = viable[kids[0]], viable[kids[1]]
                    if any(
                        len(t) == 2 and t[0] in left_viable and t[1] in right_viable
                        for t in targets
                    ):
                        states.add(state)
            viable[current] = states
        return viable[node]

    def accepts(self, tree: RootedTree, labeling: Labeling) -> bool:
        """Whether the automaton accepts the labelled tree (Definition 50)."""
        missing = [node for node in tree.nodes() if node not in labeling]
        if missing:
            raise ValueError(f"labeling is missing nodes {missing!r}")
        return self._initial in self.viable_states(tree, labeling, tree.root)

    # ---------------------------------------------------- brute-force counting
    def count_labelings_bruteforce(self, tree: RootedTree) -> int:
        """The number of labellings of ``tree`` accepted by the automaton, by
        exhaustive enumeration over ``|Sigma|^{|tree|}`` labellings (tests and
        tiny instances only)."""
        nodes = tree.nodes()
        alphabet = sorted(self._alphabet, key=repr)
        count = 0
        for combination in itertools.product(alphabet, repeat=len(nodes)):
            labeling = dict(zip(nodes, combination))
            if self.accepts(tree, labeling):
                count += 1
        return count

    def count_nslice_bruteforce(self, size: int) -> int:
        """|L_N(A)| by brute force: enumerate every rooted tree with ``size``
        nodes and at most two children per node, and every labelling of it.
        Exponential; used only to validate the N-slice semantics on tiny
        automata."""
        total = 0
        for tree in _enumerate_trees(size):
            total += self.count_labelings_bruteforce(tree)
        return total

    # ----------------------------------------------- approximate counting (ACJR)
    def count_labelings(
        self,
        tree: RootedTree,
        epsilon: float = 0.1,
        delta: float = 0.05,
        rng: RNGLike = None,
        disjoint_union_hints: Optional[Callable[[State, Label], bool]] = None,
        samples_per_union: Optional[int] = None,
    ) -> float:
        """Approximately count the labellings of ``tree`` accepted by the
        automaton (the fixed-tree case of Lemma 51).

        ``disjoint_union_hints(state, label)`` may certify that the languages
        of the different targets of ``(state, label)`` are pairwise disjoint;
        the estimator then sums their sizes exactly instead of sampling.  (The
        Lemma-52 reduction supplies this hint for transitions that re-bind a
        *free* variable, where disjointness holds by construction.)
        """
        check_epsilon_delta(epsilon, delta)
        estimator = _LanguageEstimator(
            automaton=self,
            tree=tree,
            rng=as_generator(rng),
            epsilon=epsilon,
            delta=delta,
            disjoint_union_hints=disjoint_union_hints,
            samples_per_union=samples_per_union,
        )
        return estimator.estimate(tree.root, self._initial)

    def sample_labeling(
        self,
        tree: RootedTree,
        epsilon: float = 0.1,
        delta: float = 0.05,
        rng: RNGLike = None,
        disjoint_union_hints: Optional[Callable[[State, Label], bool]] = None,
    ) -> Optional[Labeling]:
        """Draw an (approximately uniform) accepted labelling of ``tree``, or
        ``None`` if the language is empty.  This is the sampling counterpart
        ACJR provide alongside their counter (used for Section 6)."""
        generator = as_generator(rng)
        estimator = _LanguageEstimator(
            automaton=self,
            tree=tree,
            rng=generator,
            epsilon=epsilon,
            delta=delta,
            disjoint_union_hints=disjoint_union_hints,
            samples_per_union=None,
        )
        if estimator.estimate(tree.root, self._initial) <= 0:
            return None
        return estimator.sample(tree.root, self._initial)


class _LanguageEstimator:
    """Bottom-up estimator of ``|L(node, state)|`` — the number of accepted
    labellings of the subtree rooted at ``node`` when started in ``state`` —
    with a companion approximate-uniform sampler.  Implements the scheme
    described in the module docstring."""

    def __init__(
        self,
        automaton: TreeAutomaton,
        tree: RootedTree,
        rng: np.random.Generator,
        epsilon: float,
        delta: float,
        disjoint_union_hints: Optional[Callable[[State, Label], bool]],
        samples_per_union: Optional[int],
    ) -> None:
        self._automaton = automaton
        self._tree = tree
        self._rng = rng
        self._epsilon = epsilon
        self._delta = delta
        self._hints = disjoint_union_hints
        if samples_per_union is None:
            samples_per_union = int(min(max(64, math.ceil(12.0 / (epsilon ** 2))), 4000))
        self._samples_per_union = samples_per_union
        self._estimates: Dict[Tuple[NodeId, State], float] = {}
        # Estimate of |U(node, state, label)| per reachable label.
        self._label_estimates: Dict[Tuple[NodeId, State], Dict[Label, float]] = {}

    # ------------------------------------------------------------ estimation
    def estimate(self, node: NodeId, state: State) -> float:
        key = (node, state)
        if key in self._estimates:
            return self._estimates[key]
        per_label: Dict[Label, float] = {}
        total = 0.0
        for label in self._automaton.labels_from(state):
            value = self._estimate_union(node, state, label)
            if value > 0:
                per_label[label] = value
                total += value
        self._estimates[key] = total
        self._label_estimates[key] = per_label
        return total

    def _targets(self, node: NodeId, state: State, label: Label) -> List[Target]:
        kids = self._tree.children_of(node)
        arity = len(kids)
        return sorted(
            (t for t in self._automaton.targets(state, label) if len(t) == arity),
            key=repr,
        )

    def _target_size(self, node: NodeId, target: Target) -> float:
        kids = self._tree.children_of(node)
        size = 1.0
        for child, child_state in zip(kids, target):
            size *= self.estimate(child, child_state)
        return size

    def _estimate_union(self, node: NodeId, state: State, label: Label) -> float:
        targets = self._targets(node, state, label)
        if not targets:
            return 0.0
        kids = self._tree.children_of(node)
        if not kids:
            # Leaf: the only labelling of the subtree is {node: label}.
            return 1.0 if () in targets else 0.0
        sizes = [self._target_size(node, target) for target in targets]
        total = sum(sizes)
        if total <= 0:
            return 0.0
        positive = [(t, s) for t, s in zip(targets, sizes) if s > 0]
        if len(positive) == 1:
            return positive[0][1]
        if self._hints is not None and self._hints(state, label):
            # Certified pairwise-disjoint target languages: exact sum.
            return total
        # Karp–Luby union estimation.
        targets_pos = [t for t, _ in positive]
        sizes_pos = np.asarray([s for _, s in positive], dtype=float)
        probabilities = sizes_pos / sizes_pos.sum()
        successes = 0
        samples = self._samples_per_union
        for _ in range(samples):
            index = int(self._rng.choice(len(targets_pos), p=probabilities))
            target = targets_pos[index]
            element = self._sample_target(node, target)
            if element is None:
                continue
            owner = self._owner(node, state, label, targets_pos, element)
            if owner == index:
                successes += 1
        fraction = successes / samples if samples else 0.0
        return float(sizes_pos.sum() * fraction)

    def _owner(
        self,
        node: NodeId,
        state: State,
        label: Label,
        targets: Sequence[Target],
        element: Dict[NodeId, Dict[NodeId, Label]],
    ) -> Optional[int]:
        """Index of the first target whose (product of) child languages
        contains the sampled child labellings."""
        kids = self._tree.children_of(node)
        viable_per_child = [
            self._automaton.viable_states(self._tree, element[child], child)
            for child in kids
        ]
        for index, target in enumerate(targets):
            if all(
                child_state in viable
                for child_state, viable in zip(target, viable_per_child)
            ):
                return index
        return None

    # -------------------------------------------------------------- sampling
    def _sample_target(
        self, node: NodeId, target: Target
    ) -> Optional[Dict[NodeId, Labeling]]:
        """Sample child labellings (one labelling per child subtree) from the
        product language of ``target``."""
        kids = self._tree.children_of(node)
        result: Dict[NodeId, Labeling] = {}
        for child, child_state in zip(kids, target):
            labeling = self.sample(child, child_state)
            if labeling is None:
                return None
            result[child] = labeling
        return result

    def sample(self, node: NodeId, state: State, max_attempts: int = 64) -> Optional[Labeling]:
        """An (approximately uniform) accepted labelling of the subtree rooted
        at ``node`` started in ``state``; ``None`` if the language is empty."""
        total = self.estimate(node, state)
        if total <= 0:
            return None
        per_label = self._label_estimates[(node, state)]
        labels = sorted(per_label, key=repr)
        weights = np.asarray([per_label[label] for label in labels], dtype=float)
        label = labels[int(self._rng.choice(len(labels), p=weights / weights.sum()))]

        targets = self._targets(node, state, label)
        kids = self._tree.children_of(node)
        if not kids:
            return {node: label}
        sizes = np.asarray([self._target_size(node, t) for t in targets], dtype=float)
        mask = sizes > 0
        targets = [t for t, keep in zip(targets, mask) if keep]
        sizes = sizes[mask]
        if len(targets) == 0:
            return None
        probabilities = sizes / sizes.sum()
        disjoint = len(targets) == 1 or (
            self._hints is not None and self._hints(state, label)
        )
        for _ in range(max_attempts):
            index = int(self._rng.choice(len(targets), p=probabilities))
            target = targets[index]
            element = self._sample_target(node, target)
            if element is None:
                continue
            if not disjoint:
                owner = self._owner(node, state, label, targets, element)
                if owner != index:
                    continue
            labeling: Labeling = {node: label}
            for child_labeling in element.values():
                labeling.update(child_labeling)
            return labeling
        # Fall back to the last sample even if rejection failed repeatedly
        # (introduces a small bias but guarantees termination).
        if element is not None:
            labeling = {node: label}
            for child_labeling in element.values():
                labeling.update(child_labeling)
            return labeling
        return None


def _enumerate_trees(size: int) -> Iterable[RootedTree]:
    """Enumerate all rooted trees with ``size`` nodes and at most two children
    per node (children are ordered).  Node identifiers are assigned in
    preorder.  Exponential — testing helper only."""
    if size <= 0:
        return

    def build(count: int, next_id: int) -> Iterable[Tuple[Dict[NodeId, Tuple[NodeId, ...]], NodeId, int]]:
        """Yield (children-map, root, next_free_id) for trees with ``count``
        nodes whose identifiers start at ``next_id``."""
        root = next_id
        if count == 1:
            yield {root: ()}, root, next_id + 1
            return
        # One child taking all remaining nodes.
        for child_map, child_root, free in build(count - 1, next_id + 1):
            children = dict(child_map)
            children[root] = (child_root,)
            yield children, root, free
        # Two children splitting the remaining nodes.
        for left_size in range(1, count - 1):
            right_size = count - 1 - left_size
            for left_map, left_root, middle in build(left_size, next_id + 1):
                for right_map, right_root, free in build(right_size, middle):
                    children = dict(left_map)
                    children.update(right_map)
                    children[root] = (left_root, right_root)
                    yield children, root, free

    for children_map, root, _ in build(size, 0):
        yield RootedTree(root=root, children=children_map)
