"""The FPTRASes of Theorem 5 (bounded treewidth + arity, ECQs) and
Theorem 13 (bounded adaptive width, DCQs).

Both theorems instantiate the same machine (Lemma 22): approximate the number
of hyperedges of the answer hypergraph using an EdgeFree oracle simulated by
colour coding and a Hom decision oracle.  The difference is only which Hom
algorithm backs the oracle:

* Theorem 5 relies on Theorem 31 (Dalmau–Kolaitis–Vardi): Hom(S) is
  polynomial-time when the left-hand structures have bounded treewidth and
  arity.  Adding the unary relations of Â never increases treewidth beyond
  ``max(tw, 0)`` (shown inside the proof of Theorem 5).
* Theorem 13 relies on Theorem 36 (Marx): Hom(S) is fixed-parameter tractable
  when the left-hand structures have bounded adaptive width; Lemma 35 shows
  adding unary relations keeps the adaptive width at most ``max(aw, 1)``.

The reproduction backs both with the same CSP-based homomorphism engine (see
DESIGN.md, substitution 2) — the reduction itself (colour coding, the answer
hypergraph, the DLM estimator) is reproduced faithfully.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.oracle_counting import (
    OracleCountingStatistics,
    approx_count_answers_via_oracle,
)
from repro.queries.prepared import PreparedQuery, prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.util.rng import RNGLike


@dataclass(frozen=True)
class FPTRASResult:
    """The result of an FPTRAS run, with the instance diagnostics that the
    theorems' preconditions refer to."""

    estimate: float
    epsilon: float
    delta: float
    treewidth: Optional[int]
    arity: int
    adaptive_width_upper_bound: Optional[float]
    oracle_mode: str
    statistics: OracleCountingStatistics

    def rounded(self) -> int:
        """The estimate rounded to the nearest integer (answer counts are
        integers; rounding cannot hurt the multiplicative guarantee when the
        true count is at least 1/(2 epsilon))."""
        return int(round(self.estimate))


def fptras_count_ecq(
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    rng: RNGLike = None,
    oracle_mode: str = "auto",
    treewidth_bound: Optional[int] = None,
    arity_bound: Optional[int] = None,
    return_result: bool = False,
    engine: str = DEFAULT_ENGINE,
    prepared: Optional[PreparedQuery] = None,
):
    """Theorem 5: FPTRAS for #ECQ on queries with bounded treewidth and arity.

    Parameters
    ----------
    query:
        Any ECQ (predicates, negated predicates, disequalities).
    database:
        A database whose signature contains the query's.
    epsilon, delta:
        The (epsilon, delta)-approximation contract.
    oracle_mode:
        Passed to the Lemma-22 engine: ``"colour_coding"`` (paper-faithful),
        ``"direct"`` (deterministic EdgeFree decisions) or ``"auto"``.
    treewidth_bound, arity_bound:
        Optional declared bounds ``t`` and ``a`` of the query class Φ_C.  When
        given, the query is checked against them.  A query *provably* outside
        the class is rejected (this mirrors the theorem being a statement
        about promise classes); when the computed treewidth is only a greedy
        upper bound, exceeding the declared bound proves nothing and merely
        warns — the algorithm still runs and is correct, just possibly not
        fixed-parameter efficient (mirroring the Theorem-13 adaptive-width
        check).  When omitted, no check is performed.
    return_result:
        Return a full :class:`FPTRASResult` instead of only the estimate.
    prepared:
        The shared compiled artifacts of the query's shape; computed (and
        cached process-wide) via :func:`repro.queries.prepared.prepare` when
        omitted.
    """
    if prepared is None:
        prepared = prepare(query)
    treewidth = prepared.treewidth()
    arity = query.arity()
    if treewidth_bound is not None and treewidth is not None and treewidth > treewidth_bound:
        if prepared.treewidth_is_exact():
            raise ValueError(
                f"query treewidth {treewidth} exceeds the declared bound {treewidth_bound}"
            )
        # A greedy upper bound exceeding the declared bound does not prove
        # the query is outside the class, so only warn.
        warnings.warn(
            f"the query's treewidth upper bound ({treewidth}) exceeds the "
            f"declared bound {treewidth_bound}; the FPTRAS still runs but may "
            "not be fixed-parameter efficient",
            stacklevel=2,
        )
    if arity_bound is not None and arity > arity_bound:
        raise ValueError(f"query arity {arity} exceeds the declared bound {arity_bound}")

    estimate, statistics = approx_count_answers_via_oracle(
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=rng,
        oracle_mode=oracle_mode,
        return_statistics=True,
        engine=engine,
    )
    result = FPTRASResult(
        estimate=float(estimate),
        epsilon=epsilon,
        delta=delta,
        treewidth=treewidth,
        arity=arity,
        adaptive_width_upper_bound=None,
        oracle_mode=statistics.oracle_mode,
        statistics=statistics,
    )
    return result if return_result else result.estimate


def fptras_count_dcq(
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    rng: RNGLike = None,
    oracle_mode: str = "auto",
    adaptive_width_bound: Optional[float] = None,
    return_result: bool = False,
    engine: str = DEFAULT_ENGINE,
    prepared: Optional[PreparedQuery] = None,
):
    """Theorem 13: FPTRAS for #DCQ on queries with bounded adaptive width
    (unbounded arity allowed).

    Rejects queries with negated predicates (those are ECQs; Theorem 13 does
    not cover them and whether it can is an open problem stated in Figure 1).
    Width artifacts come from the shared ``prepared`` query (computed and
    cached process-wide when omitted).
    """
    if query.query_class() is QueryClass.ECQ:
        raise ValueError(
            "Theorem 13 applies to DCQs (no negated predicates); "
            "use fptras_count_ecq for queries with negations"
        )
    if prepared is None:
        prepared = prepare(query)
    aw_upper = prepared.adaptive_width_upper()
    if (
        adaptive_width_bound is not None
        and aw_upper is not None
        and aw_upper > adaptive_width_bound + 1e-9
    ):
        # The upper bound exceeding the declared bound does not prove the
        # query is outside the class (aw <= fhw), so only warn.
        warnings.warn(
            "the query's adaptive-width upper bound (fhw = "
            f"{aw_upper:.3f}) exceeds the declared bound {adaptive_width_bound}; "
            "the FPTRAS still runs but may not be fixed-parameter efficient",
            stacklevel=2,
        )

    estimate, statistics = approx_count_answers_via_oracle(
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=rng,
        oracle_mode=oracle_mode,
        return_statistics=True,
        engine=engine,
    )
    result = FPTRASResult(
        estimate=float(estimate),
        epsilon=epsilon,
        delta=delta,
        treewidth=prepared.treewidth(),
        arity=query.arity(),
        adaptive_width_upper_bound=aw_upper,
        oracle_mode=statistics.oracle_mode,
        statistics=statistics,
    )
    return result if return_result else result.estimate
