"""The paper's core contribution: approximation schemes for counting answers
to (extended) conjunctive queries.

Entry points
------------
* :data:`REGISTRY` / :class:`SchemeRegistry` — the unified scheme registry:
  every counting scheme behind one ``count(prepared, database, ...)``
  envelope; all the wrappers below dispatch through it.
* :func:`approx_count_answers` — dispatching convenience wrapper: picks the
  FPRAS (Theorem 16) for plain CQs and the appropriate FPTRAS (Theorems 5/13)
  otherwise, and returns a rounded integer estimate.
* :func:`fptras_count_ecq` — Theorem 5 (bounded treewidth + arity, ECQ).
* :func:`fptras_count_dcq` — Theorem 13 (bounded adaptive width, DCQ).
* :func:`fpras_count_cq` — Theorem 16 (bounded fractional hypertreewidth, CQ).
* :func:`count_answers_exact` — exact baselines.
* :func:`classify_query` / :func:`classify_class` — the Figure-1 dichotomy.

All of them consume :class:`repro.queries.prepared.PreparedQuery` artifacts
(hypergraph, widths, decompositions), computed at most once per canonical
query shape per process.
"""

from __future__ import annotations

from typing import Optional

from repro.core.associated_structures import (
    add_colour_relations,
    build_A,
    build_A_hat,
    build_B,
    build_B_hat,
    build_B_hat_scaffold,
    variable_order,
)
from repro.core.answer_hypergraph import (
    DirectEdgeFreeOracle,
    build_answer_hypergraph,
    vertex_classes,
)
from repro.core.bag_solutions import bag_solutions, project_solutions
from repro.core.colour_coding import ColourCodingEdgeFreeOracle
from repro.core.dichotomy import (
    ClassVerdict,
    QueryReport,
    Verdict,
    classify_class,
    classify_query,
)
from repro.core.dlm import (
    approx_count_via_oracle,
    exact_count_via_oracle,
    list_edges_via_oracle,
)
from repro.core.exact import (
    count_answers_exact,
    count_solutions_exact,
    enumerate_answers_exact,
)
from repro.core.fpras import FPRASResult, build_tree_automaton, fpras_count_cq
from repro.core.fptras import FPTRASResult, fptras_count_dcq, fptras_count_ecq
from repro.core.oracle_counting import (
    approx_count_answers_via_oracle,
    exact_count_answers_via_oracle,
)
from repro.core.registry import (
    REGISTRY,
    CountResult,
    SchemeRegistry,
    SchemeSpec,
    default_registry,
)
from repro.core.tree_automaton import RootedTree, TreeAutomaton
from repro.queries.prepared import PreparedQuery, prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.util.rng import RNGLike


def approx_count_answers(
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float = 0.1,
    delta: float = 0.05,
    seed: RNGLike = None,
    method: str = "auto",
    engine: str = DEFAULT_ENGINE,
) -> int:
    """Approximately count ``|Ans(query, database)|`` and return the estimate
    rounded to the nearest integer.

    ``method`` may be ``"auto"`` (FPRAS for plain CQs, FPTRAS otherwise),
    ``"fpras"`` (force Theorem 16; CQs only), ``"fptras"`` (force the
    Lemma-22 engine of Theorems 5/13), ``"exact"``, or any registered scheme
    name (``exact`` / ``oracle_exact`` / ``fpras_cq`` / ``fptras_dcq`` /
    ``fptras_ecq``).  Dispatch goes through :data:`REGISTRY`.  ``engine``
    selects the CSP engine every scheme solves with (``"indexed"`` /
    ``"naive"`` / ``"columnar"``); estimates are bit-identical across
    engines under equal seeds.
    """
    query_class = query.query_class()
    if method == "auto":
        method = "fpras" if query_class is QueryClass.CQ else "fptras"
    if method == "fpras":
        scheme = "fpras_cq"
    elif method == "fptras":
        scheme = "fptras_ecq" if query_class is QueryClass.ECQ else "fptras_dcq"
    elif method in REGISTRY.names(include_unions=False):
        scheme = method
    else:
        raise ValueError(f"unknown method {method!r}")
    result = REGISTRY.count(
        scheme, query, database, epsilon=epsilon, delta=delta, rng=seed, engine=engine
    )
    return result.count


__all__ = [
    "REGISTRY",
    "SchemeRegistry",
    "SchemeSpec",
    "CountResult",
    "default_registry",
    "PreparedQuery",
    "prepare",
    "approx_count_answers",
    "count_answers_exact",
    "count_solutions_exact",
    "enumerate_answers_exact",
    "fptras_count_ecq",
    "fptras_count_dcq",
    "fpras_count_cq",
    "FPTRASResult",
    "FPRASResult",
    "classify_query",
    "classify_class",
    "ClassVerdict",
    "QueryReport",
    "Verdict",
    "build_A",
    "build_B",
    "build_A_hat",
    "build_B_hat",
    "build_B_hat_scaffold",
    "add_colour_relations",
    "variable_order",
    "build_answer_hypergraph",
    "vertex_classes",
    "DirectEdgeFreeOracle",
    "ColourCodingEdgeFreeOracle",
    "approx_count_via_oracle",
    "exact_count_via_oracle",
    "list_edges_via_oracle",
    "approx_count_answers_via_oracle",
    "exact_count_answers_via_oracle",
    "bag_solutions",
    "project_solutions",
    "build_tree_automaton",
    "TreeAutomaton",
    "RootedTree",
]
