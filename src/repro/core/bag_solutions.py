"""Bag solutions ``Sol(phi, D, B)`` (Definitions 44–47, Lemma 48).

For a CQ ``phi``, a database ``D`` and a set of variables ``B ⊆ vars(phi)``, a
*solution of (phi, D, B)* is an assignment ``alpha : B -> U(D)`` such that for
every atom of ``phi`` there exists a full assignment, consistent with
``alpha``, that maps the atom into the corresponding relation of ``D``
(Definition 47).  The condition decomposes per atom, so

    ``Sol(phi, D, B) = ⋈_atoms  proj_{B ∩ vars(atom)}(consistent tuples)``

and Lemma 48 (Grohe–Marx) bounds the time to enumerate it — and its size —
polynomially when the fractional edge cover number of ``H(phi)[B]`` is
bounded.  This module implements the enumeration by per-atom projection and
hash joins; it is the workhorse of the Theorem-16 FPRAS (it computes the bag
relations ``Sol_t`` of Lemma 52).

Assignments are represented as immutable, canonically ordered tuples of
``(variable, value)`` pairs so they can serve as automaton states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.queries.atoms import Atom, Variable
from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Structure

Element = Hashable
#: Canonical immutable representation of a partial assignment.
AssignmentKey = Tuple[Tuple[Variable, Element], ...]


def assignment_key(assignment: Dict[Variable, Element]) -> AssignmentKey:
    """Canonical (sorted, immutable) form of a partial assignment."""
    return tuple(sorted(assignment.items(), key=lambda item: item[0]))


def assignment_dict(key: AssignmentKey) -> Dict[Variable, Element]:
    """Inverse of :func:`assignment_key`."""
    return dict(key)


def are_consistent(first: Dict[Variable, Element], second: Dict[Variable, Element]) -> bool:
    """Definition 44: two assignments are consistent if they agree on every
    shared variable."""
    if len(second) < len(first):
        first, second = second, first
    return all(second.get(v, value) == value for v, value in first.items())


def compose(first: Dict[Variable, Element], second: Dict[Variable, Element]) -> Dict[Variable, Element]:
    """Definition 45: the composition of two consistent assignments."""
    if not are_consistent(first, second):
        raise ValueError("cannot compose inconsistent assignments")
    combined = dict(first)
    combined.update(second)
    return combined


def project(assignment: Dict[Variable, Element], variables: Iterable[Variable]) -> Dict[Variable, Element]:
    """Definition 44/46: the projection of an assignment onto a variable set
    (only variables the assignment actually defines are kept)."""
    wanted = set(variables)
    return {v: value for v, value in assignment.items() if v in wanted}


def _atom_projection(
    atom: Atom, database: Structure, bag: FrozenSet[Variable]
) -> Optional[Set[AssignmentKey]]:
    """The set of partial assignments of ``B ∩ vars(atom)`` that extend to a
    tuple of the atom's relation (respecting repeated variables within the
    atom).  Returns ``None`` when the relation admits *no* internally
    consistent tuple at all — in that case ``Sol(phi, D, B)`` is empty no
    matter what ``B`` is.
    """
    relation = database.relation(atom.relation)
    bag_positions = [
        (position, variable)
        for position, variable in enumerate(atom.args)
        if variable in bag
    ]
    projections: Set[AssignmentKey] = set()
    any_consistent = False
    for fact in relation:
        # Repeated variables inside the atom must receive equal values.
        assignment: Dict[Variable, Element] = {}
        consistent = True
        for position, variable in enumerate(atom.args):
            value = fact[position]
            if variable in assignment and assignment[variable] != value:
                consistent = False
                break
            assignment[variable] = value
        if not consistent:
            continue
        any_consistent = True
        projections.add(
            assignment_key({variable: assignment[variable] for _, variable in bag_positions})
        )
    if not any_consistent:
        return None
    return projections


def _hash_join(
    left: Set[AssignmentKey], right: Set[AssignmentKey]
) -> Set[AssignmentKey]:
    """Natural join of two sets of partial assignments."""
    if not left or not right:
        return set()
    left_dicts = [dict(key) for key in left]
    right_dicts = [dict(key) for key in right]
    left_vars = set().union(*(set(d) for d in left_dicts)) if left_dicts else set()
    right_vars = set().union(*(set(d) for d in right_dicts)) if right_dicts else set()
    shared = sorted(left_vars & right_vars)

    index: Dict[Tuple, List[Dict[Variable, Element]]] = {}
    for entry in right_dicts:
        signature = tuple(entry.get(v) for v in shared)
        index.setdefault(signature, []).append(entry)

    joined: Set[AssignmentKey] = set()
    for entry in left_dicts:
        signature = tuple(entry.get(v) for v in shared)
        for partner in index.get(signature, []):
            combined = dict(entry)
            combined.update(partner)
            joined.add(assignment_key(combined))
    return joined


def bag_solutions(
    query: ConjunctiveQuery, database: Structure, bag: Iterable[Variable]
) -> Set[AssignmentKey]:
    """``Sol(phi, D, B)`` as a set of canonical assignment keys (Lemma 48).

    Only defined for CQs (the FPRAS of Theorem 16 is restricted to queries
    without disequalities and negations); raises otherwise.
    """
    if query.negated_atoms or query.disequalities:
        raise ValueError("bag solutions are defined for plain CQs only (Theorem 16)")
    bag_set = frozenset(bag)
    unknown = bag_set - query.variables
    if unknown:
        raise ValueError(f"bag contains unknown variables {sorted(unknown)}")
    query._check_signature_compatibility(database)

    # The empty bag: the unique empty assignment is a solution iff every
    # atom's relation contains an internally consistent tuple.
    current: Set[AssignmentKey] = {assignment_key({})}
    # Join atoms in order of decreasing overlap with the accumulated variable
    # set so intermediate results stay small.
    atoms = list(query.atoms)
    processed_vars: Set[Variable] = set()
    remaining = list(atoms)
    while remaining:
        remaining.sort(
            key=lambda atom: (-len(set(atom.args) & (processed_vars | bag_set)), str(atom))
        )
        atom = remaining.pop(0)
        projection = _atom_projection(atom, database, bag_set)
        if projection is None:
            return set()
        current = _hash_join(current, projection)
        if not current:
            return set()
        processed_vars |= set(atom.args) & bag_set
    return current


def project_solutions(
    solutions: Iterable[AssignmentKey], variables: Iterable[Variable]
) -> Set[AssignmentKey]:
    """Project a set of assignment keys onto a variable set (Definition 46)."""
    wanted = set(variables)
    projected: Set[AssignmentKey] = set()
    for key in solutions:
        projected.add(tuple((v, value) for v, value in key if v in wanted))
    return projected


def solutions_consistent_with(
    solutions: Iterable[AssignmentKey], anchor: AssignmentKey
) -> List[AssignmentKey]:
    """The assignments among ``solutions`` that are consistent with
    ``anchor`` (the sets ``A_alpha`` used in the Lemma-52 automaton)."""
    anchor_dict = dict(anchor)
    result: List[AssignmentKey] = []
    for key in solutions:
        candidate = dict(key)
        if are_consistent(anchor_dict, candidate):
            result.append(key)
    return sorted(result)
