"""Bag solutions ``Sol(phi, D, B)`` (Definitions 44–47, Lemma 48).

For a CQ ``phi``, a database ``D`` and a set of variables ``B ⊆ vars(phi)``, a
*solution of (phi, D, B)* is an assignment ``alpha : B -> U(D)`` such that for
every atom of ``phi`` there exists a full assignment, consistent with
``alpha``, that maps the atom into the corresponding relation of ``D``
(Definition 47).  The condition decomposes per atom, so

    ``Sol(phi, D, B) = ⋈_atoms  proj_{B ∩ vars(atom)}(consistent tuples)``

and Lemma 48 (Grohe–Marx) bounds the time to enumerate it — and its size —
polynomially when the fractional edge cover number of ``H(phi)[B]`` is
bounded.  This module implements the enumeration by per-atom projection and
hash joins; it is the workhorse of the Theorem-16 FPRAS (it computes the bag
relations ``Sol_t`` of Lemma 52).

The joins are index-driven: each atom's internally-consistent rows are
computed once per database (memoised on the structure's version-keyed
scratch cache, see :meth:`Structure.derived_cache`) and every pairwise join
hashes on the shared-variable projection of the canonical assignment keys —
no per-entry dict materialisation in the hot path.

Assignments are represented as immutable, canonically ordered tuples of
``(variable, value)`` pairs so they can serve as automaton states.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.queries.atoms import Atom, Variable
from repro.queries.query import ConjunctiveQuery
from repro.relational import columnar as _columnar
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure

Element = Hashable
#: Canonical immutable representation of a partial assignment.
AssignmentKey = Tuple[Tuple[Variable, Element], ...]


def assignment_key(assignment: Dict[Variable, Element]) -> AssignmentKey:
    """Canonical (sorted, immutable) form of a partial assignment."""
    return tuple(sorted(assignment.items(), key=lambda item: item[0]))


def assignment_dict(key: AssignmentKey) -> Dict[Variable, Element]:
    """Inverse of :func:`assignment_key`."""
    return dict(key)


def are_consistent(first: Dict[Variable, Element], second: Dict[Variable, Element]) -> bool:
    """Definition 44: two assignments are consistent if they agree on every
    shared variable."""
    if len(second) < len(first):
        first, second = second, first
    return all(second.get(v, value) == value for v, value in first.items())


def compose(first: Dict[Variable, Element], second: Dict[Variable, Element]) -> Dict[Variable, Element]:
    """Definition 45: the composition of two consistent assignments."""
    if not are_consistent(first, second):
        raise ValueError("cannot compose inconsistent assignments")
    combined = dict(first)
    combined.update(second)
    return combined


def project(assignment: Dict[Variable, Element], variables: Iterable[Variable]) -> Dict[Variable, Element]:
    """Definition 44/46: the projection of an assignment onto a variable set
    (only variables the assignment actually defines are kept)."""
    wanted = set(variables)
    return {v: value for v, value in assignment.items() if v in wanted}


def _atom_base(atom: Atom, database: Structure) -> Tuple[Tuple[Variable, ...], List[Tuple[Element, ...]]]:
    """The atom's internally-consistent value rows, deduplicated per distinct
    variable (repeated variables must receive equal values), memoised on the
    database's version-keyed scratch cache so every bag projection of the
    same atom reuses one relation scan."""
    cache = database.derived_cache()
    key = ("atom_base", atom.relation, atom.args)
    cached = cache.get(key)
    if cached is not None:
        return cached
    distinct: List[Variable] = []
    positions: List[int] = []
    seen: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []  # (position, position of first occurrence)
    for position, variable in enumerate(atom.args):
        first = seen.get(variable)
        if first is None:
            seen[variable] = position
            distinct.append(variable)
            positions.append(position)
        else:
            checks.append((position, first))
    rows: List[Tuple[Element, ...]] = []
    for fact in database.relation(atom.relation):
        if all(fact[position] == fact[first] for position, first in checks):
            rows.append(tuple(fact[position] for position in positions))
    result = (tuple(distinct), rows)
    cache[key] = result
    return result


def _atom_projection(
    atom: Atom, database: Structure, bag: FrozenSet[Variable]
) -> Optional[Set[AssignmentKey]]:
    """The set of partial assignments of ``B ∩ vars(atom)`` that extend to a
    tuple of the atom's relation (respecting repeated variables within the
    atom).  Returns ``None`` when the relation admits *no* internally
    consistent tuple at all — in that case ``Sol(phi, D, B)`` is empty no
    matter what ``B`` is.
    """
    variables, rows = _atom_base(atom, database)
    if not rows:
        return None
    # Canonically ordered (variable-sorted) projection columns.
    columns = sorted(
        (column for column, variable in enumerate(variables) if variable in bag),
        key=lambda column: variables[column],
    )
    ordered = tuple(variables[column] for column in columns)
    return {
        tuple(zip(ordered, (row[column] for column in columns))) for row in rows
    }


def _merge_sorted_keys(left: AssignmentKey, right: AssignmentKey) -> AssignmentKey:
    """Union of two consistent assignment keys, both sorted by variable."""
    if not left:
        return right
    if not right:
        return left
    merged: List[Tuple[Variable, Element]] = []
    i = j = 0
    while i < len(left) and j < len(right):
        lv, rv = left[i][0], right[j][0]
        if lv == rv:
            merged.append(left[i])
            i += 1
            j += 1
        elif lv < rv:
            merged.append(left[i])
            i += 1
        else:
            merged.append(right[j])
            j += 1
    merged.extend(left[i:])
    merged.extend(right[j:])
    return tuple(merged)


def _hash_join(
    left: Set[AssignmentKey], right: Set[AssignmentKey]
) -> Set[AssignmentKey]:
    """Natural join of two sets of partial assignments: a true hash join
    keyed on the shared-variable projection (no per-entry dict probing)."""
    if not left or not right:
        return set()
    # Keys built by this module always share one variable set per side.  For
    # ragged inputs, grouping by variable tuple gives standard natural-join
    # semantics per group pair (each pair joins on its own shared variables).
    left_groups: Dict[Tuple[Variable, ...], List[AssignmentKey]] = {}
    for key in left:
        left_groups.setdefault(tuple(v for v, _ in key), []).append(key)
    right_groups: Dict[Tuple[Variable, ...], List[AssignmentKey]] = {}
    for key in right:
        right_groups.setdefault(tuple(v for v, _ in key), []).append(key)

    joined: Set[AssignmentKey] = set()
    for left_vars, left_keys in left_groups.items():
        left_var_set = set(left_vars)
        left_positions_by_var = {v: i for i, v in enumerate(left_vars)}
        for right_vars, right_keys in right_groups.items():
            shared = sorted(left_var_set & set(right_vars))
            left_shared = tuple(left_positions_by_var[v] for v in shared)
            right_positions_by_var = {v: i for i, v in enumerate(right_vars)}
            right_shared = tuple(right_positions_by_var[v] for v in shared)
            # Build the hash table on the smaller side and probe with the
            # larger (the signature-matched merge is symmetric).
            if len(right_keys) <= len(left_keys):
                build_keys, build_shared = right_keys, right_shared
                probe_keys, probe_shared = left_keys, left_shared
            else:
                build_keys, build_shared = left_keys, left_shared
                probe_keys, probe_shared = right_keys, right_shared
            table: Dict[Tuple[Element, ...], List[AssignmentKey]] = {}
            for key in build_keys:
                signature = tuple(key[i][1] for i in build_shared)
                table.setdefault(signature, []).append(key)
            for key in probe_keys:
                signature = tuple(key[i][1] for i in probe_shared)
                partners = table.get(signature)
                if not partners:
                    continue
                for partner in partners:
                    joined.add(_merge_sorted_keys(key, partner))
    return joined


def _atom_base_columnar(atom: Atom, database: Structure):
    """Columnar twin of :func:`_atom_base`: the atom's internally-consistent
    rows as an ``(n, len(distinct))`` int32 code matrix over the database's
    interned universe, memoised on the version-keyed scratch cache.  Returns
    ``None`` when the database has no columnar mirror (NumPy absent or int32
    overflow) — callers then fall back to the Python path."""
    cache = database.derived_cache()
    key = ("atom_base_columnar", atom.relation, atom.args)
    cached = cache.get(key)
    if cached is not None:
        return cached
    rel = database.columnar_relation(atom.relation)
    if rel is None:
        return None
    np = _columnar.np
    distinct: List[Variable] = []
    positions: List[int] = []
    seen: Dict[Variable, int] = {}
    checks: List[Tuple[int, int]] = []
    for position, variable in enumerate(atom.args):
        first = seen.get(variable)
        if first is None:
            seen[variable] = position
            distinct.append(variable)
            positions.append(position)
        else:
            checks.append((position, first))
    if checks:
        live = np.ones(rel.num_rows, dtype=bool)
        for position, first in checks:
            live &= rel.columns[position] == rel.columns[first]
        live_idx = np.flatnonzero(live)
        columns = [rel.columns[position][live_idx] for position in positions]
    else:
        columns = [rel.columns[position] for position in positions]
    if columns:
        matrix = np.stack(columns, axis=1)
    else:
        matrix = np.zeros((rel.num_rows, 0), dtype=np.int32)
    result = (tuple(distinct), matrix)
    cache[key] = result
    return result


def _bag_solutions_columnar(
    query: ConjunctiveQuery, database: Structure, bag_set: FrozenSet[Variable]
) -> Optional[Set[AssignmentKey]]:
    """The vectorized join pipeline behind ``engine="columnar"``: per-atom
    bases and projections are int32 code matrices, every pairwise join is a
    sort/merge on integer group ids (:func:`repro.relational.columnar.
    matching_pairs`), and codes are decoded to canonical assignment keys only
    once at the end.  Returns ``None`` when columnar storage is unavailable
    (caller falls back to the Python hash joins); otherwise the result is
    set-identical to theirs.
    """
    encoder = database.universe_encoder()
    if encoder is None:
        return None
    np = _columnar.np
    # current = (variable tuple sorted ascending, distinct row matrix).
    current_vars: Tuple[Variable, ...] = ()
    current_rows = np.zeros((1, 0), dtype=np.int32)
    atoms = list(query.atoms)
    processed_vars: Set[Variable] = set()
    remaining = list(atoms)
    while remaining:
        remaining.sort(
            key=lambda atom: (-len(set(atom.args) & (processed_vars | bag_set)), str(atom))
        )
        atom = remaining.pop(0)
        base = _atom_base_columnar(atom, database)
        if base is None:
            return None
        variables, matrix = base
        if matrix.shape[0] == 0:
            return set()
        columns = sorted(
            (column for column, variable in enumerate(variables) if variable in bag_set),
            key=lambda column: variables[column],
        )
        ordered = tuple(variables[column] for column in columns)
        if columns:
            projection = _columnar.distinct_rows(matrix[:, columns])
        else:
            projection = np.zeros((1, 0), dtype=np.int32)
        # Natural join current ⋈ projection on their shared variables.
        shared = [v for v in current_vars if v in ordered]
        if shared:
            left_idx = [current_vars.index(v) for v in shared]
            right_idx = [ordered.index(v) for v in shared]
            left_rows, right_rows = _columnar.matching_pairs(
                current_rows[:, left_idx], projection[:, right_idx]
            )
        else:
            left_rows, right_rows = _columnar.cross_pairs(
                current_rows.shape[0], projection.shape[0]
            )
        if left_rows.shape[0] == 0:
            return set()
        merged_vars = tuple(sorted(set(current_vars) | set(ordered)))
        merged = np.empty((left_rows.shape[0], len(merged_vars)), dtype=np.int32)
        for j, variable in enumerate(merged_vars):
            if variable in current_vars:
                merged[:, j] = current_rows[left_rows, current_vars.index(variable)]
            else:
                merged[:, j] = projection[right_rows, ordered.index(variable)]
        current_vars, current_rows = merged_vars, merged
        processed_vars |= set(atom.args) & bag_set
    if not current_vars:
        return {()} if current_rows.shape[0] else set()
    # Decode column-wise: one (variable, value) pair list per column indexed
    # by code, then a single C-level map/zip pass — decoding row-by-row in
    # Python costs more than the whole vectorized join pipeline.
    values = encoder.values
    per_column = []
    for j, variable in enumerate(current_vars):
        pairs = [(variable, value) for value in values]
        per_column.append(map(pairs.__getitem__, current_rows[:, j].tolist()))
    return set(zip(*per_column))


def bag_solutions(
    query: ConjunctiveQuery,
    database: Structure,
    bag: Iterable[Variable],
    engine: str = DEFAULT_ENGINE,
) -> Set[AssignmentKey]:
    """``Sol(phi, D, B)`` as a set of canonical assignment keys (Lemma 48).

    Only defined for CQs (the FPRAS of Theorem 16 is restricted to queries
    without disequalities and negations); raises otherwise.  With
    ``engine="columnar"`` the per-atom projections and joins run as
    vectorized integer-key kernels (same result set, decoded once at the
    end), falling back to the Python hash joins when NumPy is unavailable.
    """
    if query.negated_atoms or query.disequalities:
        raise ValueError("bag solutions are defined for plain CQs only (Theorem 16)")
    bag_set = frozenset(bag)
    unknown = bag_set - query.variables
    if unknown:
        raise ValueError(f"bag contains unknown variables {sorted(unknown)}")
    query._check_signature_compatibility(database)

    if engine == "columnar":
        columnar_result = _bag_solutions_columnar(query, database, bag_set)
        if columnar_result is not None:
            return columnar_result

    # The empty bag: the unique empty assignment is a solution iff every
    # atom's relation contains an internally consistent tuple.
    current: Set[AssignmentKey] = {assignment_key({})}
    # Join atoms in order of decreasing overlap with the accumulated variable
    # set so intermediate results stay small.
    atoms = list(query.atoms)
    processed_vars: Set[Variable] = set()
    remaining = list(atoms)
    while remaining:
        remaining.sort(
            key=lambda atom: (-len(set(atom.args) & (processed_vars | bag_set)), str(atom))
        )
        atom = remaining.pop(0)
        projection = _atom_projection(atom, database, bag_set)
        if projection is None:
            return set()
        current = _hash_join(current, projection)
        if not current:
            return set()
        processed_vars |= set(atom.args) & bag_set
    return current


def project_solutions(
    solutions: Iterable[AssignmentKey], variables: Iterable[Variable]
) -> Set[AssignmentKey]:
    """Project a set of assignment keys onto a variable set (Definition 46)."""
    wanted = set(variables)
    projected: Set[AssignmentKey] = set()
    for key in solutions:
        projected.add(tuple((v, value) for v, value in key if v in wanted))
    return projected


def solutions_consistent_with(
    solutions: Iterable[AssignmentKey], anchor: AssignmentKey
) -> List[AssignmentKey]:
    """The assignments among ``solutions`` that are consistent with
    ``anchor`` (the sets ``A_alpha`` used in the Lemma-52 automaton)."""
    anchor_dict = dict(anchor)
    result: List[AssignmentKey] = []
    for key in solutions:
        candidate = dict(key)
        if are_consistent(anchor_dict, candidate):
            result.append(key)
    # key=repr: value types may be mixed (e.g. int vertices joined by string
    # vertices streamed in later), which plain tuple comparison cannot order.
    return sorted(result, key=repr)
