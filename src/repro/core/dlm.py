"""The Dell–Lapinskas–Meeks edge-estimation framework (Theorem 17).

Theorem 17 (Dell, Lapinskas, Meeks, SODA 2020): there is an algorithm that,
given an ``l``-uniform hypergraph ``H`` through nothing but its vertex set and
an oracle for ``EdgeFree(H[V_1, ..., V_l])`` on ``l``-partite vertex subsets,
computes an (epsilon, delta)-approximation of ``|E(H)|``.

The reproduction exposes the same *interface*: an estimator that sees only the
partition classes and an EdgeFree oracle.  Behind the interface we provide

* :func:`exact_count_via_oracle` — an exact counter by recursive splitting
  (the standard "binary-search for witnesses" technique): if the oracle
  reports an edge, split the largest class in two and recurse.  It makes
  ``O(|E| * l * log N)`` oracle calls and is used (a) as the ground-truth
  verifier, and (b) by the approximate estimator to count small sub-instances
  exactly.
* :func:`approx_count_via_oracle` — an adaptive subsample-then-count
  estimator: find a sampling rate at which the (exactly counted) number of
  surviving edges is of moderate size, scale back up, and median-amplify.
  This matches DLM's oracle access pattern and, on the non-adversarial answer
  hypergraphs produced by our workloads, its (epsilon, delta) contract; the
  worst-case polylogarithmic call bound of the original algorithm is not
  reproduced (see DESIGN.md, substitution 1).

Both routines work on class-aligned sub-instances, which is all Lemma 22 needs
after its permutation step (handled in :mod:`repro.core.oracle_counting`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Hashable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.util.estimation import required_repetitions
from repro.util.rng import RNGLike, as_generator
from repro.util.validation import check_epsilon_delta

Vertex = Hashable
#: An EdgeFree oracle: given one subset per partition class, return True iff
#: the restricted hypergraph has no hyperedge.
EdgeFreeOracle = Callable[[Sequence[Set[Vertex]]], bool]


@dataclass
class OracleCallCounter:
    """Wrap an EdgeFree oracle and count how many times it is invoked (used by
    the oracle-cost benches)."""

    oracle: EdgeFreeOracle
    calls: int = 0

    def __call__(self, subsets: Sequence[Set[Vertex]]) -> bool:
        self.calls += 1
        return self.oracle(subsets)


def _sorted_class(block: Set[Vertex]) -> List[Vertex]:
    return sorted(block, key=repr)


def exact_count_via_oracle(
    classes: Sequence[Set[Vertex]],
    oracle: EdgeFreeOracle,
    cap: Optional[int] = None,
) -> Tuple[int, bool]:
    """Exactly count the hyperedges of ``H[V_1, ..., V_l]`` using only the
    EdgeFree oracle, by recursive splitting.

    Parameters
    ----------
    classes:
        The class-aligned subsets ``V_1, ..., V_l``.
    oracle:
        EdgeFree oracle over class-aligned subsets.
    cap:
        Optional budget: stop as soon as the count reaches ``cap``.

    Returns
    -------
    (count, complete):
        ``count`` is exact when ``complete`` is true; otherwise counting was
        stopped at the cap and ``count == cap`` is a lower bound.
    """
    classes = [set(block) for block in classes]
    if any(not block for block in classes):
        return 0, True
    count = 0

    def recurse(blocks: List[List[Vertex]]) -> bool:
        """Count edges inside ``blocks``; returns False if the cap was hit."""
        nonlocal count
        if cap is not None and count >= cap:
            return False
        if oracle([set(block) for block in blocks]):
            return True
        if all(len(block) == 1 for block in blocks):
            count += 1
            return cap is None or count < cap
        # Split the largest block.
        largest = max(range(len(blocks)), key=lambda i: len(blocks[i]))
        block = blocks[largest]
        middle = len(block) // 2
        for half in (block[:middle], block[middle:]):
            if not half:
                continue
            new_blocks = list(blocks)
            new_blocks[largest] = half
            if not recurse(new_blocks):
                return False
        return True

    complete = recurse([_sorted_class(block) for block in classes])
    return count, complete


def list_edges_via_oracle(
    classes: Sequence[Set[Vertex]],
    oracle: EdgeFreeOracle,
    limit: Optional[int] = None,
) -> List[Tuple[Vertex, ...]]:
    """Enumerate the hyperedges of ``H[V_1, ..., V_l]`` using only the oracle
    (same splitting strategy as :func:`exact_count_via_oracle`).  Each edge is
    reported as a tuple with one vertex per class, in class order.  Used by
    the oracle-based uniform sampler (Section 6)."""
    classes = [set(block) for block in classes]
    if any(not block for block in classes):
        return []
    edges: List[Tuple[Vertex, ...]] = []

    def recurse(blocks: List[List[Vertex]]) -> bool:
        if limit is not None and len(edges) >= limit:
            return False
        if oracle([set(block) for block in blocks]):
            return True
        if all(len(block) == 1 for block in blocks):
            edges.append(tuple(block[0] for block in blocks))
            return limit is None or len(edges) < limit
        largest = max(range(len(blocks)), key=lambda i: len(blocks[i]))
        block = blocks[largest]
        middle = len(block) // 2
        for half in (block[:middle], block[middle:]):
            if not half:
                continue
            new_blocks = list(blocks)
            new_blocks[largest] = half
            if not recurse(new_blocks):
                return False
        return True

    recurse([_sorted_class(block) for block in classes])
    return edges


def _subsample(block: List[Vertex], probability: float, rng: np.random.Generator) -> List[Vertex]:
    if probability >= 1.0:
        return list(block)
    keep = rng.random(len(block)) < probability
    return [vertex for vertex, kept in zip(block, keep) if kept]


def _find_sampling_level(
    classes: Sequence[List[Vertex]],
    oracle: EdgeFreeOracle,
    cap: int,
    rng: np.random.Generator,
) -> int:
    """Find the smallest level ``j >= 1`` such that subsampling every class at
    per-edge survival ``2^-j`` leaves (with the drawn sample) at most ``cap``
    surviving edges."""
    num_classes = len(classes)
    max_level = (
        sum(max(1, int(math.ceil(math.log2(max(len(block), 1))))) for block in classes) + 4
    )
    for level in range(1, max_level + 1):
        per_class_probability = (2.0 ** (-level)) ** (1.0 / num_classes)
        sample = [set(_subsample(block, per_class_probability, rng)) for block in classes]
        count, complete = exact_count_via_oracle(sample, oracle, cap=cap)
        if complete and count <= cap:
            return level
    return max_level


def _subsample_estimate(
    classes: Sequence[List[Vertex]],
    oracle: EdgeFreeOracle,
    level: int,
    cap: int,
    rng: np.random.Generator,
    repeats: int = 1,
) -> float:
    """One (unamplified) estimate of |E| at sampling level ``level``: average
    the exactly-counted number of surviving edges over ``repeats`` independent
    subsamples and rescale by the per-edge survival probability."""
    num_classes = len(classes)
    per_edge_survival = 2.0 ** (-level)
    per_class_probability = per_edge_survival ** (1.0 / num_classes)
    total = 0.0
    for _ in range(repeats):
        sample = [set(_subsample(block, per_class_probability, rng)) for block in classes]
        count, complete = exact_count_via_oracle(sample, oracle, cap=4 * cap)
        if not complete:
            count = 4 * cap
        total += float(count)
    return (total / repeats) / per_edge_survival


def approx_count_via_oracle(
    classes: Sequence[Set[Vertex]],
    oracle: EdgeFreeOracle,
    epsilon: float,
    delta: float,
    rng: RNGLike = None,
    max_repetitions: int = 7,
) -> float:
    """An (epsilon, delta)-style approximation of the number of hyperedges of
    ``H[V_1, ..., V_l]`` using only EdgeFree oracle calls (the Theorem-17
    interface; see the module docstring for the contract caveat).

    Instances with at most ``~8 / epsilon^2`` edges are counted *exactly*
    (via the splitting counter), so the scheme degrades gracefully to exact
    counting — a property the downstream FPTRAS tests rely on.  Larger
    instances are estimated by subsample-then-count with median amplification
    over at most ``max_repetitions`` repetitions.
    """
    check_epsilon_delta(epsilon, delta)
    generator = as_generator(rng)
    class_lists = [_sorted_class(set(block)) for block in classes]
    if any(not block for block in class_lists):
        return 0.0

    target = max(8, int(math.ceil(4.0 / (epsilon * epsilon))))
    cap = 2 * target

    # Phase 1: exact counting with a budget.  Most parameterised-counting
    # workloads (and all correctness tests) finish here with an exact answer.
    count, complete = exact_count_via_oracle(class_lists, oracle, cap=cap)
    if complete:
        return float(count)

    # Phase 2: the count exceeds the budget — subsample and rescale.
    level = _find_sampling_level(class_lists, oracle, cap, generator)
    repetitions = min(
        required_repetitions(delta, base_failure=0.3), max(1, max_repetitions)
    )
    estimates: List[float] = [
        _subsample_estimate(class_lists, oracle, level, cap, generator)
        for _ in range(repetitions)
    ]
    estimate = float(np.median(estimates))
    # The exact phase certified at least ``cap`` edges; never report fewer.
    return max(estimate, float(count))
