"""Colour-coding simulation of the EdgeFree oracle via a Hom oracle
(Lemma 30 and the oracle-simulation part of Lemma 22).

For class-aligned subsets ``V_i ⊆ U_i(D)``, Lemma 30 states:

    ``H(phi, D)[V_1, ..., V_l]`` has a hyperedge
        iff
    there is a collection ``f = {f_η}`` of colouring functions
    (one per disequality pair, each mapping U(D) to {r, b}) such that
    ``Hom(Â(phi), B̂(phi, D, V_1..V_l, f))`` holds.

The simulation chooses the colouring functions uniformly at random ``Q`` times
(with ``Q = ceil(ln(1/failure)) * 4^{|∆|}``, so that a witnessing
homomorphism survives at least one colouring with probability
``>= 1 - failure``) and reports "has an edge" as soon as the Hom oracle finds
a homomorphism.  The answer "edge-free" has one-sided error at most
``failure``; "has an edge" is always correct.

Because ``4^{|∆|}`` grows quickly, :class:`ColourCodingEdgeFreeOracle` caps
the number of repetitions (configurable); queries with many disequalities
should use the deterministic :class:`~repro.core.answer_hypergraph.DirectEdgeFreeOracle`
instead (this is a documented engineering fallback, not a change to the
paper's reduction — see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.associated_structures import (
    BLUE,
    RED,
    add_colour_relations,
    build_A_hat,
    build_B,
    build_B_hat_scaffold,
    variable_order,
)
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.homomorphism import exists_homomorphism
from repro.relational.structure import Structure
from repro.util.rng import RNGLike, as_generator

Element = Hashable
TaggedValue = Tuple[Element, int]
#: A Hom oracle: decides whether there is a homomorphism between two structures.
HomOracle = Callable[[Structure, Structure], bool]


def random_colouring(
    query: ConjunctiveQuery, database: Structure, rng: RNGLike = None
) -> Dict[FrozenSet[str], Dict[Element, str]]:
    """Choose the collection ``f = {f_η}`` uniformly at random: independently
    for every disequality pair and every database value, colour the value red
    or blue with probability 1/2 each."""
    generator = as_generator(rng)
    universe = database.canonical_universe()
    colouring: Dict[FrozenSet[str], Dict[Element, str]] = {}
    for pair in query.delta():
        flips = generator.random(len(universe)) < 0.5
        colouring[pair] = {
            value: (RED if flip else BLUE) for value, flip in zip(universe, flips)
        }
    return colouring


def required_colouring_repetitions(
    num_disequalities: int, failure_probability: float
) -> int:
    """The number ``Q`` of random colourings needed so that a fixed witnessing
    homomorphism is compatible with at least one of them with probability at
    least ``1 - failure_probability`` (each colouring succeeds with
    probability ``>= 4^{-|∆|}``, so ``Q = ceil(ln(1/failure) * 4^{|∆|})``)."""
    if not 0 < failure_probability < 1:
        raise ValueError("failure_probability must be in (0, 1)")
    if num_disequalities == 0:
        return 1
    return int(math.ceil(math.log(1.0 / failure_probability) * (4 ** num_disequalities)))


class ColourCodingEdgeFreeOracle:
    """The paper's EdgeFree oracle simulation: colour coding + Hom oracle.

    Parameters
    ----------
    query, database:
        The #ECQ instance.
    failure_probability:
        Per-call one-sided failure probability (probability that an existing
        hyperedge is missed).  Lemma 22 budgets this as ``delta / (2 T l!)``.
    hom_oracle:
        The Hom decision procedure; defaults to the package's CSP-based
        engine (standing in for Theorems 31/36).
    max_repetitions:
        Safety cap on the number of random colourings per call; ``None``
        disables the cap.  When the cap truncates the theoretical repetition
        count, the one-sided error guarantee degrades accordingly (recorded in
        :attr:`truncated`).
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        database: Structure,
        failure_probability: float = 0.05,
        hom_oracle: Optional[HomOracle] = None,
        rng: RNGLike = None,
        max_repetitions: Optional[int] = 512,
        engine: str = DEFAULT_ENGINE,
    ) -> None:
        query._check_signature_compatibility(database)
        self._query = query
        self._database = database
        self._failure = failure_probability
        if hom_oracle is not None:
            self._hom = hom_oracle
        else:
            self._hom = lambda a, b: exists_homomorphism(a, b, engine=engine)
        self._rng = as_generator(rng)
        self._a_hat = build_A_hat(query)
        self._b_base = build_B(query, database)
        self._num_free = query.num_free()
        requested = required_colouring_repetitions(
            len(query.delta()), failure_probability
        )
        if max_repetitions is not None and requested > max_repetitions:
            self.repetitions = max_repetitions
            self.truncated = True
        else:
            self.repetitions = requested
            self.truncated = False
        self.calls = 0
        self.hom_queries = 0

    @property
    def a_hat(self) -> Structure:
        """The coloured query structure Â(phi) (constant across calls)."""
        return self._a_hat

    def edge_free(self, subsets: Sequence[Iterable[TaggedValue]]) -> bool:
        """True iff (with one-sided error) ``H(phi, D)[V_1..V_l]`` has no
        hyperedge; ``subsets`` must be class-aligned (V_i ⊆ U_i(D))."""
        self.calls += 1
        subsets = [set(block) for block in subsets]
        if len(subsets) != self._num_free:
            raise ValueError(f"expected {self._num_free} subsets, got {len(subsets)}")
        if any(not block for block in subsets):
            return True
        # The scaffold (tagged base relations + class relations) depends only
        # on the subsets; only the small unary colour relations change per
        # repetition, so build it once and stamp each colouring on a copy.
        scaffold = build_B_hat_scaffold(
            self._query, self._database, subsets, b_structure=self._b_base
        )
        for _ in range(self.repetitions):
            colouring = random_colouring(self._query, self._database, rng=self._rng)
            b_hat = add_colour_relations(self._query, scaffold, colouring)
            self.hom_queries += 1
            if self._hom(self._a_hat, b_hat):
                return False
        return True

    __call__ = edge_free
