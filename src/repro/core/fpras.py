"""The FPRAS for #CQ with bounded fractional hypertreewidth (Theorem 16).

Pipeline (Section 5.2):

1.  Lemma 43 — compute a *nice* tree decomposition of ``H(phi)`` whose bags
    have bounded fractional edge cover number.  (Queries are small, so the
    reproduction computes an fhw-optimal decomposition exactly instead of
    Marx's cubic approximation; see :mod:`repro.decomposition.fractional`.)
2.  Lemma 48 — for every bag ``B_t`` compute the bag solutions
    ``Sol_t = Sol(phi, D, B_t)`` and their projections
    ``Sol'_t = proj(Sol_t, free(phi))``.  The enumeration runs on the indexed
    join engine of :mod:`repro.core.bag_solutions`: per-atom consistent rows
    are scanned once per database (version-keyed cache) and bags are joined
    with hash joins keyed on the shared-variable projection, so the per-bag
    cost is dominated by the output size as Lemma 48 requires.
3.  Lemma 52 — build the tree automaton whose accepted labelled trees are in
    bijection with ``Ans(phi, D)``:
      * states ``(t, alpha)`` with ``alpha ∈ Sol_t``; initial state
        ``(t*, empty)``,
      * labels ``(t, beta)`` with ``beta ∈ Sol'_t``,
      * transitions mirroring the join / introduce / forget structure of the
        nice decomposition.
4.  Lemma 51 — approximately count the accepted labellings of the (fixed)
    decomposition tree with the ACJR-style estimator in
    :mod:`repro.core.tree_automaton`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.core.bag_solutions import (
    AssignmentKey,
    assignment_key,
    bag_solutions,
    project_solutions,
    solutions_consistent_with,
)
from repro.core.tree_automaton import RootedTree, TreeAutomaton
from repro.decomposition.nice import NiceTreeDecomposition
from repro.queries.prepared import PreparedQuery, prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.util.rng import RNGLike
from repro.util.validation import check_epsilon_delta

State = Tuple[Hashable, AssignmentKey]
Label = Tuple[Hashable, AssignmentKey]


@dataclass
class Lemma52Reduction:
    """The output of the Lemma-52 parsimonious reduction: a tree automaton,
    the (fixed) tree it runs over, and hints about which transition groups
    have pairwise-disjoint target languages (used by the estimator)."""

    automaton: TreeAutomaton
    tree: RootedTree
    decomposition: NiceTreeDecomposition
    bag_solution_counts: Dict[Hashable, int]
    fractional_hypertreewidth: float
    #: (state, label) pairs whose multi-target unions are certified disjoint
    #: (forget transitions over a *free* variable).
    disjoint_pairs: Set[Tuple[State, Label]]

    def disjoint_union_hint(self, state: State, label: Label) -> bool:
        return (state, label) in self.disjoint_pairs

    def empty_language(self) -> bool:
        """True when ``Sol(phi, D, ∅)`` is empty — a *sufficient* condition
        for the query to have no answers (the algorithm then returns 0 without
        running the estimator, as in the proof of Lemma 52).  When some bag
        deeper in the decomposition has no solutions the language is empty as
        well, but that case is detected by the estimator returning 0."""
        root = self.decomposition.root
        return self.bag_solution_counts.get(root, 0) == 0


@dataclass(frozen=True)
class FPRASResult:
    """Result record of a Theorem-16 FPRAS run."""

    estimate: float
    epsilon: float
    delta: float
    fractional_hypertreewidth: float
    num_states: int
    num_labels: int
    tree_size: int

    def rounded(self) -> int:
        return int(round(self.estimate))


def build_tree_automaton(
    query: ConjunctiveQuery,
    database: Structure,
    prepared: Optional[PreparedQuery] = None,
    engine: str = DEFAULT_ENGINE,
) -> Lemma52Reduction:
    """Construct the Lemma-52 tree automaton for a CQ instance.

    The fhw-optimal decomposition and its nice form come from the shared
    ``prepared`` query (computed once per query shape and cached process-wide
    when omitted), translated into this query's variable names."""
    if query.query_class() is not QueryClass.CQ:
        raise ValueError(
            "Theorem 16 applies to plain CQs (no disequalities or negations); "
            f"got a {query.query_class().value}"
        )
    query._check_signature_compatibility(database)

    if prepared is None:
        prepared = prepare(query)
    fhw = prepared.fractional_hypertreewidth()[0]
    nice = prepared.nice_decomposition_for(query)

    free_variables = set(query.free_variables)

    # Bag solutions per node (memoised by bag content: equal bags share them).
    solutions_by_bag: Dict[FrozenSet[str], Set[AssignmentKey]] = {}
    node_solutions: Dict[Hashable, Set[AssignmentKey]] = {}
    for node in nice.nodes():
        bag = nice.bag(node)
        if bag not in solutions_by_bag:
            solutions_by_bag[bag] = bag_solutions(query, database, bag, engine=engine)
        node_solutions[node] = solutions_by_bag[bag]

    states: Set[State] = set()
    labels: Set[Label] = set()
    transitions: Dict[Tuple[State, Label], Set[Tuple[State, ...]]] = {}
    disjoint_pairs: Set[Tuple[State, Label]] = set()

    def label_of(node: Hashable, alpha: AssignmentKey) -> Label:
        projection = tuple(
            (variable, value) for variable, value in alpha if variable in free_variables
        )
        return (node, projection)

    def add_transition(state: State, label: Label, target: Tuple[State, ...]) -> None:
        transitions.setdefault((state, label), set()).add(target)

    for node in nice.nodes():
        for alpha in node_solutions[node]:
            states.add((node, alpha))
            labels.add(label_of(node, alpha))

    for node in nice.nodes():
        children = nice.children(node)
        for alpha in node_solutions[node]:
            state: State = (node, alpha)
            label = label_of(node, alpha)
            if not children:
                # Leaf: empty bag, empty assignment, transition to ∅.
                add_transition(state, label, ())
                continue
            if len(children) == 2:
                left, right = children
                add_transition(state, label, ((left, alpha), (right, alpha)))
                continue
            (child,) = children
            node_bag, child_bag = nice.bag(node), nice.bag(child)
            if child_bag <= node_bag and len(node_bag - child_bag) == 1:
                # Introduce node: project the assignment down to the child bag.
                child_alpha = assignment_key(
                    {v: value for v, value in alpha if v in child_bag}
                )
                if child_alpha in node_solutions[child]:
                    add_transition(state, label, ((child, child_alpha),))
                continue
            if node_bag <= child_bag and len(child_bag - node_bag) == 1:
                # Forget node: one transition per consistent extension.
                (forgotten,) = tuple(child_bag - node_bag)
                extensions = solutions_consistent_with(node_solutions[child], alpha)
                for child_alpha in extensions:
                    add_transition(state, label, ((child, child_alpha),))
                if len(extensions) > 1 and forgotten in free_variables:
                    # Extensions differ on a free variable, so the target
                    # languages carry different labels below and are disjoint.
                    disjoint_pairs.add((state, label))
                continue
            raise RuntimeError(
                f"node {node!r} of the nice decomposition is neither a join, "
                "introduce, forget nor leaf node"
            )

    tree = RootedTree(
        root=nice.root,
        children={node: tuple(nice.children(node)) for node in nice.nodes()},
    )
    root_state: State = (nice.root, assignment_key({}))
    if root_state not in states:
        # No solutions at all: create a dead initial state so the automaton is
        # well formed; its language is empty.
        states.add(root_state)
        labels.add(label_of(nice.root, assignment_key({})))

    automaton = TreeAutomaton(
        states=states,
        alphabet=labels,
        transitions=transitions,
        initial_state=root_state,
    )
    return Lemma52Reduction(
        automaton=automaton,
        tree=tree,
        decomposition=nice,
        bag_solution_counts={node: len(node_solutions[node]) for node in nice.nodes()},
        fractional_hypertreewidth=float(fhw),
        disjoint_pairs=disjoint_pairs,
    )


def fpras_count_cq(
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    rng: RNGLike = None,
    return_result: bool = False,
    samples_per_union: Optional[int] = None,
    prepared: Optional[PreparedQuery] = None,
    engine: str = DEFAULT_ENGINE,
):
    """Theorem 16: FPRAS for #CQ on queries with bounded fractional
    hypertreewidth.

    Returns the (epsilon, delta)-approximation of ``|Ans(phi, D)|`` (a float),
    or a :class:`FPRASResult` when ``return_result`` is true.  The Lemma-43
    decomposition is read from the shared ``prepared`` query (prepared and
    cached process-wide when omitted).
    """
    check_epsilon_delta(epsilon, delta)
    reduction = build_tree_automaton(query, database, prepared=prepared, engine=engine)
    fhw = reduction.fractional_hypertreewidth

    if reduction.empty_language():
        estimate = 0.0
    else:
        estimate = reduction.automaton.count_labelings(
            reduction.tree,
            epsilon=epsilon,
            delta=delta,
            rng=rng,
            disjoint_union_hints=reduction.disjoint_union_hint,
            samples_per_union=samples_per_union,
        )
    result = FPRASResult(
        estimate=float(estimate),
        epsilon=epsilon,
        delta=delta,
        fractional_hypertreewidth=float(fhw),
        num_states=len(reduction.automaton.states),
        num_labels=len(reduction.automaton.alphabet),
        tree_size=reduction.tree.size(),
    )
    return result if return_result else result.estimate
