"""Approximately counting answers with a Hom decision oracle (Lemma 22).

Given an ECQ ``phi``, a database ``D`` and accuracy parameters
``(epsilon, delta)``, Lemma 22 computes an (epsilon, delta)-approximation of
``|Ans(phi, D)|`` with oracle access to ``Hom``:

1.  Identify ``Ans(phi, D)`` with the hyperedges of the answer hypergraph
    ``H(phi, D)`` (Observation 25).
2.  Run the Dell–Lapinskas–Meeks estimator (Theorem 17) on ``H(phi, D)``,
    simulating each ``EdgeFree(H[W_1, ..., W_l])`` call:
      a. reduce arbitrary l-partite subsets ``W_i`` to class-aligned ones by
         intersecting with the classes ``U_j(D)`` and trying all ``l!``
         permutations,
      b. decide each aligned call by colour coding + the Hom oracle
         (Lemma 30), repeating with fresh random colourings to drive down the
         one-sided error.

The public entry points of the reproduction (Theorems 5 and 13) are thin
wrappers around :func:`approx_count_answers_via_oracle` in
:mod:`repro.core.fptras`.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.answer_hypergraph import DirectEdgeFreeOracle, vertex_classes
from repro.core.colour_coding import ColourCodingEdgeFreeOracle, HomOracle
from repro.core.dlm import approx_count_via_oracle, exact_count_via_oracle
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.util.rng import RNGLike, as_generator
from repro.util.validation import check_epsilon_delta

Element = Hashable
TaggedValue = Tuple[Element, int]


@dataclass
class OracleCountingStatistics:
    """Bookkeeping returned alongside the estimate (oracle-cost benches)."""

    edgefree_calls: int = 0
    aligned_calls: int = 0
    hom_queries: int = 0
    colour_coding_truncated: bool = False
    oracle_mode: str = "direct"


class GeneralEdgeFreeOracle:
    """EdgeFree for *arbitrary* l-partite subsets ``(W_1, ..., W_l)``.

    Implements the permutation step from the proof of Lemma 22: each
    hyperedge of ``H(phi, D)`` contains exactly one vertex of every class
    ``U_i(D)``, so ``H[W_1, ..., W_l]`` has a hyperedge iff there is a
    permutation ``pi`` of the classes such that the aligned restriction
    ``H[V_1, ..., V_l]`` with ``V_i = W_{pi(i)} ∩ U_i(D)`` has one.
    """

    def __init__(self, aligned_oracle, num_free: int, statistics: OracleCountingStatistics):
        self._aligned = aligned_oracle
        self._num_free = num_free
        self._stats = statistics

    def __call__(self, subsets: Sequence[Set[TaggedValue]]) -> bool:
        self._stats.edgefree_calls += 1
        subsets = [set(block) for block in subsets]
        if len(subsets) != self._num_free:
            raise ValueError(f"expected {self._num_free} subsets, got {len(subsets)}")
        if self._num_free == 0:
            self._stats.aligned_calls += 1
            return self._aligned([])

        # Fast path: already class-aligned (the common case for our DLM
        # implementation, which splits along classes).
        def aligned_class(block: Set[TaggedValue]) -> Optional[int]:
            tags = {tag for _, tag in block}
            return tags.pop() if len(tags) == 1 else None

        alignment = [aligned_class(block) for block in subsets]
        if all(tag is not None for tag in alignment) and sorted(alignment) == list(
            range(self._num_free)
        ):
            ordered = [None] * self._num_free
            for block, tag in zip(subsets, alignment):
                ordered[tag] = block
            self._stats.aligned_calls += 1
            return self._aligned(ordered)

        # General case: intersect with every class and try all permutations.
        for permutation in itertools.permutations(range(self._num_free)):
            aligned_blocks: List[Set[TaggedValue]] = []
            empty = False
            for index in range(self._num_free):
                source = subsets[permutation[index]]
                block = {item for item in source if item[1] == index}
                if not block:
                    empty = True
                    break
                aligned_blocks.append(block)
            if empty:
                continue
            self._stats.aligned_calls += 1
            if not self._aligned(aligned_blocks):
                return False
        return True


def _estimate_dlm_call_budget(num_free: int, num_vertices: int, epsilon: float, delta: float) -> int:
    """The paper's bound ``T = Theta(log(1/delta) eps^-2 l^{6l} (log N)^{4l+7})``
    on the number of EdgeFree calls, used to budget the per-call failure
    probability of the colour-coding oracle.  We use it as a (generous)
    budgeting constant rather than a hard limit."""
    if num_vertices <= 1:
        return 1
    log_n = max(2.0, math.log(num_vertices))
    value = (
        math.log(1.0 / delta)
        * (epsilon ** -2)
        * (max(num_free, 1) ** (6 * max(num_free, 1)))
        * (log_n ** (4 * max(num_free, 1) + 7))
    )
    return max(16, min(int(value), 10 ** 9))


def approx_count_answers_via_oracle(
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    rng: RNGLike = None,
    oracle_mode: str = "auto",
    hom_oracle: Optional[HomOracle] = None,
    max_colouring_repetitions: Optional[int] = 512,
    return_statistics: bool = False,
    engine: str = DEFAULT_ENGINE,
):
    """The Lemma-22 algorithm: an (epsilon, delta)-approximation of
    ``|Ans(phi, D)|`` via EdgeFree/Hom oracles.

    Parameters
    ----------
    oracle_mode:
        ``"colour_coding"`` — the paper-faithful simulation (Lemma 30):
        random colourings + Hom oracle on the structures Â, B̂.
        ``"direct"`` — deterministic CSP-based EdgeFree decision (practical
        default for queries with many disequalities).
        ``"auto"`` — colour coding when the number of disequalities is small
        enough that the required repetitions stay below the cap, otherwise
        direct.
    return_statistics:
        Also return an :class:`OracleCountingStatistics` record.
    engine:
        The CSP engine (``"indexed"``/``"naive"``) backing both the direct
        EdgeFree oracle and the default Hom oracle of the colour-coding
        simulation.
    """
    check_epsilon_delta(epsilon, delta)
    generator = as_generator(rng)
    query._check_signature_compatibility(database)

    statistics = OracleCountingStatistics()
    num_free = query.num_free()
    classes = vertex_classes(query, database)

    # Split the failure budget: half for the DLM estimator, half for the
    # one-sided error of the oracle simulations (as in the proof of Lemma 22).
    estimator_delta = delta / 2.0
    call_budget = _estimate_dlm_call_budget(
        num_free, max(len(database.universe), 2), epsilon, delta
    )
    per_call_failure = delta / (2.0 * call_budget * math.factorial(max(num_free, 1)))
    per_call_failure = min(max(per_call_failure, 1e-12), 0.25)

    if oracle_mode not in ("auto", "direct", "colour_coding"):
        raise ValueError(f"unknown oracle_mode {oracle_mode!r}")
    if oracle_mode == "auto":
        from repro.core.colour_coding import required_colouring_repetitions

        needed = required_colouring_repetitions(len(query.delta()), per_call_failure)
        oracle_mode = (
            "colour_coding"
            if (max_colouring_repetitions is None or needed <= max_colouring_repetitions)
            else "direct"
        )
    statistics.oracle_mode = oracle_mode

    if oracle_mode == "colour_coding":
        aligned = ColourCodingEdgeFreeOracle(
            query,
            database,
            failure_probability=per_call_failure,
            hom_oracle=hom_oracle,
            rng=generator,
            max_repetitions=max_colouring_repetitions,
            engine=engine,
        )
    else:
        aligned = DirectEdgeFreeOracle(query, database, engine=engine)

    general = GeneralEdgeFreeOracle(aligned, num_free, statistics)

    if num_free == 0:
        # A Boolean query has one (empty) answer iff it is satisfiable.
        has_edge = not general([])
        estimate = 1.0 if has_edge else 0.0
    else:
        estimate = approx_count_via_oracle(
            classes, general, epsilon=epsilon, delta=estimator_delta, rng=generator
        )

    statistics.hom_queries = getattr(aligned, "hom_queries", 0)
    statistics.colour_coding_truncated = getattr(aligned, "truncated", False)

    if return_statistics:
        return estimate, statistics
    return estimate


def exact_count_answers_via_oracle(
    query: ConjunctiveQuery,
    database: Structure,
    oracle_mode: str = "direct",
    hom_oracle: Optional[HomOracle] = None,
    rng: RNGLike = None,
    engine: str = DEFAULT_ENGINE,
) -> int:
    """Exact ``|Ans(phi, D)|`` using only EdgeFree oracle calls (recursive
    splitting).  Useful to validate the oracle plumbing independently of the
    sampling estimator."""
    statistics = OracleCountingStatistics()
    num_free = query.num_free()
    classes = vertex_classes(query, database)
    if oracle_mode == "colour_coding":
        aligned = ColourCodingEdgeFreeOracle(
            query,
            database,
            failure_probability=0.01,
            hom_oracle=hom_oracle,
            rng=rng,
            engine=engine,
        )
    elif oracle_mode == "direct":
        aligned = DirectEdgeFreeOracle(query, database, engine=engine)
    else:
        raise ValueError(f"unknown oracle_mode {oracle_mode!r}")
    general = GeneralEdgeFreeOracle(aligned, num_free, statistics)
    if num_free == 0:
        return 0 if general([]) else 1
    count, complete = exact_count_via_oracle(classes, general)
    assert complete
    return count
