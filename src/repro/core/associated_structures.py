"""The associated structures of Section 2.2 and Section 3.

* ``A(phi)``   (Definition 18) — the "query structure": universe = vars(phi),
  one fact per predicate, and for every negated predicate a fact of the fresh
  complement symbol ``~R``.
* ``B(phi, D)`` (Definition 20) — the "database structure": universe = U(D),
  original relations for the positive symbols and complement relations
  ``U(D)^ar(R) \\ R^D`` for the ``~R`` symbols.
* ``Â(phi)``   (Definition 26) — A(phi) plus unary relations: ``P_i = {x_i}``
  for every variable and, per disequality ``η = {x_i, x_j}`` (i < j), the
  "colour" relations ``R_η = {x_i}`` and ``B_η = {x_j}``.
* ``B̂(phi, D, V_1..V_l, f)`` (Definition 28) — the coloured, class-indexed
  version of B(phi, D) whose universe consists of pairs ``(w, i)`` tagging a
  database value with the index of the variable it may be assigned to.

With these, Lemma 30 states that ``H(phi, D)[V_1, ..., V_l]`` has a hyperedge
iff for some collection of colouring functions there is a homomorphism from
``Â(phi)`` to ``B̂(phi, D, V_1..V_l, f)``; this is how the EdgeFree oracle of
Theorem 17 is simulated using a Hom oracle (Lemma 22).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.queries.atoms import Variable
from repro.queries.query import ConjunctiveQuery
from repro.relational.signature import RelationSymbol, Signature
from repro.relational.structure import Database, Structure

Element = Hashable

#: Prefix for the complement relation symbol ``~R`` introduced for negated
#: predicates (Definition 18).
NEGATION_PREFIX = "~"
#: Prefix for the per-variable unary relations ``P_i`` of Definition 26/28.
VARIABLE_RELATION_PREFIX = "P__"
#: Prefixes for the per-disequality colour relations ``R_η`` / ``B_η``.
RED_RELATION_PREFIX = "Rdis__"
BLUE_RELATION_PREFIX = "Bdis__"

#: The two colours used by the colouring functions f_η.
RED = "r"
BLUE = "b"


def negated_symbol_name(relation: str) -> str:
    """The name of the complement symbol ``~R`` for relation ``R``."""
    return NEGATION_PREFIX + relation


def variable_order(query: ConjunctiveQuery) -> List[Variable]:
    """The canonical enumeration ``x_1, ..., x_{l+k}`` of vars(phi): the free
    variables first (in their declared order), then the existential variables
    in sorted order.  All the constructions of Section 3 index variables by
    their position in this list (1-based in the paper, 0-based here)."""
    return list(query.free_variables) + sorted(query.existential_variables)


def disequality_key(query: ConjunctiveQuery, pair: FrozenSet[Variable]) -> Tuple[str, str]:
    """Order the two variables of a disequality pair by the canonical variable
    order (the paper's "i < j") and return them as a tuple."""
    order = variable_order(query)
    position = {v: i for i, v in enumerate(order)}
    left, right = sorted(pair, key=lambda v: position[v])
    return left, right


def colour_relation_names(query: ConjunctiveQuery, pair: FrozenSet[Variable]) -> Tuple[str, str]:
    """Names of the unary colour relations (R_η, B_η) for a disequality pair."""
    left, right = disequality_key(query, pair)
    return RED_RELATION_PREFIX + f"{left}__{right}", BLUE_RELATION_PREFIX + f"{left}__{right}"


def variable_relation_name(variable: Variable) -> str:
    """Name of the unary relation ``P_i`` pinning variable ``x_i``."""
    return VARIABLE_RELATION_PREFIX + str(variable)


# --------------------------------------------------------------------- A(phi)
def build_A(query: ConjunctiveQuery) -> Structure:
    """The structure ``A(phi)`` of Definition 18."""
    structure = Structure(universe=query.variables)
    for atom in query.atoms:
        structure.add_fact(atom.relation, atom.args)
    for atom in query.negated_atoms:
        structure.add_fact(negated_symbol_name(atom.relation), atom.args)
    # Relation symbols that only occur negated still need their positive
    # counterpart declared nowhere; symbols occurring positively are already
    # present through their facts.
    return structure


# ------------------------------------------------------------------ B(phi, D)
def build_B(query: ConjunctiveQuery, database: Structure) -> Structure:
    """The structure ``B(phi, D)`` of Definition 20.

    For every symbol of ``sig(A(phi))`` that also belongs to ``sig(D)`` the
    relation is copied from the database; for the complement symbols ``~R``
    the relation is ``U(D)^{ar(R)} \\ R^D``.  Note the latter has size up to
    ``|U(D)|^{ar(R)}`` (Observation 21 accounts for exactly this blow-up).
    """
    signature_a = build_A(query).signature
    structure = Structure(universe=database.universe)
    for symbol in signature_a:
        if symbol.name.startswith(NEGATION_PREFIX):
            original = symbol.name[len(NEGATION_PREFIX):]
            original_symbol = database.signature.get(original)
            if original_symbol is None:
                existing: FrozenSet[Tuple[Element, ...]] = frozenset()
                arity = symbol.arity
            else:
                if original_symbol.arity != symbol.arity:
                    raise ValueError(
                        f"negated relation {original!r} has arity {original_symbol.arity} "
                        f"in the database but {symbol.arity} in the query"
                    )
                existing = database.relation(original)
                arity = symbol.arity
            structure.add_relation(RelationSymbol(symbol.name, arity))
            universe = database.canonical_universe()
            for candidate in itertools.product(universe, repeat=arity):
                if candidate not in existing:
                    structure.add_fact(symbol.name, candidate)
        else:
            database_symbol = database.signature.get(symbol.name)
            if database_symbol is None:
                raise ValueError(
                    f"database is missing relation {symbol.name!r} required by the query"
                )
            if database_symbol.arity != symbol.arity:
                raise ValueError(
                    f"relation {symbol.name!r} has arity {database_symbol.arity} in the "
                    f"database but {symbol.arity} in the query"
                )
            structure.add_relation(RelationSymbol(symbol.name, symbol.arity))
            for fact in database.relation(symbol.name):
                structure.add_fact(symbol.name, fact)
    return structure


# ------------------------------------------------------------------- Â(phi)
def build_A_hat(query: ConjunctiveQuery) -> Structure:
    """The coloured query structure ``Â(phi)`` of Definition 26."""
    structure = build_A(query)
    for variable in variable_order(query):
        structure.add_relation(RelationSymbol(variable_relation_name(variable), 1))
        structure.add_fact(variable_relation_name(variable), (variable,))
    for pair in sorted(query.delta(), key=lambda p: disequality_key(query, p)):
        left, right = disequality_key(query, pair)
        red_name, blue_name = colour_relation_names(query, pair)
        structure.add_relation(RelationSymbol(red_name, 1))
        structure.add_relation(RelationSymbol(blue_name, 1))
        structure.add_fact(red_name, (left,))
        structure.add_fact(blue_name, (right,))
    return structure


# --------------------------------------------------------------------- B̂(...)
Colouring = Mapping[FrozenSet[Variable], Mapping[Element, str]]


def build_B_hat(
    query: ConjunctiveQuery,
    database: Structure,
    free_subsets: Sequence[Iterable[Tuple[Element, int]]],
    colouring: Optional[Colouring] = None,
    b_structure: Optional[Structure] = None,
) -> Structure:
    """The coloured database structure ``B̂(phi, D, V_1, ..., V_l, f)`` of
    Definition 28.

    Parameters
    ----------
    free_subsets:
        The sets ``V_1, ..., V_l`` — one per free variable, in the order of
        ``query.free_variables``.  Each ``V_i`` must be a subset of
        ``U_i(D) = U(D) x {i}`` (pairs ``(value, i)`` with ``i`` the 0-based
        index of the free variable in the canonical variable order).
    colouring:
        The collection ``f = {f_η}``: for every disequality pair ``η`` a map
        from U(D) to {"r", "b"}.  May be omitted when the query has no
        disequalities.
    b_structure:
        Optionally a precomputed ``B(phi, D)`` to avoid rebuilding the
        (potentially large) complement relations on every oracle call.
    """
    scaffold = build_B_hat_scaffold(query, database, free_subsets, b_structure=b_structure)
    return add_colour_relations(query, scaffold, colouring)


def build_B_hat_scaffold(
    query: ConjunctiveQuery,
    database: Structure,
    free_subsets: Sequence[Iterable[Tuple[Element, int]]],
    b_structure: Optional[Structure] = None,
) -> Structure:
    """The colouring-independent part of ``B̂``: the tagged copies of the base
    relations and the unary class relations ``P_i``, but no colour relations.

    The colour-coding oracle repeats ``build_B_hat`` many times with the same
    free subsets and a fresh colouring each round; computing this scaffold
    once per EdgeFree call and stamping the (small, unary) colour relations on
    a fast copy per round avoids re-tagging the base relations every time.
    """
    order = variable_order(query)
    num_free = query.num_free()
    if len(free_subsets) != num_free:
        raise ValueError(
            f"expected {num_free} free-variable subsets, got {len(free_subsets)}"
        )
    base = b_structure if b_structure is not None else build_B(query, database)
    universe_values = set(database.universe)

    # S_i per variable: V_i for free variables, U_i(D) for existential ones.
    class_members: List[Set[Tuple[Element, int]]] = []
    for index, variable in enumerate(order):
        if index < num_free:
            members = set()
            for item in free_subsets[index]:
                value, tag = item
                if tag != index:
                    raise ValueError(
                        f"subset for free variable {variable!r} (index {index}) contains "
                        f"an element tagged {tag}"
                    )
                if value not in universe_values:
                    raise ValueError(f"value {value!r} is not in the database universe")
                members.add((value, index))
        else:
            members = {(value, index) for value in universe_values}
        class_members.append(members)

    universe: Set[Tuple[Element, int]] = set()
    for members in class_members:
        universe |= members
    structure = Structure(universe=universe)

    # Indexed copies of the base relations: a tuple ((w1,i1),...,(wa,ia)) is a
    # fact whenever (w1,...,wa) is a fact of B(phi, D).
    values_by_index: Dict[Element, List[Tuple[Element, int]]] = {}
    for value, index in universe:
        values_by_index.setdefault(value, []).append((value, index))

    for symbol in base.signature:
        structure.add_relation(RelationSymbol(symbol.name, symbol.arity))
        for fact in base.relation(symbol.name):
            candidate_lists = [values_by_index.get(value, []) for value in fact]
            if any(not candidates for candidates in candidate_lists):
                continue
            for combination in itertools.product(*candidate_lists):
                structure.add_fact(symbol.name, combination)

    # Unary relations P_i := S_i.
    for index, variable in enumerate(order):
        name = variable_relation_name(variable)
        structure.add_relation(RelationSymbol(name, 1))
        for member in class_members[index]:
            structure.add_fact(name, (member,))
    return structure


def add_colour_relations(
    query: ConjunctiveQuery, scaffold: Structure, colouring: Optional[Colouring] = None
) -> Structure:
    """Stamp the colour relations ``R_η`` / ``B_η`` of a colouring collection
    ``f = {f_η}`` onto (a fast copy of) a ``build_B_hat_scaffold`` result,
    completing the ``B̂`` structure of Definition 28."""
    if colouring is None:
        colouring = {}
    delta = query.delta()
    missing_colourings = [pair for pair in delta if pair not in colouring]
    if missing_colourings:
        raise ValueError(
            "colouring functions are required for every disequality pair; missing "
            f"{sorted(tuple(sorted(p)) for p in missing_colourings)}"
        )
    structure = scaffold.copy()
    universe = structure.universe
    # Colour relations R_η / B_η from the colouring functions.
    for pair in delta:
        red_name, blue_name = colour_relation_names(query, pair)
        structure.add_relation(RelationSymbol(red_name, 1))
        structure.add_relation(RelationSymbol(blue_name, 1))
        f_eta = colouring[pair]
        for member in universe:
            value, _ = member
            colour = f_eta.get(value)
            if colour == RED:
                structure.add_fact(red_name, (member,))
            elif colour == BLUE:
                structure.add_fact(blue_name, (member,))
            elif colour is None:
                raise ValueError(
                    f"colouring for pair {sorted(pair)} does not cover value {value!r}"
                )
            else:
                raise ValueError(f"invalid colour {colour!r} (expected 'r' or 'b')")
    return structure


def size_bound_A(query: ConjunctiveQuery) -> int:
    """The bound of Observation 19: ``||A(phi)|| <= 3 ||phi||``."""
    return 3 * query.size()


def size_bound_A_hat(query: ConjunctiveQuery) -> int:
    """The bound of Observation 27: ``||Â(phi)|| <= 5 ||phi||^2``."""
    return 5 * query.size() ** 2
