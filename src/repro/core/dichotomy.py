"""The Figure-1 classification.

Figure 1 of the paper classifies the approximability of #CQ / #DCQ / #ECQ in
terms of which width measure of the underlying hypergraph class is bounded:

Bounded arity (all width measures coincide):
    * bounded treewidth  → FPTRAS for CQ, DCQ, ECQ (Theorem 5);
                           FPRAS for CQ (Arenas et al.);
                           no FPRAS for DCQ/ECQ unless NP = RP (Obs. 10).
    * unbounded treewidth → no FPTRAS (hence no FPRAS) for any of the three,
                           assuming rETH (Obs. 9).

Unbounded arity:
    * bounded hypertreewidth          → FPRAS for CQ (Arenas et al., Thm 38).
    * bounded fractional hypertreewidth → FPRAS for CQ (Theorem 16).
    * bounded adaptive width          → FPTRAS for CQ and DCQ (Theorem 13);
                                        FPRAS for CQ open; FPTRAS for ECQ open.
    * unbounded adaptive width        → no FPTRAS for CQ/DCQ/ECQ (Obs. 15).
    * DCQ/ECQ never admit an FPRAS (Obs. 10), already at treewidth 1.

Two views are provided:

* :func:`classify_class` — the *class-level* dichotomy verdict: given a query
  class (CQ/DCQ/ECQ) and which width measures are bounded, report whether an
  FPTRAS / FPRAS exists, which theorem provides it or rules it out, and under
  which complexity assumption.
* :func:`classify_query` — the *instance-level* report: compute the width
  profile of one query's hypergraph and recommend which of the package's
  algorithms applies (and with what parameters).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from repro.decomposition.widths import WidthProfile, width_profile
from repro.queries.prepared import prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.util.rng import RNGLike


class Verdict(Enum):
    """Tractability verdict for an approximation notion on a query class."""

    YES = "yes"
    NO = "no"
    OPEN = "open"


@dataclass(frozen=True)
class ClassVerdict:
    """The Figure-1 verdict for one (query class, width regime) cell."""

    query_class: QueryClass
    bounded_arity: bool
    bounded_treewidth: bool
    bounded_hypertreewidth: bool
    bounded_fractional_hypertreewidth: bool
    bounded_adaptive_width: bool
    fptras: Verdict
    fptras_reference: str
    fpras: Verdict
    fpras_reference: str


def classify_class(
    query_class: QueryClass,
    bounded_arity: bool,
    bounded_treewidth: bool,
    bounded_hypertreewidth: Optional[bool] = None,
    bounded_fractional_hypertreewidth: Optional[bool] = None,
    bounded_adaptive_width: Optional[bool] = None,
) -> ClassVerdict:
    """The Figure-1 verdict for a class of queries.

    In the bounded-arity case all width measures are weakly equivalent
    (Observation 34), so unspecified hypergraph measures default to the value
    of ``bounded_treewidth``.  In the unbounded-arity case unspecified
    measures default according to the domination chain of Lemma 12
    (``tw bounded ⇒ hw bounded ⇒ fhw bounded ⇒ aw bounded``).
    """
    if bounded_arity:
        if bounded_hypertreewidth is None:
            bounded_hypertreewidth = bounded_treewidth
        if bounded_fractional_hypertreewidth is None:
            bounded_fractional_hypertreewidth = bounded_treewidth
        if bounded_adaptive_width is None:
            bounded_adaptive_width = bounded_treewidth
    else:
        if bounded_hypertreewidth is None:
            bounded_hypertreewidth = bounded_treewidth
        if bounded_fractional_hypertreewidth is None:
            bounded_fractional_hypertreewidth = bounded_hypertreewidth
        if bounded_adaptive_width is None:
            bounded_adaptive_width = bounded_fractional_hypertreewidth

    # ----------------------------------------------------------------- FPTRAS
    if bounded_arity:
        if bounded_treewidth:
            fptras, fptras_reference = Verdict.YES, "Theorem 5"
        else:
            fptras, fptras_reference = Verdict.NO, "Observation 9 (assuming rETH)"
    else:
        if not bounded_adaptive_width:
            fptras, fptras_reference = Verdict.NO, "Observation 15 (assuming rETH)"
        elif query_class in (QueryClass.CQ, QueryClass.DCQ):
            fptras, fptras_reference = Verdict.YES, "Theorem 13"
        else:  # ECQ with bounded adaptive width but unbounded arity
            if bounded_treewidth:
                fptras, fptras_reference = Verdict.NO, (
                    "not covered: Theorem 5 needs bounded arity; bounded treewidth "
                    "with unbounded arity is outside both Theorem 5 and Theorem 13"
                )
                # Treewidth bounded with unbounded arity still implies bounded
                # adaptive width; the ECQ case there is open in the paper.
                fptras = Verdict.OPEN
                fptras_reference = "open problem (Figure 1, ECQ with bounded aw, unbounded arity)"
            else:
                fptras, fptras_reference = Verdict.OPEN, (
                    "open problem (Figure 1, ECQ with bounded aw, unbounded arity)"
                )

    # ------------------------------------------------------------------ FPRAS
    if query_class in (QueryClass.DCQ, QueryClass.ECQ):
        fpras, fpras_reference = Verdict.NO, "Observation 10 (unless NP = RP)"
    else:  # CQ
        if bounded_fractional_hypertreewidth:
            if bounded_hypertreewidth:
                fpras, fpras_reference = Verdict.YES, "Arenas et al. (Theorem 38)"
            else:
                fpras, fpras_reference = Verdict.YES, "Theorem 16"
        elif bounded_adaptive_width:
            fpras, fpras_reference = Verdict.OPEN, (
                "open problem (Figure 1: FPRAS for CQ with bounded aw but unbounded fhw)"
            )
        else:
            fpras, fpras_reference = Verdict.NO, (
                "Observation 15 rules out even an FPTRAS (assuming rETH)"
            )

    return ClassVerdict(
        query_class=query_class,
        bounded_arity=bounded_arity,
        bounded_treewidth=bounded_treewidth,
        bounded_hypertreewidth=bounded_hypertreewidth,
        bounded_fractional_hypertreewidth=bounded_fractional_hypertreewidth,
        bounded_adaptive_width=bounded_adaptive_width,
        fptras=fptras,
        fptras_reference=fptras_reference,
        fpras=fpras,
        fpras_reference=fpras_reference,
    )


@dataclass(frozen=True)
class QueryReport:
    """Instance-level report: the query's own widths and the recommended
    algorithm from this package."""

    query_class: QueryClass
    widths: WidthProfile
    recommended_algorithm: str
    recommendation_reason: str
    class_verdict_if_widths_bounded: ClassVerdict


def classify_query(
    query: ConjunctiveQuery,
    arity_bound: Optional[int] = None,
    rng: RNGLike = None,
    profile: Optional[WidthProfile] = None,
) -> QueryReport:
    """Classify a single query: compute its width profile, say which of the
    package's algorithms applies, and report the Figure-1 verdict for the
    class of queries whose widths are bounded by this query's widths.

    The width profile is read from the process-wide prepared-query cache
    (:func:`repro.queries.prepared.prepare`), so repeated or alpha-renamed
    queries never recompute it.  Passing an explicit ``rng`` bypasses the
    cache (the adaptive-width lower bound is sampled fresh), and passing a
    precomputed ``profile`` skips the width computation entirely.
    """
    if profile is None:
        if rng is None:
            profile = prepare(query).width_profile()
        else:
            profile = width_profile(query.hypergraph(), rng=rng)
    query_class = query.query_class()
    bounded_arity = arity_bound is None or profile.arity <= arity_bound

    if query_class is QueryClass.CQ:
        recommended = "fpras_count_cq"
        reason = (
            "plain CQ: Theorem 16's FPRAS applies (fhw = "
            f"{profile.fractional_hypertreewidth:.2f})"
        )
    elif query_class is QueryClass.DCQ:
        recommended = "fptras_count_dcq"
        reason = (
            "DCQ: Theorem 13's FPTRAS applies (adaptive width <= fhw = "
            f"{profile.fractional_hypertreewidth:.2f}); no FPRAS exists unless NP = RP"
        )
    else:
        recommended = "fptras_count_ecq"
        reason = (
            "ECQ: Theorem 5's FPTRAS applies (treewidth = "
            f"{profile.treewidth}, arity = {profile.arity}); no FPRAS exists unless NP = RP"
        )

    verdict = classify_class(
        query_class,
        bounded_arity=True if profile.arity <= 2 else bounded_arity,
        bounded_treewidth=True,
        bounded_hypertreewidth=True,
        bounded_fractional_hypertreewidth=True,
        bounded_adaptive_width=True,
    )
    return QueryReport(
        query_class=query_class,
        widths=profile,
        recommended_algorithm=recommended,
        recommendation_reason=reason,
        class_verdict_if_widths_bounded=verdict,
    )
