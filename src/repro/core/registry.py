"""The :class:`SchemeRegistry`: one dispatchable surface for every counting
scheme.

The paper contributes several counting algorithms (the exact baselines, the
Theorem-5/13 FPTRASes, the Theorem-16 FPRAS, oracle-based exact counting, the
Section-6 Karp–Luby union estimator), and the seed code had five ad-hoc entry
points with five slightly different signatures — every new consumer (CLI,
service executor, samplers, applications) had to re-encode the dispatch.

The registry unifies them: every scheme registers a runner with the uniform
envelope

    ``count(prepared, database, epsilon, delta, rng, engine) -> CountResult``

where ``prepared`` is a :class:`repro.queries.prepared.PreparedQuery` (plain
queries are prepared on entry, so repeated shapes share width/decomposition
artifacts process-wide) and :class:`CountResult` records the estimate together
with the scheme, the widths the run relied on, the scheme's statistics and a
short trace.  The scheme-applicability table (which query classes each scheme
is sound for, and which theorem backs it) lives here too; the planner's
``validate_scheme`` reads it.

Registering a new scheme (e.g. a future UCQ-native plan) makes it reachable
from the service, the CLI and the benches without touching any call site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.obs.trace import span
from repro.queries.prepared import PreparedQuery, prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.util.rng import RNGLike

QueryLike = Union[ConjunctiveQuery, PreparedQuery]


@dataclass(frozen=True)
class CountResult:
    """The uniform result envelope of a registry-dispatched counting run.

    (This is the *scheme-level* record; the service layer wraps it in its own
    ``repro.service.service.CountResult`` adding plan/cache provenance.)
    """

    #: The (approximate) answer count.  Error-free schemes (``exact``,
    #: ``oracle_exact``) store the exact ``int`` unconverted, preserving
    #: arbitrary-precision exactness beyond 2**53; approximation schemes
    #: store a ``float``.
    estimate: float
    scheme: str
    query_class: str
    canonical_key: str
    epsilon: Optional[float]
    delta: Optional[float]
    engine: str
    #: The width parameters the scheme's guarantees refer to, as far as the
    #: run computed them (e.g. ``{"treewidth": 1, "arity": 2}``).
    widths: Dict[str, Any] = field(default_factory=dict)
    #: The scheme's own statistics record, when it produces one
    #: (e.g. :class:`repro.core.oracle_counting.OracleCountingStatistics`).
    statistics: Optional[Any] = None
    trace: Tuple[str, ...] = ()

    @property
    def count(self) -> int:
        """The estimate rounded to the nearest integer (answer counts are
        integers)."""
        return int(round(self.estimate))

    def rounded(self) -> int:
        return self.count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "estimate": self.estimate,
            "count": self.count,
            "scheme": self.scheme,
            "query_class": self.query_class,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "engine": self.engine,
            "widths": dict(self.widths),
            "trace": list(self.trace),
        }


#: A scheme runner: (prepared, query, database, epsilon, delta, rng, engine,
#: **kwargs) -> (estimate, widths, statistics, trace).
Runner = Callable[..., Tuple[float, Dict[str, Any], Optional[Any], Tuple[str, ...]]]


@dataclass(frozen=True)
class SchemeSpec:
    """One registered counting scheme."""

    name: str
    runner: Runner
    #: Which query classes the scheme is sound for.
    query_classes: Tuple[QueryClass, ...]
    #: The theorem / construction backing the scheme.
    reference: str
    #: Union schemes count ``|⋃_i Ans(phi_i, D)|`` and take a sequence of
    #: queries instead of a single one.
    union: bool = False


class SchemeRegistry:
    """Name -> scheme table with uniform dispatch.

    The module-level :data:`REGISTRY` carries the package's built-in schemes;
    private registries can be built for tests or experiments.
    """

    def __init__(self) -> None:
        self._schemes: Dict[str, SchemeSpec] = {}

    def register(
        self,
        name: str,
        runner: Runner,
        query_classes: Sequence[QueryClass],
        reference: str,
        union: bool = False,
    ) -> SchemeSpec:
        if name in self._schemes:
            raise ValueError(f"scheme {name!r} is already registered")
        spec = SchemeSpec(
            name=name,
            runner=runner,
            query_classes=tuple(query_classes),
            reference=reference,
            union=union,
        )
        self._schemes[name] = spec
        return spec

    def get(self, name: str) -> SchemeSpec:
        spec = self._schemes.get(name)
        if spec is None:
            raise ValueError(
                f"unknown scheme {name!r}; expected one of {self.names()}"
            )
        return spec

    def names(self, include_unions: bool = True) -> Tuple[str, ...]:
        return tuple(
            name
            for name, spec in self._schemes.items()
            if include_unions or not spec.union
        )

    def reference(self, name: str) -> str:
        return self.get(name).reference

    def validate(self, name: str, query_class: QueryClass) -> None:
        """Reject scheme/class pairings the scheme is not sound for."""
        spec = self.get(name)
        if not spec.union and query_class not in spec.query_classes:
            raise ValueError(
                f"scheme {name!r} does not apply to {query_class.value} queries "
                f"({spec.reference})"
            )

    # -------------------------------------------------------------- dispatch
    def count(
        self,
        scheme: str,
        query: QueryLike,
        database: Structure,
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: RNGLike = None,
        engine: str = DEFAULT_ENGINE,
        prepared: Optional[PreparedQuery] = None,
        **kwargs: Any,
    ) -> CountResult:
        """Run one scheme through the uniform envelope.

        ``query`` may be a plain :class:`ConjunctiveQuery` (prepared — and
        thereby cached process-wide — on entry) or an already-prepared query.
        Extra keyword arguments are forwarded to the scheme runner (e.g.
        ``oracle_mode`` for the Lemma-22 schemes).
        """
        spec = self.get(scheme)
        if spec.union:
            raise ValueError(
                f"scheme {scheme!r} counts unions; call count_union instead"
            )
        if isinstance(query, PreparedQuery):
            prepared, query = query, query.query
        elif prepared is None:
            prepared = prepare(query)
        query_class = query.query_class()
        self.validate(scheme, query_class)
        with span(
            "scheme.count",
            scheme=scheme,
            query_class=query_class.value,
            engine=engine,
        ):
            estimate, widths, statistics, trace = spec.runner(
                prepared,
                query,
                database,
                epsilon=epsilon,
                delta=delta,
                rng=rng,
                engine=engine,
                **kwargs,
            )
        return CountResult(
            # Exact schemes return ints, kept unconverted (float() would lose
            # precision beyond 2**53 — exact counts must stay exact).
            estimate=estimate if isinstance(estimate, int) else float(estimate),
            scheme=scheme,
            query_class=query_class.value,
            canonical_key=prepared.canonical_key,
            epsilon=epsilon,
            delta=delta,
            engine=engine,
            widths=widths,
            statistics=statistics,
            trace=trace,
        )

    def count_union(
        self,
        queries: Sequence[QueryLike],
        database: Structure,
        scheme: str = "union_karp_luby",
        epsilon: float = 0.2,
        delta: float = 0.05,
        rng: RNGLike = None,
        engine: str = DEFAULT_ENGINE,
        **kwargs: Any,
    ) -> CountResult:
        """Estimate ``|⋃_i Ans(phi_i, D)|`` through a registered union
        scheme (Section 6's Karp–Luby estimator by default)."""
        spec = self.get(scheme)
        if not spec.union:
            raise ValueError(f"scheme {scheme!r} is not a union scheme")
        prepared_queries = [prepare(query) for query in queries]
        plain = [item.query for item in prepared_queries]
        estimate, widths, statistics, trace = spec.runner(
            prepared_queries,
            plain,
            database,
            epsilon=epsilon,
            delta=delta,
            rng=rng,
            engine=engine,
            **kwargs,
        )
        classes = sorted({query.query_class().value for query in plain})
        return CountResult(
            estimate=float(estimate),
            scheme=scheme,
            query_class="+".join(classes),
            canonical_key=" | ".join(item.canonical_key for item in prepared_queries),
            epsilon=epsilon,
            delta=delta,
            engine=engine,
            widths=widths,
            statistics=statistics,
            trace=trace,
        )


# ------------------------------------------------------------ built-in runners
def _run_exact(prepared, query, database, epsilon, delta, rng, engine, **kwargs):
    from repro.core.exact import count_answers_exact

    estimate = count_answers_exact(query, database, engine=engine, **kwargs)
    return estimate, {}, None, ("exact CSP-backtracking count (error-free)",)


def _run_oracle_exact(prepared, query, database, epsilon, delta, rng, engine, **kwargs):
    from repro.core.oracle_counting import exact_count_answers_via_oracle

    estimate = exact_count_answers_via_oracle(
        query, database, rng=rng, engine=engine, **kwargs
    )
    return estimate, {}, None, ("exact count via EdgeFree oracle splitting",)


def _run_fpras_cq(prepared, query, database, epsilon, delta, rng, engine, **kwargs):
    from repro.core.fpras import fpras_count_cq

    result = fpras_count_cq(
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=rng,
        return_result=True,
        prepared=prepared,
        engine=engine,
        **kwargs,
    )
    widths = {"fractional_hypertreewidth": result.fractional_hypertreewidth}
    trace = (
        f"Theorem 16 FPRAS over a nice fhw-decomposition "
        f"(fhw={result.fractional_hypertreewidth:.2f}, "
        f"{result.num_states} states, tree size {result.tree_size})",
    )
    return result.estimate, widths, None, trace


def _run_fptras_dcq(prepared, query, database, epsilon, delta, rng, engine, **kwargs):
    from repro.core.fptras import fptras_count_dcq

    result = fptras_count_dcq(
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=rng,
        engine=engine,
        return_result=True,
        prepared=prepared,
        **kwargs,
    )
    widths = {
        "treewidth": result.treewidth,
        "arity": result.arity,
        "adaptive_width_upper_bound": result.adaptive_width_upper_bound,
    }
    trace = (f"Theorem 13 FPTRAS (oracle mode {result.oracle_mode})",)
    return result.estimate, widths, result.statistics, trace


def _run_fptras_ecq(prepared, query, database, epsilon, delta, rng, engine, **kwargs):
    from repro.core.fptras import fptras_count_ecq

    result = fptras_count_ecq(
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=rng,
        engine=engine,
        return_result=True,
        prepared=prepared,
        **kwargs,
    )
    widths = {"treewidth": result.treewidth, "arity": result.arity}
    trace = (f"Theorem 5 FPTRAS (oracle mode {result.oracle_mode})",)
    return result.estimate, widths, result.statistics, trace


def _run_union_karp_luby(
    prepared_queries, queries, database, epsilon, delta, rng, engine, **kwargs
):
    # Imported lazily: repro.unions dispatches its per-query counts back
    # through this registry.
    from repro.unions.karp_luby import approx_count_union

    estimate = float(
        approx_count_union(
            queries,
            database,
            epsilon=epsilon,
            delta=delta,
            rng=rng,
            engine=engine,
            **kwargs,
        )
    )
    trace = (f"Karp–Luby union estimator over {len(queries)} components",)
    return estimate, {}, None, trace


def default_registry() -> SchemeRegistry:
    """A fresh registry carrying the package's built-in schemes."""
    registry = SchemeRegistry()
    every_class = (QueryClass.CQ, QueryClass.DCQ, QueryClass.ECQ)
    registry.register(
        "exact",
        _run_exact,
        every_class,
        "CSP backtracking baseline (Section 1.1)",
    )
    registry.register(
        "oracle_exact",
        _run_oracle_exact,
        every_class,
        "exact counting via EdgeFree oracle splitting (Lemma 22 plumbing)",
    )
    registry.register(
        "fpras_cq",
        _run_fpras_cq,
        (QueryClass.CQ,),
        "Theorem 16 (FPRAS, bounded fractional hypertreewidth)",
    )
    registry.register(
        "fptras_dcq",
        _run_fptras_dcq,
        (QueryClass.CQ, QueryClass.DCQ),
        "Theorem 13 (FPTRAS, bounded adaptive width)",
    )
    registry.register(
        "fptras_ecq",
        _run_fptras_ecq,
        every_class,
        "Theorem 5 (FPTRAS, bounded treewidth and arity)",
    )
    registry.register(
        "union_karp_luby",
        _run_union_karp_luby,
        every_class,
        "Karp–Luby estimator for unions (Section 6)",
        union=True,
    )
    return registry


#: The process-wide registry every counting path dispatches through.
REGISTRY = default_registry()
