"""Exact counting baselines.

The paper's starting point (Section 1.1) is that exact counting of answers is
infeasible in general — even the brute-force ``||D||^{O(||phi||)}`` algorithm
is essentially optimal under SETH [16].  The reproduction still needs exact
counters:

* as ground truth for testing the approximation schemes,
* as the "baseline algorithm" in every bench (the thing the FPTRAS/FPRAS is
  compared against), and
* to demonstrate the hardness constructions (Observations 9 and 10) by
  exhibiting their exponential blow-up.

Two exact counters are provided: a pure brute-force enumeration over all
assignments (the ``||D||^{O(||phi||)}`` algorithm from the introduction) and a
backtracking counter that enumerates solutions with the CSP engine and counts
distinct projections — usually much faster, still exponential in the worst
case.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import (
    DEFAULT_ENGINE,
    Constraint,
    CSPInstance,
    NotEqualConstraint,
    NotInRelationConstraint,
)
from repro.relational.structure import Structure

Element = Hashable


def _solution_csp(
    query: ConjunctiveQuery, database: Structure, engine: str = DEFAULT_ENGINE
) -> CSPInstance:
    """A CSP whose solutions are exactly Sol(phi, D) (Definition 1).

    Table constraints are built through the trusted fast path and share the
    database's cached per-relation tuple indexes; the domains reuse the
    cached canonical universe instead of re-sorting it per call.
    """
    universe = database.canonical_universe()
    domains: Dict[str, Set[Element]] = {v: universe for v in query.variables}
    columnar = engine == "columnar"
    constraints: List[object] = []
    for atom in query.atoms:
        constraints.append(
            Constraint.trusted(
                atom.args,
                index=database.relation_index(atom.relation),
                table=database.columnar_relation(atom.relation) if columnar else None,
            )
        )
    for atom in query.negated_atoms:
        forbidden = (
            database.relation(atom.relation)
            if atom.relation in database.signature
            else frozenset()
        )
        constraints.append(
            NotInRelationConstraint(scope=atom.args, forbidden=frozenset(forbidden))
        )
    for disequality in query.disequalities:
        constraints.append(NotEqualConstraint(disequality.left, disequality.right))
    return CSPInstance(domains, constraints, engine=engine)


def count_solutions_exact(
    query: ConjunctiveQuery, database: Structure, engine: str = DEFAULT_ENGINE
) -> int:
    """Exact ``|Sol(phi, D)|`` (Definition 1) via backtracking."""
    query._check_signature_compatibility(database)
    if not database.universe:
        return 0
    return _solution_csp(query, database, engine=engine).count_solutions()


def enumerate_answers_exact(
    query: ConjunctiveQuery, database: Structure, engine: str = DEFAULT_ENGINE
) -> Set[Tuple[Element, ...]]:
    """Exact ``Ans(phi, D)`` (Definition 2) as a set of tuples ordered like
    ``query.free_variables`` — computed by enumerating solutions with the CSP
    engine and projecting."""
    query._check_signature_compatibility(database)
    if not database.universe:
        return set()
    answers: Set[Tuple[Element, ...]] = set()
    free = query.free_variables
    for solution in _solution_csp(query, database, engine=engine)._iter_assignments(None):
        answers.add(tuple(solution[v] for v in free))
    return answers


def count_answers_exact(
    query: ConjunctiveQuery,
    database: Structure,
    method: str = "backtracking",
    engine: str = DEFAULT_ENGINE,
) -> int:
    """Exact ``|Ans(phi, D)|``.

    ``method="backtracking"`` (default) enumerates solutions with the CSP
    engine and counts distinct projections; ``method="bruteforce"`` is the
    plain ``|U(D)|^{|vars(phi)|}`` enumeration from the introduction (kept as
    an independent reference implementation for differential testing).
    ``engine`` selects the CSP engine (``"indexed"``/``"naive"``/
    ``"columnar"``) for the backtracking method.
    """
    if method == "bruteforce":
        return query.count_answers_bruteforce(database)
    if method == "backtracking":
        return len(enumerate_answers_exact(query, database, engine=engine))
    raise ValueError(f"unknown method {method!r}")
