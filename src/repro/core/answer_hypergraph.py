"""The answer hypergraph ``H(phi, D)`` (Definitions 23, 24, Observation 25).

Given an ECQ ``phi`` with ``l`` free variables and a database ``D`` with
``N = |U(D)|`` elements, ``H(phi, D)`` is the ``l``-uniform, ``l``-partite
hypergraph whose vertex classes are ``U_i(D) = U(D) x {i}`` (candidate values
for the ``i``-th free variable) and whose hyperedges are exactly the answers
of ``(phi, D)`` (Observation 25).  The paper approximates ``|Ans(phi, D)|`` by
approximating ``|E(H(phi, D))|`` with the Dell–Lapinskas–Meeks framework.

This module provides

* :func:`vertex_classes` — the classes ``U_0(D), ..., U_{l-1}(D)``,
* :func:`build_answer_hypergraph` — the *explicit* hypergraph, built by brute
  force; only used as ground truth in tests and on small benches,
* :class:`DirectEdgeFreeOracle` — an EdgeFree oracle that decides
  ``EdgeFree(H(phi, D)[V_1, ..., V_l])`` directly with the CSP engine
  (restricting the free variables to the ``V_i`` and adding the disequality
  and negation constraints natively).  This is the practical oracle mode; the
  paper-faithful colour-coding oracle lives in
  :mod:`repro.core.colour_coding`.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.associated_structures import variable_order
from repro.hypergraph import PartiteHypergraph
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import (
    DEFAULT_ENGINE,
    Constraint,
    CSPInstance,
    NotEqualConstraint,
    NotInRelationConstraint,
)
from repro.relational.structure import Structure

Element = Hashable
TaggedValue = Tuple[Element, int]


def vertex_classes(query: ConjunctiveQuery, database: Structure) -> List[Set[TaggedValue]]:
    """The classes ``U_i(D) = U(D) x {i}`` for the free variables (0-based)."""
    return [
        {(value, index) for value in database.universe}
        for index in range(query.num_free())
    ]


def build_answer_hypergraph(
    query: ConjunctiveQuery, database: Structure
) -> PartiteHypergraph:
    """The explicit answer hypergraph (brute-force; testing/ground truth)."""
    classes = vertex_classes(query, database)
    hypergraph = PartiteHypergraph(classes)
    for answer in query.answers(database):
        hypergraph.add_tuple_edge([(value, index) for index, value in enumerate(answer)])
    return hypergraph


class DirectEdgeFreeOracle:
    """Decide ``EdgeFree(H(phi, D)[V_1, ..., V_l])`` (for class-aligned
    subsets ``V_i ⊆ U_i(D)``) by solving the underlying CSP directly.

    The CSP has one variable per query variable; the domain of the ``i``-th
    free variable is (the untagged copy of) ``V_i``, the domain of every
    existential variable is ``U(D)``.  Constraints:

    * one table constraint per positive atom (allowed tuples = the relation),
    * one "forbidden table" constraint per negated atom, encoded as the
      complement restricted to the current domains,
    * one binary disequality constraint per disequality.

    The subinstance has a hyperedge iff the CSP has a solution.  This oracle
    is deterministic (no colour coding), which is why it is the default for
    benches; the colour-coding oracle in :mod:`repro.core.colour_coding`
    reproduces the paper's reduction exactly and is used to cross-validate.
    """

    def __init__(
        self, query: ConjunctiveQuery, database: Structure, engine: str = DEFAULT_ENGINE
    ) -> None:
        query._check_signature_compatibility(database)
        self._query = query
        self._database = database
        self._order = variable_order(query)
        self._num_free = query.num_free()
        self._universe = database.canonical_universe()
        self._engine = engine
        self._search_order_cache: Optional[List[str]] = None
        self.calls = 0
        # The constraint set does not depend on the queried subsets, only the
        # free-variable domains do — build it once, sharing the database's
        # per-relation tuple indexes (and columnar column arrays) across all
        # calls.
        columnar = engine == "columnar"
        self._constraints: List[object] = []
        for atom in query.atoms:
            self._constraints.append(
                Constraint.trusted(
                    atom.args,
                    index=database.relation_index(atom.relation),
                    table=database.columnar_relation(atom.relation) if columnar else None,
                )
            )
        for atom in query.negated_atoms:
            forbidden = (
                database.relation(atom.relation)
                if atom.relation in database.signature
                else frozenset()
            )
            self._constraints.append(
                NotInRelationConstraint(scope=atom.args, forbidden=frozenset(forbidden))
            )
        for disequality in query.disequalities:
            self._constraints.append(
                NotEqualConstraint(disequality.left, disequality.right)
            )

    @property
    def query(self) -> ConjunctiveQuery:
        return self._query

    @property
    def database(self) -> Structure:
        return self._database

    def _build_csp(self, free_domains: Sequence[Set[Element]]) -> CSPInstance:
        domains: Dict[str, Iterable[Element]] = {}
        for index, variable in enumerate(self._order):
            if index < self._num_free:
                domains[variable] = set(free_domains[index])
            else:
                # Hand the shared canonical tuple through unchanged: the CSP
                # copies it into a set, and the columnar engine recognises it
                # by identity as the full interned universe.
                domains[variable] = self._universe
        csp = CSPInstance(
            domains,
            self._constraints,
            engine=self._engine,
            search_order=self._search_order_cache,
        )
        if self._search_order_cache is None:
            # The scopes (and hence the min-fill order) are the same for every
            # call; compute the order once and reuse it for all later CSPs.
            self._search_order_cache = csp.search_order()
        return csp

    def edge_free(self, subsets: Sequence[Iterable[TaggedValue]]) -> bool:
        """True iff the restricted answer hypergraph has no hyperedge."""
        self.calls += 1
        if len(subsets) != self._num_free:
            raise ValueError(
                f"expected {self._num_free} subsets, got {len(subsets)}"
            )
        free_domains: List[Set[Element]] = []
        for index, subset in enumerate(subsets):
            untagged: Set[Element] = set()
            for item in subset:
                value, tag = item
                if tag != index:
                    raise ValueError(
                        f"subset {index} contains an element tagged {tag}; the direct "
                        "oracle expects class-aligned subsets"
                    )
                untagged.add(value)
            if not untagged:
                return True
            free_domains.append(untagged)
        if self._num_free == 0:
            # Boolean query: an "edge" exists iff the query has a solution.
            return not self._build_csp([]).is_satisfiable()
        csp = self._build_csp(free_domains)
        return not csp.is_satisfiable()

    __call__ = edge_free
