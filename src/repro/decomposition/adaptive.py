"""Fractional independent sets and adaptive width (Definition 33).

A fractional independent set of a hypergraph ``H`` is ``mu : V(H) -> [0, 1]``
with ``sum_{v in e} mu(v) <= 1`` for every hyperedge ``e``.  The
``mu``-width of ``H`` is the f-width with bag cost ``mu(B_t)`` (Definition 32),
and the adaptive width ``aw(H)`` is the supremum of the ``mu``-width over all
fractional independent sets ``mu``.

Computing adaptive width exactly requires maximising over a continuum of
``mu``; this module provides

* :func:`mu_width` — the exact ``mu``-width for a *given* ``mu`` (small
  hypergraphs, via the generic f-width DP; ``mu``-cost is monotone),
* :func:`adaptive_width_lower_bound` — the best ``mu``-width over a supplied or
  randomly sampled family of fractional independent sets (every member is a
  certified lower bound on ``aw``),
* :func:`adaptive_width_upper_bound` — ``fhw(H)``, since adaptive width is at
  most fractional hypertreewidth (Lemma 12: fhw is *strongly dominated by* aw,
  i.e. bounded fhw implies bounded aw via ``aw <= fhw``),
* :func:`estimate_adaptive_width` — both bounds packaged together, and
* Observation 34's inequality ``tw(H) <= a * aw(H) - 1`` as a checkable
  relation (:func:`observation_34_holds`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.decomposition.f_width import EXACT_F_WIDTH_LIMIT, exact_f_width
from repro.decomposition.fractional import fractional_hypertreewidth
from repro.decomposition.treewidth import exact_treewidth
from repro.hypergraph import Hypergraph
from repro.util.rng import RNGLike, as_generator

Vertex = Hashable
FractionalIndependentSet = Dict[Vertex, float]


def is_fractional_independent_set(
    hypergraph: Hypergraph, mu: FractionalIndependentSet, tolerance: float = 1e-9
) -> bool:
    """Whether ``mu`` is a fractional independent set of ``hypergraph``."""
    for vertex in hypergraph.vertices:
        value = mu.get(vertex, 0.0)
        if value < -tolerance or value > 1.0 + tolerance:
            return False
    for edge in hypergraph.edges:
        if sum(mu.get(v, 0.0) for v in edge) > 1.0 + tolerance:
            return False
    return True


def uniform_fractional_independent_set(hypergraph: Hypergraph) -> FractionalIndependentSet:
    """The uniform fractional independent set ``mu(v) = 1 / arity`` used in
    the proof of Observation 34 (every vertex gets weight 1/a)."""
    arity = hypergraph.arity()
    if arity == 0:
        return {vertex: 1.0 for vertex in hypergraph.vertices}
    return {vertex: 1.0 / arity for vertex in hypergraph.vertices}


def random_fractional_independent_set(
    hypergraph: Hypergraph, rng: RNGLike = None
) -> FractionalIndependentSet:
    """A random fractional independent set: draw random non-negative weights
    and scale each vertex down until every hyperedge constraint holds."""
    generator = as_generator(rng)
    vertices = sorted(hypergraph.vertices, key=repr)
    weights = {v: float(generator.random()) for v in vertices}
    # Iteratively rescale overloaded edges; converges because scaling is
    # monotone decreasing and constraints are linear.
    for _ in range(50):
        violated = False
        for edge in hypergraph.edges:
            total = sum(weights[v] for v in edge)
            if total > 1.0:
                violated = True
                scale = 1.0 / total
                for v in edge:
                    weights[v] *= scale
        if not violated:
            break
    return weights


def mu_width(
    hypergraph: Hypergraph, mu: FractionalIndependentSet, exact: Optional[bool] = None
) -> float:
    """The exact ``mu``-width of a small hypergraph for a given fractional
    independent set ``mu`` (Definition 32 with ``f(X) = mu(X)``)."""
    if not is_fractional_independent_set(hypergraph, mu):
        raise ValueError("mu is not a fractional independent set of the hypergraph")
    if hypergraph.num_vertices() == 0:
        return 0.0
    if exact is None:
        exact = hypergraph.num_vertices() <= EXACT_F_WIDTH_LIMIT
    if not exact:
        raise ValueError("mu-width is only computed exactly; hypergraph too large")

    def cost(bag: FrozenSet) -> float:
        return sum(mu.get(v, 0.0) for v in bag)

    return exact_f_width(hypergraph, cost)


def adaptive_width_lower_bound(
    hypergraph: Hypergraph,
    independent_sets: Optional[Sequence[FractionalIndependentSet]] = None,
    samples: int = 8,
    rng: RNGLike = None,
) -> float:
    """A certified lower bound on ``aw(H)``: the maximum ``mu``-width over the
    supplied fractional independent sets plus ``samples`` random ones and the
    uniform one."""
    if hypergraph.num_vertices() == 0:
        return 0.0
    generator = as_generator(rng)
    candidates: List[FractionalIndependentSet] = [uniform_fractional_independent_set(hypergraph)]
    if independent_sets:
        candidates.extend(independent_sets)
    for _ in range(samples):
        candidates.append(random_fractional_independent_set(hypergraph, rng=generator))
    best = 0.0
    for mu in candidates:
        if not is_fractional_independent_set(hypergraph, mu):
            continue
        best = max(best, mu_width(hypergraph, mu))
    return best


def adaptive_width_upper_bound(hypergraph: Hypergraph) -> float:
    """An upper bound on ``aw(H)``: the fractional hypertreewidth.

    For every fractional independent set ``mu`` and every bag ``B``,
    ``mu(B) <= fcn(H[B])`` by LP duality (a fractional independent set of the
    induced hypergraph is a feasible solution of the LP dual of the fractional
    edge cover LP), hence ``aw(H) <= fhw(H)``.
    """
    if hypergraph.num_vertices() == 0:
        return 0.0
    value, _ = fractional_hypertreewidth(hypergraph)
    return value


@dataclass(frozen=True)
class AdaptiveWidthEstimate:
    """Bracketing estimate of the adaptive width of a hypergraph."""

    lower_bound: float
    upper_bound: float

    @property
    def is_tight(self) -> bool:
        return abs(self.upper_bound - self.lower_bound) < 1e-6

    def bounded_by(self, bound: float, tolerance: float = 1e-9) -> Optional[bool]:
        """True/False when the bracket resolves the question "aw <= bound?",
        otherwise ``None``."""
        if self.upper_bound <= bound + tolerance:
            return True
        if self.lower_bound > bound + tolerance:
            return False
        return None


def estimate_adaptive_width(
    hypergraph: Hypergraph, samples: int = 8, rng: RNGLike = None
) -> AdaptiveWidthEstimate:
    """Lower and upper bounds on ``aw(H)`` (exact when they coincide)."""
    lower = adaptive_width_lower_bound(hypergraph, samples=samples, rng=rng)
    upper = adaptive_width_upper_bound(hypergraph)
    # Guard against numerical drift making the bracket inconsistent.
    if lower > upper:
        lower = upper
    return AdaptiveWidthEstimate(lower_bound=lower, upper_bound=upper)


def observation_34_holds(hypergraph: Hypergraph, rng: RNGLike = None) -> bool:
    """Check Observation 34, ``tw(H) <= a * aw(H) - 1``, using the uniform
    fractional independent set (whose mu-width lower-bounds aw)."""
    if hypergraph.num_vertices() == 0 or hypergraph.num_vertices() > EXACT_F_WIDTH_LIMIT:
        return True
    arity = hypergraph.arity()
    treewidth = exact_treewidth(hypergraph)
    if arity == 0:
        return treewidth == -1
    uniform = uniform_fractional_independent_set(hypergraph)
    aw_lower = mu_width(hypergraph, uniform)
    return treewidth <= arity * aw_lower - 1 + 1e-9
