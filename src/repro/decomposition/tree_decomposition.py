"""Tree decompositions (Definition 4).

A tree decomposition of a hypergraph ``H`` is a pair ``(T, B)`` where ``T`` is
a rooted tree and ``B`` assigns a bag ``B_t ⊆ V(H)`` to each node ``t`` of
``T`` such that

(i)  every hyperedge ``e ∈ E(H)`` is contained in some bag, and
(ii) for every vertex ``v ∈ V(H)`` the set of tree nodes whose bag contains
     ``v`` induces a connected subtree of ``T``.

The *treewidth* of ``(T, B)`` is ``max_t |B_t| - 1``; other width measures are
obtained by replacing ``|B_t| - 1`` with a different bag-cost function
(Definition 32), which is what :func:`TreeDecomposition.f_width` provides.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.hypergraph import Hypergraph

NodeId = Hashable
Bag = FrozenSet


class TreeDecomposition:
    """A rooted tree decomposition of a hypergraph.

    Parameters
    ----------
    tree:
        A networkx (undirected) tree on arbitrary hashable node identifiers.
    bags:
        Mapping from each tree node to an iterable of hypergraph vertices.
    root:
        The root node; defaults to an arbitrary node of the tree.
    """

    def __init__(
        self,
        tree: nx.Graph,
        bags: Dict[NodeId, Iterable],
        root: Optional[NodeId] = None,
    ) -> None:
        if tree.number_of_nodes() == 0:
            raise ValueError("a tree decomposition needs at least one node")
        if not nx.is_tree(tree):
            raise ValueError("the decomposition tree must be a tree")
        missing = set(tree.nodes()) - set(bags.keys())
        if missing:
            raise ValueError(f"missing bags for tree nodes: {sorted(map(repr, missing))}")
        self._tree = tree.copy()
        self._bags: Dict[NodeId, Bag] = {node: frozenset(bags[node]) for node in tree.nodes()}
        if root is None:
            root = next(iter(tree.nodes()))
        if root not in self._tree:
            raise ValueError(f"root {root!r} is not a node of the tree")
        self._root = root

    # ----------------------------------------------------------------- access
    @property
    def tree(self) -> nx.Graph:
        return self._tree

    @property
    def root(self) -> NodeId:
        return self._root

    @property
    def bags(self) -> Dict[NodeId, Bag]:
        return dict(self._bags)

    def bag(self, node: NodeId) -> Bag:
        return self._bags[node]

    def nodes(self) -> List[NodeId]:
        return list(self._tree.nodes())

    def num_nodes(self) -> int:
        return self._tree.number_of_nodes()

    def children(self, node: NodeId) -> List[NodeId]:
        """Children of ``node`` in the rooted orientation."""
        parent = self.parents().get(node)
        return [n for n in self._tree.neighbors(node) if n != parent]

    def parents(self) -> Dict[NodeId, Optional[NodeId]]:
        """Parent map induced by the root (root maps to None)."""
        parents: Dict[NodeId, Optional[NodeId]] = {self._root: None}
        stack = [self._root]
        while stack:
            node = stack.pop()
            for neighbour in self._tree.neighbors(node):
                if neighbour not in parents:
                    parents[neighbour] = node
                    stack.append(neighbour)
        return parents

    def leaves(self) -> List[NodeId]:
        """Nodes without children in the rooted orientation."""
        return [node for node in self._tree.nodes() if not self.children(node)]

    def topological_order(self) -> List[NodeId]:
        """Nodes in root-to-leaf (BFS) order."""
        return list(nx.bfs_tree(self._tree, self._root).nodes())

    def bottom_up_order(self) -> List[NodeId]:
        """Nodes in leaf-to-root order (reverse BFS), for bottom-up DP."""
        return list(reversed(self.topological_order()))

    def all_bag_vertices(self) -> Set:
        vertices: Set = set()
        for bag in self._bags.values():
            vertices |= bag
        return vertices

    # ------------------------------------------------------------------ width
    def width(self) -> int:
        """Treewidth of the decomposition: max bag size minus one."""
        return max(len(bag) for bag in self._bags.values()) - 1

    def f_width(self, cost: Callable[[FrozenSet], float]) -> float:
        """The f-width of the decomposition (Definition 32): the maximum of
        ``cost(B_t)`` over all tree nodes."""
        return max(cost(bag) for bag in self._bags.values())

    # ------------------------------------------------------------- validation
    def is_valid_for(self, hypergraph: Hypergraph) -> bool:
        """Whether this is a valid tree decomposition of ``hypergraph``."""
        return not self.validation_errors(hypergraph)

    def validation_errors(self, hypergraph: Hypergraph) -> List[str]:
        """Human-readable list of violated tree-decomposition conditions."""
        errors: List[str] = []
        vertices = set(hypergraph.vertices)
        bag_vertices = self.all_bag_vertices()
        stray = bag_vertices - vertices
        if stray:
            errors.append(f"bags contain unknown vertices: {sorted(map(repr, stray))}")
        uncovered_vertices = vertices - bag_vertices
        if uncovered_vertices:
            errors.append(
                f"vertices not covered by any bag: {sorted(map(repr, uncovered_vertices))}"
            )
        # Condition (i): every hyperedge inside some bag.
        for edge in hypergraph.edges:
            if not any(edge <= bag for bag in self._bags.values()):
                errors.append(f"hyperedge {sorted(map(repr, edge))} not contained in any bag")
        # Condition (ii): connectivity of the occurrences of each vertex.
        for vertex in vertices:
            occupied = [node for node, bag in self._bags.items() if vertex in bag]
            if len(occupied) <= 1:
                continue
            subtree = self._tree.subgraph(occupied)
            if not nx.is_connected(subtree):
                errors.append(f"occurrences of vertex {vertex!r} are not connected")
        return errors

    # ------------------------------------------------------------- operations
    def reroot(self, new_root: NodeId) -> "TreeDecomposition":
        """Return the same decomposition rooted at ``new_root``."""
        return TreeDecomposition(self._tree, self._bags, root=new_root)

    def copy(self) -> "TreeDecomposition":
        return TreeDecomposition(self._tree, self._bags, root=self._root)

    def rename_vertices(self, mapping: Dict) -> "TreeDecomposition":
        """Return the same decomposition with every bag vertex renamed through
        ``mapping`` (vertices absent from the map are kept).  The tree shape,
        node identifiers and root are preserved, so niceness and node kinds
        survive — the prepared-query layer uses this to translate a shared
        decomposition into an alpha-renamed query's variable space.  The
        mapping must be injective on each bag (alpha-renamings are)."""
        new_bags = {
            node: frozenset(mapping.get(v, v) for v in bag)
            for node, bag in self._bags.items()
        }
        for node, bag in new_bags.items():
            if len(bag) != len(self._bags[node]):
                raise ValueError("rename_vertices mapping collapses a bag")
        return type(self)(self._tree, new_bags, root=self._root)

    def restrict_bags(self, keep: Callable[[object], bool]) -> "TreeDecomposition":
        """Return a decomposition whose bags are filtered by ``keep`` (used
        when projecting a decomposition onto a sub-hypergraph).  The tree shape
        is preserved; validity against a smaller hypergraph must be re-checked
        by the caller."""
        new_bags = {
            node: frozenset(v for v in bag if keep(v)) for node, bag in self._bags.items()
        }
        return TreeDecomposition(self._tree, new_bags, root=self._root)

    @classmethod
    def single_bag(cls, vertices: Iterable) -> "TreeDecomposition":
        """The trivial decomposition with one bag containing every vertex."""
        tree = nx.Graph()
        tree.add_node(0)
        return cls(tree, {0: frozenset(vertices)}, root=0)

    @classmethod
    def from_bag_list(
        cls, bag_list: List[Iterable], edges: List[Tuple[int, int]], root: int = 0
    ) -> "TreeDecomposition":
        """Build a decomposition from a list of bags (indexed 0..n-1) and a
        list of tree edges between the indices."""
        tree = nx.Graph()
        tree.add_nodes_from(range(len(bag_list)))
        tree.add_edges_from(edges)
        bags = {index: frozenset(bag) for index, bag in enumerate(bag_list)}
        return cls(tree, bags, root=root)

    def __repr__(self) -> str:
        return f"TreeDecomposition(nodes={self.num_nodes()}, width={self.width()})"
