"""A unified width-measure report and the domination relations of Lemma 12.

Lemma 12 (from Marx): treewidth is strongly dominated by hypertreewidth, which
is strongly dominated by fractional hypertreewidth, which is strongly
dominated by adaptive width (and adaptive width is weakly equivalent to
submodular width).  In the bounded-arity case all of these measures are weakly
equivalent (Observation 34).  :func:`width_profile` computes all measures for
a hypergraph (exactly where feasible) so callers — most importantly the
Figure-1 dichotomy classifier in :mod:`repro.core.dichotomy` — can reason
about the tractability regime of a query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.decomposition.adaptive import AdaptiveWidthEstimate, estimate_adaptive_width
from repro.decomposition.fractional import fractional_hypertreewidth
from repro.decomposition.hypertree import generalized_hypertreewidth
from repro.decomposition.treewidth import exact_treewidth, treewidth_upper_bound
from repro.decomposition.f_width import EXACT_F_WIDTH_LIMIT
from repro.hypergraph import Hypergraph
from repro.util.rng import RNGLike


@dataclass(frozen=True)
class WidthProfile:
    """All width measures of a hypergraph in one record.

    ``treewidth`` is exact when ``treewidth_exact`` is true, otherwise an
    upper bound; similarly for the hypergraph measures.  ``adaptive_width`` is
    a bracketing estimate (its upper bound ``fhw`` is all the paper's
    algorithms need: bounded fhw certifies bounded aw).
    """

    num_vertices: int
    num_edges: int
    arity: int
    treewidth: int
    treewidth_exact: bool
    hypertreewidth: float
    hypertreewidth_exact: bool
    fractional_hypertreewidth: float
    fractional_hypertreewidth_exact: bool
    adaptive_width: AdaptiveWidthEstimate

    def satisfies_lemma_12_chain(self, tolerance: float = 1e-6) -> bool:
        """Sanity-check the (per-instance consequences of the) domination
        chain: ``fhw <= hw`` and ``aw <= fhw``, plus the bounded-arity
        relation ``tw <= a * fhw - 1`` implied by Observation 34 and
        ``aw <= fhw``.  Only meaningful when all measures are exact."""
        if not (
            self.treewidth_exact
            and self.hypertreewidth_exact
            and self.fractional_hypertreewidth_exact
        ):
            return True
        if self.fractional_hypertreewidth > self.hypertreewidth + tolerance:
            return False
        if self.adaptive_width.lower_bound > self.fractional_hypertreewidth + tolerance:
            return False
        if self.arity > 0 and self.num_edges > 0:
            if self.treewidth > self.arity * self.fractional_hypertreewidth - 1 + tolerance:
                return False
        return True


def width_profile(
    hypergraph: Hypergraph,
    rng: RNGLike = None,
    adaptive_samples: int = 8,
) -> WidthProfile:
    """Compute every width measure of ``hypergraph`` (exactly on small
    hypergraphs, via upper bounds otherwise)."""
    n = hypergraph.num_vertices()
    exact_feasible = 0 < n <= EXACT_F_WIDTH_LIMIT

    if n == 0:
        treewidth, treewidth_exact = -1, True
    elif exact_feasible:
        treewidth, treewidth_exact = exact_treewidth(hypergraph), True
    else:
        treewidth, treewidth_exact = treewidth_upper_bound(hypergraph), False

    hypertreewidth, hw_exact = generalized_hypertreewidth(hypergraph)
    fhw, fhw_exact = fractional_hypertreewidth(hypergraph)
    adaptive = (
        estimate_adaptive_width(hypergraph, samples=adaptive_samples, rng=rng)
        if exact_feasible or n == 0
        else AdaptiveWidthEstimate(lower_bound=0.0, upper_bound=fhw)
    )

    return WidthProfile(
        num_vertices=n,
        num_edges=hypergraph.num_edges(),
        arity=hypergraph.arity(),
        treewidth=int(treewidth),
        treewidth_exact=treewidth_exact,
        hypertreewidth=float(hypertreewidth),
        hypertreewidth_exact=hw_exact,
        fractional_hypertreewidth=float(fhw),
        fractional_hypertreewidth_exact=fhw_exact,
        adaptive_width=adaptive,
    )
