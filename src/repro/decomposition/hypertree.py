"""Hypertree decompositions and (generalized) hypertreewidth (Definition 37).

A hypertree decomposition extends a tree decomposition with *guards*: each bag
``B_t`` is assigned a set of hyperedges ``Γ_t ⊆ E(H)`` whose union covers the
bag.  The hypertreewidth of the decomposition is the maximum guard size.

Computing hypertreewidth exactly is NP-hard in general.  For the reproduction
we compute the *generalized* hypertreewidth ``ghw`` (which drops the
"descendant" condition (iv) of Definition 37 and satisfies
``ghw <= hw <= 3·ghw + 1``); it is the f-width with bag cost equal to the
minimum number of full hyperedges covering the bag, which is monotone, so the
generic elimination-ordering DP applies on small hypergraphs.  Guards are then
reconstructed per bag with an exact set cover.

The measure is only used for comparison with the Arenas et al. baseline
(Theorem 38) and by the width-profile report; the paper's own algorithms need
treewidth, fractional hypertreewidth and adaptive width, which are computed in
their dedicated modules.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

from repro.decomposition.f_width import (
    EXACT_F_WIDTH_LIMIT,
    best_elimination_ordering,
    decomposition_from_ordering,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph import Hypergraph

Vertex = Hashable


def edge_cover_number(hypergraph: Hypergraph, bag: FrozenSet) -> int:
    """Minimum number of hyperedges of ``hypergraph`` whose union covers
    ``bag`` (infinite if no cover exists).

    Solved exactly by trying cover sizes in increasing order; bags are small
    (they come from query hypergraphs), so this is fast in practice.
    """
    bag = frozenset(bag)
    if not bag:
        return 0
    edges = [edge for edge in hypergraph.edges if edge & bag]
    union_all = frozenset().union(*edges) if edges else frozenset()
    if not bag <= union_all:
        return int(1e9)  # effectively infinite; bag cannot be guarded
    # Greedy upper bound first, to cap the exact search.
    uncovered = set(bag)
    greedy = 0
    while uncovered:
        best_edge = max(edges, key=lambda e: len(e & uncovered))
        if not best_edge & uncovered:
            break
        uncovered -= best_edge
        greedy += 1
    for size in range(1, greedy + 1):
        for combo in itertools.combinations(edges, size):
            covered = frozenset().union(*combo)
            if bag <= covered:
                return size
    return greedy


def guard_for_bag(hypergraph: Hypergraph, bag: FrozenSet) -> List[FrozenSet]:
    """A minimum-cardinality set of hyperedges covering ``bag``."""
    bag = frozenset(bag)
    if not bag:
        return []
    edges = [edge for edge in hypergraph.edges if edge & bag]
    target = edge_cover_number(hypergraph, bag)
    if target >= int(1e9):
        raise ValueError("bag cannot be covered by hyperedges")
    for size in range(0, target + 1):
        for combo in itertools.combinations(edges, size):
            covered = frozenset().union(*combo) if combo else frozenset()
            if bag <= covered:
                return list(combo)
    raise RuntimeError("unreachable: greedy bound was attainable")


@dataclass
class HypertreeDecomposition:
    """A tree decomposition together with guards ``Γ_t`` for each bag."""

    decomposition: TreeDecomposition
    guards: Dict[Hashable, List[FrozenSet]]

    def width(self) -> int:
        """Hypertreewidth of the decomposition: maximum guard cardinality."""
        if not self.guards:
            return 0
        return max(len(guard) for guard in self.guards.values())

    def is_valid_for(self, hypergraph: Hypergraph) -> bool:
        """Check conditions (i)-(iii) of Definition 37 (the generalized
        hypertree decomposition conditions)."""
        if not self.decomposition.is_valid_for(hypergraph):
            return False
        for node in self.decomposition.nodes():
            bag = self.decomposition.bag(node)
            guard = self.guards.get(node, [])
            if any(edge not in hypergraph.edges for edge in guard):
                return False
            covered = frozenset().union(*guard) if guard else frozenset()
            if not bag <= covered:
                return False
        return True


def _ghw_cost(hypergraph: Hypergraph):
    cache: Dict[FrozenSet, float] = {}

    def cost(bag: FrozenSet) -> float:
        key = frozenset(bag)
        if key not in cache:
            cache[key] = float(edge_cover_number(hypergraph, key))
        return cache[key]

    return cost


def generalized_hypertreewidth(
    hypergraph: Hypergraph, exact: Optional[bool] = None
) -> Tuple[float, bool]:
    """The generalized hypertreewidth of ``hypergraph`` and whether it is
    exact (exact for <= EXACT_F_WIDTH_LIMIT vertices)."""
    n = hypergraph.num_vertices()
    if n == 0:
        return 0.0, True
    cost = _ghw_cost(hypergraph)
    if exact is None:
        exact = n <= EXACT_F_WIDTH_LIMIT
    if exact:
        _, width = best_elimination_ordering(hypergraph, cost)
        return float(width), True
    from repro.decomposition.treewidth import _greedy_ordering  # local import

    graph = hypergraph.primal_graph()
    best = float("inf")
    for rule in ("min_fill", "min_degree"):
        ordering = _greedy_ordering(graph, rule)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        best = min(best, decomposition.f_width(cost))
    return float(best), False


def hypertree_decomposition(
    hypergraph: Hypergraph, exact: Optional[bool] = None
) -> HypertreeDecomposition:
    """A (generalized) hypertree decomposition of ``hypergraph``: a ghw-optimal
    tree decomposition on small inputs with minimum guards per bag."""
    n = hypergraph.num_vertices()
    if n == 0:
        return HypertreeDecomposition(TreeDecomposition.single_bag([]), {0: []})
    cost = _ghw_cost(hypergraph)
    if exact is None:
        exact = n <= EXACT_F_WIDTH_LIMIT
    if exact:
        ordering, _ = best_elimination_ordering(hypergraph, cost)
    else:
        from repro.decomposition.treewidth import _greedy_ordering  # local import

        ordering = _greedy_ordering(hypergraph.primal_graph(), "min_fill")
    decomposition = decomposition_from_ordering(hypergraph, ordering)
    guards = {
        node: guard_for_bag(hypergraph, decomposition.bag(node))
        for node in decomposition.nodes()
    }
    return HypertreeDecomposition(decomposition, guards)
