"""Fractional edge covers and fractional hypertreewidth (Definitions 39, 41).

A fractional edge cover of a hypergraph ``H`` is a weighting
``gamma : E(H) -> [0, 1]`` such that every vertex is covered with total weight
at least 1; the fractional edge cover number ``fcn(H)`` is the minimum total
weight.  The fractional hypertreewidth ``fhw(H)`` is the f-width of ``H`` with
bag cost ``f(X) = fcn(H[X])`` (Definition 41).

``fcn`` is computed exactly as a linear program with :mod:`scipy.optimize`.
``fhw`` is computed exactly on small hypergraphs via the generic f-width DP
(Observation 40 gives the monotonicity needed for correctness) and via greedy
elimination orderings otherwise.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.decomposition.f_width import (
    EXACT_F_WIDTH_LIMIT,
    best_elimination_ordering,
    decomposition_from_ordering,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph import Hypergraph

Vertex = Hashable


def fractional_edge_cover(
    hypergraph: Hypergraph,
) -> Tuple[Dict[FrozenSet, float], float]:
    """An optimal fractional edge cover and its total weight ``fcn(H)``.

    Isolated vertices (not contained in any hyperedge) make a fractional edge
    cover impossible; in that case a ``ValueError`` is raised.  An edgeless
    hypergraph without vertices has ``fcn = 0``.
    """
    vertices = sorted(hypergraph.vertices, key=repr)
    edges = sorted(hypergraph.edges, key=lambda e: repr(tuple(sorted(e, key=repr))))
    if not vertices:
        return {}, 0.0
    if hypergraph.isolated_vertices():
        raise ValueError("hypergraph with isolated vertices has no fractional edge cover")
    if not edges:
        raise ValueError("hypergraph with vertices but no edges has no fractional edge cover")

    vertex_index = {v: i for i, v in enumerate(vertices)}
    num_edges = len(edges)
    num_vertices = len(vertices)

    # minimise sum_e gamma_e  s.t.  for every v: sum_{e ∋ v} gamma_e >= 1,
    # 0 <= gamma_e <= 1.  linprog solves min c x with A_ub x <= b_ub.
    c = np.ones(num_edges)
    coverage = np.zeros((num_vertices, num_edges))
    for j, edge in enumerate(edges):
        for vertex in edge:
            coverage[vertex_index[vertex], j] = 1.0
    a_ub = -coverage
    b_ub = -np.ones(num_vertices)
    bounds = [(0.0, 1.0)] * num_edges
    result = linprog(c, A_ub=a_ub, b_ub=b_ub, bounds=bounds, method="highs")
    if not result.success:
        raise RuntimeError(f"fractional edge cover LP failed: {result.message}")
    weights = {edge: float(max(0.0, w)) for edge, w in zip(edges, result.x)}
    return weights, float(result.fun)


def fractional_edge_cover_number(hypergraph: Hypergraph) -> float:
    """``fcn(H)``: the optimal value of the fractional edge cover LP."""
    _, value = fractional_edge_cover(hypergraph)
    return value


def _fcn_cost(hypergraph: Hypergraph):
    """Bag-cost function ``X -> fcn(H[X])`` with memoisation."""
    cache: Dict[FrozenSet, float] = {}

    def cost(bag: FrozenSet) -> float:
        if not bag:
            return 0.0
        key = frozenset(bag)
        if key not in cache:
            induced = hypergraph.induced(key)
            # Vertices of the bag not touched by any hyperedge cannot be
            # fractionally covered; such bags cannot occur in a decomposition
            # of a hypergraph where every vertex lies in some edge, but we
            # guard against them by assigning an infinite cost.
            if induced.isolated_vertices() or induced.num_edges() == 0:
                cache[key] = float("inf")
            else:
                cache[key] = fractional_edge_cover_number(induced)
        return cache[key]

    return cost


def fractional_hypertreewidth(
    hypergraph: Hypergraph, exact: Optional[bool] = None
) -> Tuple[float, bool]:
    """``fhw(H)`` and whether the value is exact.

    Exact on hypergraphs with at most :data:`EXACT_F_WIDTH_LIMIT` vertices
    (default), otherwise an upper bound from greedy elimination orderings.
    """
    decomposition, width, is_exact = fractional_hypertreewidth_decomposition(
        hypergraph, exact=exact
    )
    del decomposition
    return width, is_exact


def fractional_hypertreewidth_decomposition(
    hypergraph: Hypergraph, exact: Optional[bool] = None
) -> Tuple[TreeDecomposition, float, bool]:
    """A tree decomposition (approximately) minimising the fractional
    hypertreewidth, the achieved fhw, and whether it is exact.

    The role of this routine in the reproduction is Lemma 43: the FPRAS of
    Theorem 16 first computes a tree decomposition of ``H(phi)`` whose bags
    have bounded fractional edge cover number.  The paper invokes Marx's
    cubic-approximation algorithm [33]; queries are small, so we compute an
    *optimal* decomposition exactly instead whenever the query has at most
    ``EXACT_F_WIDTH_LIMIT`` variables, and fall back to greedy orderings
    beyond that.
    """
    n = hypergraph.num_vertices()
    if n == 0:
        return TreeDecomposition.single_bag([]), 0.0, True
    cost = _fcn_cost(hypergraph)
    if exact is None:
        exact = n <= EXACT_F_WIDTH_LIMIT
    if exact:
        ordering, width = best_elimination_ordering(hypergraph, cost)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        return decomposition, float(width), True
    # Heuristic: reuse the treewidth heuristics' orderings and evaluate fhw.
    from repro.decomposition.treewidth import _greedy_ordering  # local import

    graph = hypergraph.primal_graph()
    best: Optional[Tuple[TreeDecomposition, float]] = None
    for rule in ("min_fill", "min_degree"):
        ordering = _greedy_ordering(graph, rule)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        width = decomposition.f_width(cost)
        if best is None or width < best[1]:
            best = (decomposition, width)
    assert best is not None
    return best[0], float(best[1]), False


def fractional_cover_of_bag(
    hypergraph: Hypergraph, bag: FrozenSet
) -> Tuple[Dict[FrozenSet, float], float]:
    """Optimal fractional edge cover of the induced hypergraph ``H[bag]``.

    Used by the Grohe–Marx bag-solution enumeration (Lemma 48) to certify the
    polynomial bound ``|Sol(phi, D, B)| <= ||D||^{fcn(H[B])}``.
    """
    if not bag:
        return {}, 0.0
    return fractional_edge_cover(hypergraph.induced(bag))
