"""Exact f-width computation (Definition 32) via elimination-ordering DP.

For a monotone bag-cost function ``f`` (monotone means ``f(X) <= f(Y)``
whenever ``X ⊆ Y``; all the cost functions used in the paper — ``|X| - 1`` for
treewidth, ``fcn(H[X])`` for fractional hypertreewidth (Observation 40), and
``mu(X)`` for adaptive width — are monotone), the f-width of a hypergraph
equals the minimum over *elimination orderings* of the maximum cost of the
bags produced by eliminating vertices in that order.

We implement the classic Bodlaender–Fomin–Koster–Kratsch–Thilikos style
dynamic program over subsets of eliminated vertices, which runs in
``O(2^n * poly(n))`` and is therefore exact for the small hypergraphs that
occur as query hypergraphs (queries are assumed to be much smaller than the
database).  Larger hypergraphs should use the heuristic routines in
:mod:`repro.decomposition.treewidth` and friends.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, FrozenSet, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph import Hypergraph

Vertex = Hashable

#: Hypergraphs with more vertices than this are rejected by the exact routines.
EXACT_F_WIDTH_LIMIT = 18


def _reachable_through(
    graph: nx.Graph, source: Vertex, allowed: FrozenSet[Vertex]
) -> FrozenSet[Vertex]:
    """Vertices outside ``allowed ∪ {source}`` reachable from ``source`` via
    paths whose internal vertices all lie in ``allowed``.

    This is the set ``Q(allowed, source)`` from the exact-treewidth DP: when
    ``allowed`` is the set of already-eliminated vertices, eliminating
    ``source`` next creates a bag ``{source} ∪ Q(allowed, source)``.
    """
    seen = {source}
    stack = [source]
    result = set()
    while stack:
        vertex = stack.pop()
        for neighbour in graph.neighbors(vertex):
            if neighbour in seen:
                continue
            seen.add(neighbour)
            if neighbour in allowed:
                stack.append(neighbour)
            else:
                result.add(neighbour)
    return frozenset(result)


def _elimination_bag(
    graph: nx.Graph, eliminated: FrozenSet[Vertex], vertex: Vertex
) -> FrozenSet[Vertex]:
    """The bag created by eliminating ``vertex`` after ``eliminated``."""
    return _reachable_through(graph, vertex, eliminated) | {vertex}


def best_elimination_ordering(
    hypergraph: Hypergraph,
    cost: Callable[[FrozenSet[Vertex]], float],
) -> Tuple[List[Vertex], float]:
    """Return an elimination ordering minimising the maximum bag cost, and
    that optimal cost.

    Raises
    ------
    ValueError
        If the hypergraph has more than :data:`EXACT_F_WIDTH_LIMIT` vertices.
    """
    vertices = sorted(hypergraph.vertices, key=repr)
    n = len(vertices)
    if n == 0:
        return [], 0.0
    if n > EXACT_F_WIDTH_LIMIT:
        raise ValueError(
            f"exact f-width is limited to {EXACT_F_WIDTH_LIMIT} vertices, got {n}"
        )
    graph = hypergraph.primal_graph()
    index_of = {v: i for i, v in enumerate(vertices)}
    full_mask = (1 << n) - 1

    cost_cache: Dict[FrozenSet[Vertex], float] = {}

    def bag_cost(bag: FrozenSet[Vertex]) -> float:
        if bag not in cost_cache:
            cost_cache[bag] = float(cost(bag))
        return cost_cache[bag]

    def mask_to_set(mask: int) -> FrozenSet[Vertex]:
        return frozenset(vertices[i] for i in range(n) if mask & (1 << i))

    # dp[mask] = minimal (over orderings of the vertices in mask, eliminated
    # first) maximum bag cost incurred while eliminating exactly those
    # vertices.  choice[mask] = the vertex eliminated last among mask.
    dp: Dict[int, float] = {0: float("-inf")}
    choice: Dict[int, Optional[Vertex]] = {0: None}

    masks_by_popcount: List[List[int]] = [[] for _ in range(n + 1)]
    for mask in range(full_mask + 1):
        masks_by_popcount[bin(mask).count("1")].append(mask)

    for size in range(1, n + 1):
        for mask in masks_by_popcount[size]:
            best_value = float("inf")
            best_vertex: Optional[Vertex] = None
            for i in range(n):
                bit = 1 << i
                if not mask & bit:
                    continue
                previous = mask ^ bit
                if previous not in dp:
                    continue
                vertex = vertices[i]
                bag = _elimination_bag(graph, mask_to_set(previous), vertex)
                value = max(dp[previous], bag_cost(bag))
                if value < best_value:
                    best_value = value
                    best_vertex = vertex
            dp[mask] = best_value
            choice[mask] = best_vertex

    # Reconstruct the ordering (the vertex stored for a mask is eliminated
    # *last* among that mask).
    ordering_reversed: List[Vertex] = []
    mask = full_mask
    while mask:
        vertex = choice[mask]
        assert vertex is not None
        ordering_reversed.append(vertex)
        mask ^= 1 << index_of[vertex]
    ordering = list(reversed(ordering_reversed))
    return ordering, dp[full_mask]


def decomposition_from_ordering(
    hypergraph: Hypergraph, ordering: Sequence[Vertex]
) -> TreeDecomposition:
    """Build a tree decomposition from an elimination ordering.

    The bag of the ``i``-th node is the elimination bag of ``ordering[i]``
    (the vertex plus its not-yet-eliminated "neighbours through eliminated
    vertices"); node ``i`` is attached to the node of the first later vertex
    appearing in its bag, which yields a valid tree decomposition.
    """
    vertices = list(ordering)
    n = len(vertices)
    if n == 0:
        return TreeDecomposition.single_bag(hypergraph.vertices)
    if set(vertices) != set(hypergraph.vertices):
        raise ValueError("ordering must contain every vertex exactly once")
    graph = hypergraph.primal_graph()
    position = {v: i for i, v in enumerate(vertices)}

    bags: List[FrozenSet[Vertex]] = []
    eliminated: set = set()
    for vertex in vertices:
        bag = _elimination_bag(graph, frozenset(eliminated), vertex)
        bags.append(bag)
        eliminated.add(vertex)

    tree = nx.Graph()
    tree.add_nodes_from(range(n))
    for i in range(n):
        later = [position[v] for v in bags[i] if position[v] > i]
        if later:
            tree.add_edge(i, min(later))
        elif i < n - 1:
            # Disconnected component: attach to the last node so the result
            # remains a tree.
            tree.add_edge(i, n - 1)
    decomposition = TreeDecomposition(tree, dict(enumerate(bags)), root=n - 1)
    return decomposition


def exact_f_width(
    hypergraph: Hypergraph, cost: Callable[[FrozenSet[Vertex]], float]
) -> float:
    """The exact f-width of a (small) hypergraph for a monotone cost ``f``."""
    if hypergraph.num_vertices() == 0:
        return 0.0
    _, value = best_elimination_ordering(hypergraph, cost)
    return value


def f_width_decomposition(
    hypergraph: Hypergraph, cost: Callable[[FrozenSet[Vertex]], float]
) -> Tuple[TreeDecomposition, float]:
    """An f-width-optimal tree decomposition and its f-width."""
    if hypergraph.num_vertices() == 0:
        decomposition = TreeDecomposition.single_bag([])
        return decomposition, 0.0
    ordering, _ = best_elimination_ordering(hypergraph, cost)
    decomposition = decomposition_from_ordering(hypergraph, ordering)
    return decomposition, decomposition.f_width(cost)
