"""Tree decompositions and hypergraph width measures.

Implements the width-measure toolbox the paper's classification is phrased in
(Figure 1): treewidth (Definition 4), hypertree decompositions and
hypertreewidth (Definition 37), fractional edge covers and fractional
hypertreewidth (Definitions 39 and 41), fractional independent sets and
adaptive width (Definition 33), the generic f-width framework (Definition 32),
nice tree decompositions (Definition 42, Lemma 43) and the domination
relations between the measures (Lemma 12, Observation 34).
"""

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.decomposition.treewidth import (
    exact_treewidth,
    treewidth_decomposition,
    treewidth_upper_bound,
)
from repro.decomposition.nice import NiceTreeDecomposition, make_nice
from repro.decomposition.fractional import (
    fractional_edge_cover,
    fractional_edge_cover_number,
    fractional_hypertreewidth,
    fractional_hypertreewidth_decomposition,
)
from repro.decomposition.hypertree import (
    HypertreeDecomposition,
    edge_cover_number,
    generalized_hypertreewidth,
    hypertree_decomposition,
)
from repro.decomposition.adaptive import (
    adaptive_width_lower_bound,
    adaptive_width_upper_bound,
    estimate_adaptive_width,
    mu_width,
    uniform_fractional_independent_set,
)
from repro.decomposition.widths import WidthProfile, width_profile
from repro.decomposition.f_width import exact_f_width, f_width_decomposition

__all__ = [
    "TreeDecomposition",
    "NiceTreeDecomposition",
    "make_nice",
    "exact_treewidth",
    "treewidth_upper_bound",
    "treewidth_decomposition",
    "exact_f_width",
    "f_width_decomposition",
    "fractional_edge_cover",
    "fractional_edge_cover_number",
    "fractional_hypertreewidth",
    "fractional_hypertreewidth_decomposition",
    "HypertreeDecomposition",
    "hypertree_decomposition",
    "edge_cover_number",
    "generalized_hypertreewidth",
    "mu_width",
    "uniform_fractional_independent_set",
    "adaptive_width_lower_bound",
    "adaptive_width_upper_bound",
    "estimate_adaptive_width",
    "WidthProfile",
    "width_profile",
]
