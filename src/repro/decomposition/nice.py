"""Nice tree decompositions (Definition 42 and Lemma 43).

A tree decomposition is *nice* if

* the root and all leaves have empty bags,
* every internal node has at most two children,
* a node with two children has the same bag as both children (a *join* node),
* a node with one child differs from the child's bag by exactly one vertex
  (an *introduce* node if the parent bag is larger, a *forget* node if it is
  smaller).

Lemma 43 turns an arbitrary tree decomposition into a nice one in polynomial
time without increasing any monotone bag cost (every new bag is a subset of an
original bag; Observation 40 then bounds the fractional hypertreewidth).  The
FPRAS of Theorem 16 consumes nice tree decompositions when building its tree
automaton (Lemma 52).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx

from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph import Hypergraph

NodeId = int


class NiceTreeDecomposition(TreeDecomposition):
    """A tree decomposition satisfying the niceness conditions of
    Definition 42, with node-kind introspection helpers."""

    KIND_LEAF = "leaf"
    KIND_ROOT = "root"
    KIND_JOIN = "join"
    KIND_INTRODUCE = "introduce"
    KIND_FORGET = "forget"
    KIND_NOOP = "noop"

    def node_kind(self, node: NodeId) -> str:
        """Classify a node as leaf / join / introduce / forget.

        The root is classified by its relationship with its child like any
        other internal node; use ``node == decomposition.root`` to test for
        the root itself.
        """
        children = self.children(node)
        if not children:
            return self.KIND_LEAF
        if len(children) == 2:
            return self.KIND_JOIN
        child = children[0]
        bag, child_bag = self.bag(node), self.bag(child)
        if bag == child_bag:
            return self.KIND_NOOP
        if len(bag) == len(child_bag) + 1 and child_bag <= bag:
            return self.KIND_INTRODUCE
        if len(bag) == len(child_bag) - 1 and bag <= child_bag:
            return self.KIND_FORGET
        raise ValueError(f"node {node!r} violates niceness")

    def introduced_vertex(self, node: NodeId):
        """The vertex introduced at an introduce node."""
        if self.node_kind(node) != self.KIND_INTRODUCE:
            raise ValueError(f"node {node!r} is not an introduce node")
        (child,) = self.children(node)
        (vertex,) = tuple(self.bag(node) - self.bag(child))
        return vertex

    def forgotten_vertex(self, node: NodeId):
        """The vertex forgotten at a forget node."""
        if self.node_kind(node) != self.KIND_FORGET:
            raise ValueError(f"node {node!r} is not a forget node")
        (child,) = self.children(node)
        (vertex,) = tuple(self.bag(child) - self.bag(node))
        return vertex

    def is_nice(self) -> bool:
        """Verify all niceness conditions of Definition 42."""
        if self.bag(self.root):
            return False
        for node in self.nodes():
            children = self.children(node)
            if not children:
                if self.bag(node):
                    return False
                continue
            if len(children) > 2:
                return False
            if len(children) == 2:
                left, right = children
                if not (self.bag(node) == self.bag(left) == self.bag(right)):
                    return False
            else:
                (child,) = children
                difference = self.bag(node) ^ self.bag(child)
                if len(difference) != 1:
                    return False
        return True


def make_nice(
    decomposition: TreeDecomposition, hypergraph: Optional[Hypergraph] = None
) -> NiceTreeDecomposition:
    """Convert a tree decomposition into an equivalent nice one (Lemma 43).

    Every bag of the result is a subset of some bag of the input, so any
    monotone f-width (treewidth, fractional hypertreewidth, mu-width) does not
    increase.  If ``hypergraph`` is given, the result is validated against it.
    """
    counter = itertools.count()
    tree = nx.Graph()
    bags: Dict[NodeId, FrozenSet] = {}

    def new_node(bag: FrozenSet) -> NodeId:
        node = next(counter)
        tree.add_node(node)
        bags[node] = frozenset(bag)
        return node

    def add_path_between(parent: NodeId, parent_bag: FrozenSet, child_bag: FrozenSet) -> NodeId:
        """Create a chain of introduce/forget nodes from ``parent_bag`` down to
        ``child_bag`` below ``parent``; return the final node (whose bag is
        ``child_bag``)."""
        current = parent
        current_bag = set(parent_bag)
        # Drop vertices not present in the child, one at a time.
        for vertex in sorted(parent_bag - child_bag, key=repr):
            current_bag.discard(vertex)
            node = new_node(frozenset(current_bag))
            tree.add_edge(current, node)
            current = node
        # Add vertices present only in the child, one at a time.
        for vertex in sorted(child_bag - parent_bag, key=repr):
            current_bag.add(vertex)
            node = new_node(frozenset(current_bag))
            tree.add_edge(current, node)
            current = node
        return current

    original_root = decomposition.root
    # New root with an empty bag, then a chain down to the original root's bag.
    root = new_node(frozenset())
    entry = add_path_between(root, frozenset(), decomposition.bag(original_root))

    def build(original_node, attach_at: NodeId) -> None:
        """Recursively attach the children of ``original_node`` below
        ``attach_at`` (whose bag equals ``original_node``'s bag)."""
        children = decomposition.children(original_node)
        bag = decomposition.bag(original_node)
        if not children:
            # Chain down to an empty leaf bag.
            final = add_path_between(attach_at, bag, frozenset())
            if bags[final]:
                empty = new_node(frozenset())
                tree.add_edge(final, empty)
            return
        if len(children) == 1:
            child = children[0]
            connector = add_path_between(attach_at, bag, decomposition.bag(child))
            build(child, connector)
            return
        # Two or more children: build a binary join spine, every node of which
        # carries ``bag``.
        pending = attach_at
        for index, child in enumerate(children):
            is_last = index == len(children) - 1
            if is_last:
                left = pending
            else:
                left = new_node(bag)
                right_spine = new_node(bag)
                tree.add_edge(pending, left)
                tree.add_edge(pending, right_spine)
            connector = add_path_between(left, bag, decomposition.bag(child))
            build(child, connector)
            if not is_last:
                pending = right_spine

    build(original_root, entry)

    nice = NiceTreeDecomposition(tree, bags, root=root)
    if hypergraph is not None:
        errors = nice.validation_errors(hypergraph)
        if errors:
            raise RuntimeError(
                "nice tree decomposition construction produced an invalid "
                f"decomposition: {errors}"
            )
    if not nice.is_nice():
        raise RuntimeError("nice tree decomposition construction violated niceness")
    return nice
