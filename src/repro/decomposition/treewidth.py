"""Treewidth (Definition 4): exact computation for small hypergraphs and
standard heuristics (min-fill, min-degree) for larger ones.

The treewidth of a hypergraph equals the treewidth of its primal graph, which
is how all routines here operate.  Exact computation uses the
elimination-ordering DP in :mod:`repro.decomposition.f_width`; heuristics
produce elimination orderings greedily and convert them into tree
decompositions with :func:`decomposition_from_ordering`.
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

import networkx as nx

from repro.decomposition.f_width import (
    EXACT_F_WIDTH_LIMIT,
    best_elimination_ordering,
    decomposition_from_ordering,
)
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.hypergraph import Hypergraph


def _treewidth_cost(bag: FrozenSet) -> float:
    return len(bag) - 1


def exact_treewidth(hypergraph: Hypergraph) -> int:
    """The exact treewidth of a small hypergraph (<= 18 vertices)."""
    if hypergraph.num_vertices() == 0:
        return -1 if hypergraph.num_edges() == 0 else 0
    _, width = best_elimination_ordering(hypergraph, _treewidth_cost)
    return int(width)


def _greedy_ordering(graph: nx.Graph, strategy: str) -> List:
    """Greedy elimination ordering using the min-degree or min-fill rule."""
    working = graph.copy()
    ordering: List = []
    while working.number_of_nodes() > 0:
        if strategy == "min_degree":
            vertex = min(
                working.nodes(), key=lambda v: (working.degree(v), repr(v))
            )
        elif strategy == "min_fill":

            def fill_in(v) -> int:
                neighbours = list(working.neighbors(v))
                missing = 0
                for i, u in enumerate(neighbours):
                    for w in neighbours[i + 1 :]:
                        if not working.has_edge(u, w):
                            missing += 1
                return missing

            vertex = min(working.nodes(), key=lambda v: (fill_in(v), repr(v)))
        else:
            raise ValueError(f"unknown strategy {strategy!r}")
        neighbours = list(working.neighbors(vertex))
        for i, u in enumerate(neighbours):
            for w in neighbours[i + 1 :]:
                working.add_edge(u, w)
        working.remove_node(vertex)
        ordering.append(vertex)
    return ordering


def treewidth_upper_bound(hypergraph: Hypergraph, strategy: str = "min_fill") -> int:
    """A treewidth upper bound from a greedy elimination ordering."""
    if hypergraph.num_vertices() == 0:
        return -1
    graph = hypergraph.primal_graph()
    ordering = _greedy_ordering(graph, strategy)
    decomposition = decomposition_from_ordering(hypergraph, ordering)
    return decomposition.width()


def treewidth_decomposition(
    hypergraph: Hypergraph,
    exact: Optional[bool] = None,
    strategy: str = "min_fill",
) -> Tuple[TreeDecomposition, int, bool]:
    """A tree decomposition of ``hypergraph`` together with its width.

    Parameters
    ----------
    exact:
        Force exact (True) or heuristic (False) computation.  By default the
        exact algorithm is used whenever the hypergraph has at most
        :data:`~repro.decomposition.f_width.EXACT_F_WIDTH_LIMIT` vertices.
    strategy:
        Heuristic elimination rule, ``"min_fill"`` or ``"min_degree"``.

    Returns
    -------
    (decomposition, width, is_exact)
    """
    n = hypergraph.num_vertices()
    if n == 0:
        return TreeDecomposition.single_bag([]), -1, True
    if exact is None:
        exact = n <= EXACT_F_WIDTH_LIMIT
    if exact:
        ordering, width = best_elimination_ordering(hypergraph, _treewidth_cost)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        return decomposition, int(width), True
    graph = hypergraph.primal_graph()
    best_decomposition: Optional[TreeDecomposition] = None
    for rule in (strategy, "min_degree" if strategy != "min_degree" else "min_fill"):
        ordering = _greedy_ordering(graph, rule)
        decomposition = decomposition_from_ordering(hypergraph, ordering)
        if best_decomposition is None or decomposition.width() < best_decomposition.width():
            best_decomposition = decomposition
    assert best_decomposition is not None
    return best_decomposition, best_decomposition.width(), False


def has_bounded_treewidth(hypergraph: Hypergraph, bound: int) -> bool:
    """Whether the (exact or upper-bounded) treewidth is at most ``bound``.

    Uses the exact algorithm when feasible, so a ``True`` answer from the
    heuristic path is still sound (the heuristic only over-estimates)."""
    if hypergraph.num_vertices() <= EXACT_F_WIDTH_LIMIT:
        return exact_treewidth(hypergraph) <= bound
    return treewidth_upper_bound(hypergraph) <= bound
