"""Counting answers to unions of (extended) conjunctive queries (Section 6).

The paper extends its counting results to unions of queries with the classic
Karp–Luby technique; :func:`approx_count_union` implements it on top of the
package's per-query counters and samplers.
"""

from repro.unions.karp_luby import approx_count_union, exact_count_union

__all__ = ["approx_count_union", "exact_count_union"]
