"""Karp–Luby approximate counting for unions of (extended) conjunctive queries
(Section 6).

Given queries ``phi_1, ..., phi_m`` over the same database and with the same
number of free variables, the goal is ``|⋃_i Ans(phi_i, D)|``.  The Karp–Luby
estimator writes the union as a fraction of the disjoint sum:

    ``|⋃_i A_i| = (Σ_i |A_i|) * Pr[(i, a) is "canonical"]``,

where ``(i, a)`` is drawn by picking ``i`` with probability proportional to
``|A_i|`` and then ``a`` uniformly from ``A_i``, and the pair is canonical if
``i`` is the *smallest* index ``j`` with ``a ∈ A_j``.  Membership ``a ∈ A_j``
is decided exactly (:meth:`ConjunctiveQuery.is_answer`), per-query counts come
from the package's counters and per-query samples from the Section-6 sampler.
"""

from __future__ import annotations

import math
from typing import Callable, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.exact import enumerate_answers_exact
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.sampling.jvv import sample_answers
from repro.util.rng import RNGLike, as_generator
from repro.util.validation import check_epsilon_delta

Element = Hashable
AnswerTuple = Tuple[Element, ...]


def _validate_union(queries: Sequence[ConjunctiveQuery]) -> None:
    if not queries:
        raise ValueError("need at least one query")
    arities = {len(query.free_variables) for query in queries}
    if len(arities) != 1:
        raise ValueError(
            "all queries of a union must have the same number of free variables; "
            f"got arities {sorted(arities)}"
        )


def exact_count_union(
    queries: Sequence[ConjunctiveQuery],
    database: Structure,
    engine: str = DEFAULT_ENGINE,
) -> int:
    """Exact ``|⋃_i Ans(phi_i, D)|`` by enumeration (baseline)."""
    _validate_union(queries)
    union: Set[AnswerTuple] = set()
    for query in queries:
        union |= enumerate_answers_exact(query, database, engine=engine)
    return len(union)


def approx_count_union(
    queries: Sequence[ConjunctiveQuery],
    database: Structure,
    epsilon: float = 0.2,
    delta: float = 0.05,
    rng: RNGLike = None,
    exact_components: bool = False,
    num_samples: Optional[int] = None,
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Karp–Luby (epsilon, delta)-style estimate of ``|⋃_i Ans(phi_i, D)|``.

    ``exact_components=True`` uses exact per-query counts and exactly uniform
    per-query samples (the estimator is then a plain Monte-Carlo Karp–Luby
    scheme whose only error is sampling error); otherwise the per-query
    counters/samplers are the package's approximation schemes, matching the
    construction sketched in Section 6.  ``engine`` selects the CSP engine
    backing the per-query counters and samplers.
    """
    check_epsilon_delta(epsilon, delta)
    _validate_union(queries)
    generator = as_generator(rng)

    # Per-query counts, dispatched through the unified scheme registry: the
    # prepared-query layer shares width/decomposition artifacts across
    # repeated component shapes (common in unions built by renaming).
    counts: List[float] = []
    for query in queries:
        if exact_components:
            count = float(len(enumerate_answers_exact(query, database, engine=engine)))
        else:
            from repro.core.registry import REGISTRY
            from repro.queries.prepared import prepare
            from repro.queries.query import QueryClass

            prepared = prepare(query)
            scheme = (
                "fptras_ecq"
                if query.query_class() is QueryClass.ECQ
                else "fptras_dcq"
            )
            count = REGISTRY.count(
                scheme,
                prepared,
                database,
                epsilon=epsilon / 3.0,
                delta=delta / (3 * len(queries)),
                rng=generator,
                engine=engine,
            ).estimate
        counts.append(max(0.0, float(count)))

    total = sum(counts)
    if total <= 0:
        return 0.0

    if num_samples is None:
        num_samples = int(
            math.ceil(4.0 * len(queries) * math.log(2.0 / delta) / (epsilon ** 2))
        )
        num_samples = min(num_samples, 20000)

    probabilities = [count / total for count in counts]
    successes = 0
    performed = 0
    for _ in range(num_samples):
        index = int(generator.choice(len(queries), p=probabilities))
        samples = sample_answers(
            queries[index],
            database,
            num_samples=1,
            epsilon=epsilon,
            delta=delta,
            rng=generator,
            exact=exact_components,
            engine=engine,
        )
        if not samples:
            continue
        answer = samples[0]
        performed += 1
        canonical = True
        for smaller in range(index):
            if counts[smaller] <= 0:
                continue
            if queries[smaller].is_answer(answer, database):
                canonical = False
                break
        if canonical:
            successes += 1
    if performed == 0:
        return 0.0
    return total * successes / performed
