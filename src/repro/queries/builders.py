"""Programmatic builders for the query families used in the paper.

These are the workloads the benches and tests use to populate the cells of
Figure 1:

* :func:`path_query`, :func:`star_query`, :func:`tree_query` — bounded
  treewidth (treewidth 1), arity 2;
* :func:`clique_query` — treewidth k-1, the family behind Observation 9;
* :func:`grid_query` — treewidth min(rows, cols);
* :func:`hamiltonian_path_query` — the Observation-10 DCQ (treewidth 1 but no
  FPRAS unless NP = RP);
* :func:`common_neighbour_query` — the footnote-4 query
  ``∃y ⋀_i E(y, x_i)`` and its all-distinct DCQ variant;
* :func:`high_arity_acyclic_query` — bounded fractional hypertreewidth /
  adaptive width with unbounded arity (Theorems 13 and 16 territory).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import networkx as nx

from repro.queries.atoms import Atom, Disequality, NegatedAtom
from repro.queries.query import ConjunctiveQuery


def path_query(
    length: int,
    free_endpoints_only: bool = False,
    with_disequalities: bool = False,
    relation: str = "E",
) -> ConjunctiveQuery:
    """A path query ``E(x_0, x_1), ..., E(x_{k-1}, x_k)`` on ``length`` edges.

    With ``free_endpoints_only`` only the two endpoints are free (the interior
    vertices are existential); otherwise every variable is free.  With
    ``with_disequalities`` all pairs of variables are required to be distinct.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    variables = [f"x{i}" for i in range(length + 1)]
    atoms = [Atom(relation, (variables[i], variables[i + 1])) for i in range(length)]
    disequalities: List[Disequality] = []
    if with_disequalities:
        for i in range(len(variables)):
            for j in range(i + 1, len(variables)):
                disequalities.append(Disequality(variables[i], variables[j]))
    free = [variables[0], variables[-1]] if free_endpoints_only else variables
    return ConjunctiveQuery(free_variables=free, atoms=atoms, disequalities=disequalities)


def star_query(
    leaves: int,
    centre_free: bool = False,
    with_disequalities: bool = False,
    relation: str = "E",
) -> ConjunctiveQuery:
    """The footnote-4 family ``phi(x_1, ..., x_k) = ∃y ⋀_i E(y, x_i)``.

    With ``centre_free=True`` the centre ``y`` becomes a free variable, which
    is the easy variant the footnote discusses (exact counting becomes
    homomorphism counting of a treewidth-1 structure).  With
    ``with_disequalities`` the leaves are required to be pairwise distinct.
    """
    if leaves <= 0:
        raise ValueError("need at least one leaf")
    leaf_variables = [f"x{i}" for i in range(1, leaves + 1)]
    atoms = [Atom(relation, ("y", leaf)) for leaf in leaf_variables]
    disequalities: List[Disequality] = []
    if with_disequalities:
        for i in range(len(leaf_variables)):
            for j in range(i + 1, len(leaf_variables)):
                disequalities.append(Disequality(leaf_variables[i], leaf_variables[j]))
    free = leaf_variables + (["y"] if centre_free else [])
    return ConjunctiveQuery(free_variables=free, atoms=atoms, disequalities=disequalities)


def common_neighbour_query(k: int, with_disequalities: bool = True) -> ConjunctiveQuery:
    """Alias for the footnote-4 query with pairwise-distinct leaves."""
    return star_query(k, centre_free=False, with_disequalities=with_disequalities)


def clique_query(
    k: int, free: Optional[Sequence[str]] = None, relation: str = "E"
) -> ConjunctiveQuery:
    """The k-clique query: an atom ``E(x_i, x_j)`` for every pair.

    Its hypergraph is K_k (treewidth k-1), so the family over all k has
    unbounded treewidth — the hard regime of Observation 9.
    """
    if k < 2:
        raise ValueError("a clique query needs at least 2 variables")
    variables = [f"x{i}" for i in range(k)]
    atoms = [
        Atom(relation, (variables[i], variables[j]))
        for i in range(k)
        for j in range(i + 1, k)
    ]
    free_variables = list(free) if free is not None else variables
    return ConjunctiveQuery(free_variables=free_variables, atoms=atoms)


def cycle_query(length: int, relation: str = "E", all_free: bool = True) -> ConjunctiveQuery:
    """The cycle query on ``length`` >= 3 variables (treewidth 2)."""
    if length < 3:
        raise ValueError("a cycle query needs at least 3 variables")
    variables = [f"x{i}" for i in range(length)]
    atoms = [
        Atom(relation, (variables[i], variables[(i + 1) % length])) for i in range(length)
    ]
    free = variables if all_free else [variables[0]]
    return ConjunctiveQuery(free_variables=free, atoms=atoms)


def grid_query(rows: int, cols: int, relation: str = "E",
               num_free: Optional[int] = None) -> ConjunctiveQuery:
    """The rows x cols grid query (treewidth min(rows, cols)).

    ``num_free`` keeps only the first ``num_free`` variables (row-major order)
    free and quantifies the rest.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    variables = {(r, c): f"x_{r}_{c}" for r in range(rows) for c in range(cols)}
    atoms = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                atoms.append(Atom(relation, (variables[(r, c)], variables[(r, c + 1)])))
            if r + 1 < rows:
                atoms.append(Atom(relation, (variables[(r, c)], variables[(r + 1, c)])))
    ordered = [variables[(r, c)] for r in range(rows) for c in range(cols)]
    free = ordered if num_free is None else ordered[:num_free]
    if not free:
        free = ordered[:1]
    return ConjunctiveQuery(free_variables=free, atoms=atoms)


def hamiltonian_path_query(n: int, relation: str = "E") -> ConjunctiveQuery:
    """The Observation-10 DCQ whose answers are the Hamiltonian paths of the
    database graph:

        phi(x_1, ..., x_n) = ⋀_{i<n} E(x_i, x_{i+1})  ∧  ⋀_{i<j} x_i != x_j.

    Its hypergraph is the path on n vertices (treewidth 1, arity 2), yet no
    FPRAS exists unless NP = RP — the reason the paper settles for FPTRASes.
    """
    if n < 2:
        raise ValueError("a Hamiltonian path query needs at least 2 variables")
    variables = [f"x{i}" for i in range(1, n + 1)]
    atoms = [Atom(relation, (variables[i], variables[i + 1])) for i in range(n - 1)]
    disequalities = [
        Disequality(variables[i], variables[j])
        for i in range(n)
        for j in range(i + 1, n)
    ]
    return ConjunctiveQuery(free_variables=variables, atoms=atoms, disequalities=disequalities)


def tree_query(
    tree: nx.Graph,
    free: Optional[Sequence[str]] = None,
    relation: str = "E",
    with_disequalities: bool = False,
) -> ConjunctiveQuery:
    """A query whose atom structure follows an arbitrary tree (or graph): one
    binary atom per edge, variable ``v_<node>`` per node."""
    variables = {node: f"v_{node}" for node in tree.nodes()}
    atoms = [Atom(relation, (variables[u], variables[v])) for u, v in tree.edges()]
    disequalities: List[Disequality] = []
    if with_disequalities:
        names = sorted(variables.values())
        disequalities = [
            Disequality(names[i], names[j])
            for i in range(len(names))
            for j in range(i + 1, len(names))
        ]
    free_variables = list(free) if free is not None else sorted(variables.values())
    return ConjunctiveQuery(
        free_variables=free_variables, atoms=atoms, disequalities=disequalities
    )


def high_arity_acyclic_query(
    num_blocks: int,
    block_arity: int,
    shared: int = 1,
    num_free: Optional[int] = None,
    with_disequalities: bool = False,
) -> ConjunctiveQuery:
    """A chain of high-arity atoms ``R_i(...)`` in which consecutive atoms
    share ``shared`` variables.

    The hypergraph is an "acyclic hyperpath": hypertreewidth 1, fractional
    hypertreewidth 1 and adaptive width 1, but treewidth ``block_arity - 1``.
    This is the family used to exercise the unbounded-arity results
    (Theorems 13 and 16) beyond the reach of Theorem 5.
    """
    if num_blocks <= 0 or block_arity <= 1:
        raise ValueError("need at least one block of arity >= 2")
    if not 0 < shared < block_arity:
        raise ValueError("shared must be in (0, block_arity)")
    atoms: List[Atom] = []
    variables: List[str] = []
    counter = 0

    def fresh() -> str:
        nonlocal counter
        name = f"v{counter}"
        counter += 1
        variables.append(name)
        return name

    previous_tail: List[str] = []
    for block in range(num_blocks):
        if previous_tail:
            head = previous_tail
        else:
            head = [fresh() for _ in range(shared)]
        body = [fresh() for _ in range(block_arity - len(head))]
        scope = head + body
        atoms.append(Atom(f"R{block}", tuple(scope)))
        previous_tail = scope[-shared:]

    free = variables if num_free is None else variables[:num_free]
    if not free:
        free = variables[:1]
    disequalities: List[Disequality] = []
    if with_disequalities:
        free_list = list(free)
        disequalities = [
            Disequality(free_list[i], free_list[j])
            for i in range(len(free_list))
            for j in range(i + 1, len(free_list))
        ]
    return ConjunctiveQuery(free_variables=free, atoms=atoms, disequalities=disequalities)


def friends_query() -> ConjunctiveQuery:
    """The introduction's example (1): people with at least two friends,

        phi(x) = ∃y ∃z  F(x, y) ∧ F(x, z) ∧ y != z.
    """
    return ConjunctiveQuery(
        free_variables=["x"],
        atoms=[Atom("F", ("x", "y")), Atom("F", ("x", "z"))],
        disequalities=[Disequality("y", "z")],
    )
