"""A small textual query language for (extended) conjunctive queries.

Syntax (Datalog-ish)::

    Ans(x, y) :- E(x, z), E(z, y), x != y, !F(x, y), z = w

* The head lists the free variables (``Ans()`` for a Boolean query).
* The body is a comma-separated list of atoms:
  - ``R(v1, ..., vk)``    positive predicate,
  - ``!R(v1, ..., vk)`` or ``not R(...)``   negated predicate,
  - ``u != v``            disequality,
  - ``u = v``             equality (eliminated by variable unification,
                          exactly as the paper assumes w.l.o.g.).

Variable names are identifiers (letters, digits, underscores, starting with a
letter or underscore).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from repro.queries.atoms import Atom, Disequality, Equality, NegatedAtom
from repro.queries.query import ConjunctiveQuery
from repro.queries.rewriting import eliminate_equalities

_IDENT = r"[A-Za-z_][A-Za-z0-9_]*"
_HEAD_RE = re.compile(rf"^\s*({_IDENT})\s*\(\s*(.*?)\s*\)\s*$")
_ATOM_RE = re.compile(rf"^\s*(!|not\s+)?\s*({_IDENT})\s*\(\s*(.*?)\s*\)\s*$")
_DISEQ_RE = re.compile(rf"^\s*({_IDENT})\s*!=\s*({_IDENT})\s*$")
_EQ_RE = re.compile(rf"^\s*({_IDENT})\s*=\s*({_IDENT})\s*$")


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def _split_arguments(argument_string: str) -> List[str]:
    if not argument_string.strip():
        return []
    arguments = [part.strip() for part in argument_string.split(",")]
    for argument in arguments:
        if not re.fullmatch(_IDENT, argument):
            raise QueryParseError(f"invalid variable name {argument!r}")
    return arguments


def _split_body(body: str) -> List[str]:
    """Split the body on commas that are not inside parentheses."""
    parts: List[str] = []
    depth = 0
    current = []
    for character in body:
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
            if depth < 0:
                raise QueryParseError("unbalanced parentheses in query body")
        if character == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(character)
    if depth != 0:
        raise QueryParseError("unbalanced parentheses in query body")
    if current:
        parts.append("".join(current))
    return [part for part in (p.strip() for p in parts) if part]


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a query string into a :class:`ConjunctiveQuery`.

    Equalities in the body are eliminated by unifying variables (keeping free
    variables as the representatives whenever possible), so the returned
    query never contains equality atoms.
    """
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
    else:
        head_text, body_text = text, ""
    head_match = _HEAD_RE.match(head_text)
    if not head_match:
        raise QueryParseError(f"cannot parse query head {head_text.strip()!r}")
    free_variables = _split_arguments(head_match.group(2))
    if len(set(free_variables)) != len(free_variables):
        raise QueryParseError("free variables in the head must be distinct")

    atoms: List[Atom] = []
    negated: List[NegatedAtom] = []
    disequalities: List[Disequality] = []
    equalities: List[Equality] = []

    for part in _split_body(body_text):
        diseq_match = _DISEQ_RE.match(part)
        if diseq_match:
            disequalities.append(Disequality(diseq_match.group(1), diseq_match.group(2)))
            continue
        eq_match = _EQ_RE.match(part)
        if eq_match:
            equalities.append(Equality(eq_match.group(1), eq_match.group(2)))
            continue
        atom_match = _ATOM_RE.match(part)
        if atom_match:
            negation, relation, argument_string = atom_match.groups()
            arguments = _split_arguments(argument_string)
            if not arguments:
                raise QueryParseError(f"atom {part!r} needs at least one argument")
            if negation:
                negated.append(NegatedAtom(relation, tuple(arguments)))
            else:
                atoms.append(Atom(relation, tuple(arguments)))
            continue
        raise QueryParseError(f"cannot parse body atom {part!r}")

    try:
        return eliminate_equalities(
            free_variables=free_variables,
            atoms=atoms,
            negated_atoms=negated,
            disequalities=disequalities,
            equalities=equalities,
        )
    except QueryParseError:
        raise
    except ValueError as error:
        # Surface model-level validation problems (head variables not used in
        # the body, contradictory equalities, ...) as parse errors.
        raise QueryParseError(str(error)) from error


def format_query(query: ConjunctiveQuery) -> str:
    """Render a query back into the textual syntax accepted by
    :func:`parse_query` (a round-trip partner for serialisation in tests)."""
    body_parts = [str(atom) for atom in query.atoms]
    body_parts += [str(atom) for atom in query.negated_atoms]
    body_parts += [str(d) for d in query.disequalities]
    head = f"Ans({', '.join(query.free_variables)})"
    if not body_parts:
        return head
    return f"{head} :- {', '.join(body_parts)}"
