"""Atom types of extended conjunctive queries (Section 1.1).

An ECQ may contain four kinds of atoms over its variables:

* predicates ``R(y_1, ..., y_j)``,
* negated predicates ``not R(y_1, ..., y_j)``,
* disequalities ``y_i != y_j``, and
* equalities ``y_i = y_j`` (always rewritten away before algorithms run, see
  :mod:`repro.queries.rewriting`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Tuple

Variable = str


@dataclass(frozen=True)
class Atom:
    """A positive predicate ``relation(args...)``."""

    relation: str
    args: Tuple[Variable, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("atoms need a relation name")
        if not self.args:
            raise ValueError("atoms need at least one argument (arities are positive)")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset(self.args)

    def rename(self, mapping: Dict[Variable, Variable]) -> "Atom":
        """Rename variables according to ``mapping`` (missing keys unchanged)."""
        return Atom(self.relation, tuple(mapping.get(v, v) for v in self.args))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.args)})"


@dataclass(frozen=True)
class NegatedAtom:
    """A negated predicate ``not relation(args...)`` (ECQs only)."""

    relation: str
    args: Tuple[Variable, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("negated atoms need a relation name")
        if not self.args:
            raise ValueError("negated atoms need at least one argument")
        object.__setattr__(self, "args", tuple(self.args))

    @property
    def arity(self) -> int:
        return len(self.args)

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset(self.args)

    def rename(self, mapping: Dict[Variable, Variable]) -> "NegatedAtom":
        return NegatedAtom(self.relation, tuple(mapping.get(v, v) for v in self.args))

    def positive(self) -> Atom:
        """The positive atom over the same relation and arguments."""
        return Atom(self.relation, self.args)

    def __str__(self) -> str:
        return f"!{self.relation}({', '.join(self.args)})"


@dataclass(frozen=True)
class Disequality:
    """A disequality ``left != right`` between two (distinct) variables."""

    left: Variable
    right: Variable

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError(
                f"disequality {self.left} != {self.right} is unsatisfiable "
                "(same variable on both sides)"
            )

    @property
    def arity(self) -> int:
        return 2

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset({self.left, self.right})

    @property
    def pair(self) -> FrozenSet[Variable]:
        """The unordered pair {left, right}; the paper's ∆(phi) is a set of
        such pairs."""
        return frozenset({self.left, self.right})

    def rename(self, mapping: Dict[Variable, Variable]) -> "Disequality":
        return Disequality(mapping.get(self.left, self.left), mapping.get(self.right, self.right))

    def __str__(self) -> str:
        return f"{self.left} != {self.right}"


@dataclass(frozen=True)
class Equality:
    """An equality ``left = right``; only a surface-syntax construct, always
    eliminated by variable unification before any algorithm runs."""

    left: Variable
    right: Variable

    @property
    def arity(self) -> int:
        return 2

    @property
    def variables(self) -> FrozenSet[Variable]:
        return frozenset({self.left, self.right})

    def rename(self, mapping: Dict[Variable, Variable]) -> "Equality":
        return Equality(mapping.get(self.left, self.left), mapping.get(self.right, self.right))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"
