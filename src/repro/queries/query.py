"""The :class:`ConjunctiveQuery` model (CQ / DCQ / ECQ, Section 1.1).

A query ``phi(x_1, ..., x_l) = ∃ x_{l+1} ... ∃ x_{l+k} psi`` is represented by
its ordered tuple of free variables, its set of existential variables and the
atoms of ``psi`` (positive predicates, negated predicates and disequalities;
equalities are rewritten away by the parser / :mod:`repro.queries.rewriting`).

The class exposes exactly the query attributes the paper's machinery needs:

* ``size()`` — the parameter ``||phi||``: |vars(phi)| plus the sum of the
  arities of the atoms,
* ``hypergraph()`` — H(phi) of Definition 3 (no hyperedges for disequalities),
* ``delta()`` — the set ∆(phi) of disequality pairs,
* ``query_class()`` — CQ / DCQ / ECQ classification,
* reference semantics: :meth:`solutions` (Definition 1) and :meth:`answers`
  (Definition 2) by brute-force evaluation, used as the ground truth in tests
  and benches.
"""

from __future__ import annotations

import itertools
from enum import Enum
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.hypergraph import Hypergraph
from repro.queries.atoms import Atom, Disequality, NegatedAtom, Variable
from repro.relational.signature import RelationSymbol, Signature
from repro.relational.structure import Structure

Assignment = Dict[Variable, object]
AnswerTuple = Tuple[object, ...]


class QueryClass(Enum):
    """The three query classes of the paper's classification (Figure 1)."""

    CQ = "CQ"
    DCQ = "DCQ"
    ECQ = "ECQ"

    def allows_disequalities(self) -> bool:
        return self in (QueryClass.DCQ, QueryClass.ECQ)

    def allows_negations(self) -> bool:
        return self is QueryClass.ECQ


class ConjunctiveQuery:
    """An extended conjunctive query.

    Parameters
    ----------
    free_variables:
        Ordered tuple of output variables ``(x_1, ..., x_l)``; answers are
        reported as tuples in this order.
    atoms:
        Positive predicates.
    negated_atoms:
        Negated predicates (makes the query an ECQ).
    disequalities:
        Disequality atoms (makes the query a DCQ, or an ECQ when combined with
        negations).
    existential_variables:
        Optional explicit set of quantified variables; by default every
        variable occurring in an atom but not listed as free is existential.
    """

    def __init__(
        self,
        free_variables: Sequence[Variable],
        atoms: Iterable[Atom] = (),
        negated_atoms: Iterable[NegatedAtom] = (),
        disequalities: Iterable[Disequality] = (),
        existential_variables: Optional[Iterable[Variable]] = None,
    ) -> None:
        self._free: Tuple[Variable, ...] = tuple(free_variables)
        if len(set(self._free)) != len(self._free):
            raise ValueError("free variables must be distinct")
        self._atoms: Tuple[Atom, ...] = tuple(atoms)
        self._negated: Tuple[NegatedAtom, ...] = tuple(negated_atoms)
        self._disequalities: Tuple[Disequality, ...] = tuple(disequalities)

        occurring: Set[Variable] = set()
        for atom in itertools.chain(self._atoms, self._negated, self._disequalities):
            occurring |= set(atom.variables)

        if existential_variables is None:
            existential = occurring - set(self._free)
        else:
            existential = set(existential_variables)
            if existential & set(self._free):
                raise ValueError("a variable cannot be both free and existential")
        self._existential: FrozenSet[Variable] = frozenset(existential)

        all_variables = set(self._free) | self._existential
        stray = occurring - all_variables
        if stray:
            raise ValueError(
                f"variables {sorted(stray)} occur in atoms but are neither free "
                "nor existential"
            )
        # The paper requires every variable to appear in at least one atom.
        unused = all_variables - occurring
        if unused:
            raise ValueError(
                f"variables {sorted(unused)} do not appear in any atom "
                "(the paper requires every variable to occur in an atom)"
            )
        self._variables: FrozenSet[Variable] = frozenset(all_variables)
        self._check_arities()

    def _check_arities(self) -> None:
        arities: Dict[str, int] = {}
        for atom in itertools.chain(self._atoms, self._negated):
            previous = arities.get(atom.relation)
            if previous is not None and previous != atom.arity:
                raise ValueError(
                    f"relation {atom.relation!r} used with arities {previous} and {atom.arity}"
                )
            arities[atom.relation] = atom.arity

    # ----------------------------------------------------------------- access
    @property
    def free_variables(self) -> Tuple[Variable, ...]:
        """The ordered free (output) variables ``free(phi)``."""
        return self._free

    @property
    def existential_variables(self) -> FrozenSet[Variable]:
        return self._existential

    @property
    def variables(self) -> FrozenSet[Variable]:
        """``vars(phi)``: all variables of the query."""
        return self._variables

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        return self._atoms

    @property
    def negated_atoms(self) -> Tuple[NegatedAtom, ...]:
        return self._negated

    @property
    def disequalities(self) -> Tuple[Disequality, ...]:
        return self._disequalities

    def num_free(self) -> int:
        """``l = |free(phi)|``."""
        return len(self._free)

    def num_existential(self) -> int:
        """``k = |vars(phi)| - l``."""
        return len(self._existential)

    def delta(self) -> FrozenSet[FrozenSet[Variable]]:
        """``∆(phi)``: the set of unordered disequality pairs."""
        return frozenset(d.pair for d in self._disequalities)

    def is_quantifier_free(self) -> bool:
        return not self._existential

    # ------------------------------------------------------------ descriptors
    def query_class(self) -> QueryClass:
        """CQ / DCQ / ECQ classification of this query."""
        if self._negated:
            return QueryClass.ECQ
        if self._disequalities:
            return QueryClass.DCQ
        return QueryClass.CQ

    def signature(self) -> Signature:
        """``sig(phi)``: every relation symbol used in a predicate or negated
        predicate."""
        signature = Signature()
        for atom in itertools.chain(self._atoms, self._negated):
            signature.add(RelationSymbol(atom.relation, atom.arity))
        return signature

    def arity(self) -> int:
        """``ar(sig(phi))``."""
        return self.signature().arity()

    def size(self) -> int:
        """The parameter ``||phi||``: |vars(phi)| plus the sum of the arities
        of all atoms (predicates, negated predicates and disequalities)."""
        atom_mass = sum(
            atom.arity
            for atom in itertools.chain(self._atoms, self._negated, self._disequalities)
        )
        return len(self._variables) + atom_mass

    def num_negated(self) -> int:
        """``nu``: the number of negated predicates."""
        return len(self._negated)

    def hypergraph(self) -> Hypergraph:
        """``H(phi)`` of Definition 3: vertices are the variables; every
        predicate and negated predicate contributes a hyperedge; disequalities
        contribute *no* hyperedge."""
        edges = [
            frozenset(atom.args)
            for atom in itertools.chain(self._atoms, self._negated)
        ]
        return Hypergraph(vertices=self._variables, edges=edges)

    # -------------------------------------------------------------- semantics
    def satisfies(self, assignment: Assignment, database: Structure) -> bool:
        """Whether a total assignment of vars(phi) is a solution (Def. 1)."""
        for atom in self._atoms:
            image = tuple(assignment[v] for v in atom.args)
            if not database.has_fact(atom.relation, image):
                return False
        for atom in self._negated:
            image = tuple(assignment[v] for v in atom.args)
            if atom.relation in database.signature and database.has_fact(atom.relation, image):
                return False
        for disequality in self._disequalities:
            if assignment[disequality.left] == assignment[disequality.right]:
                return False
        return True

    def solutions(self, database: Structure) -> Iterator[Assignment]:
        """Brute-force enumeration of Sol(phi, D) (Definition 1).

        Exponential in the number of variables; reference semantics only.
        """
        self._check_signature_compatibility(database)
        variables = sorted(self._variables)
        universe = database.canonical_universe()
        for values in itertools.product(universe, repeat=len(variables)):
            assignment = dict(zip(variables, values))
            if self.satisfies(assignment, database):
                yield assignment

    def answers(self, database: Structure) -> Set[AnswerTuple]:
        """Brute-force computation of Ans(phi, D) (Definition 2): the set of
        projections of solutions onto the free variables, as tuples ordered
        like ``free_variables``."""
        answers: Set[AnswerTuple] = set()
        for solution in self.solutions(database):
            answers.add(tuple(solution[v] for v in self._free))
        return answers

    def count_answers_bruteforce(self, database: Structure) -> int:
        """|Ans(phi, D)| by brute force (baseline for tests and benches)."""
        return len(self.answers(database))

    def is_answer(self, candidate: Sequence[object], database: Structure) -> bool:
        """Whether ``candidate`` (ordered like ``free_variables``) can be
        extended to a solution — i.e. is an answer.

        Unlike :meth:`answers` this only searches over the existential
        variables, so it is usable on larger databases.
        """
        self._check_signature_compatibility(database)
        candidate = tuple(candidate)
        if len(candidate) != len(self._free):
            raise ValueError("candidate length must equal the number of free variables")
        if any(value not in database.universe for value in candidate):
            return False
        partial = dict(zip(self._free, candidate))
        existential = sorted(self._existential)
        universe = database.canonical_universe()
        for values in itertools.product(universe, repeat=len(existential)):
            assignment = dict(partial)
            assignment.update(zip(existential, values))
            if self.satisfies(assignment, database):
                return True
        return False

    def _check_signature_compatibility(self, database: Structure) -> None:
        for symbol in self.signature():
            found = database.signature.get(symbol.name)
            if found is None:
                raise ValueError(
                    f"database is missing relation {symbol.name!r} required by the query"
                )
            if found.arity != symbol.arity:
                raise ValueError(
                    f"relation {symbol.name!r} has arity {found.arity} in the database "
                    f"but {symbol.arity} in the query"
                )

    # ------------------------------------------------------------- operations
    def rename_variables(self, mapping: Dict[Variable, Variable]) -> "ConjunctiveQuery":
        """Rename variables (used by equality elimination and by the union
        counting machinery to make variable sets disjoint)."""
        new_free = tuple(mapping.get(v, v) for v in self._free)
        return ConjunctiveQuery(
            free_variables=new_free,
            atoms=[a.rename(mapping) for a in self._atoms],
            negated_atoms=[a.rename(mapping) for a in self._negated],
            disequalities=[d.rename(mapping) for d in self._disequalities],
            existential_variables={mapping.get(v, v) for v in self._existential},
        )

    def without_disequalities(self) -> "ConjunctiveQuery":
        """The CQ/ECQ obtained by dropping every disequality."""
        return ConjunctiveQuery(
            free_variables=self._free,
            atoms=self._atoms,
            negated_atoms=self._negated,
            disequalities=(),
            existential_variables=self._existential
            & frozenset(
                v
                for atom in itertools.chain(self._atoms, self._negated)
                for v in atom.variables
            ),
        )

    def with_all_variables_free(self) -> "ConjunctiveQuery":
        """The quantifier-free variant: every variable becomes free (ordered
        with the original free variables first)."""
        order = list(self._free) + sorted(self._existential)
        return ConjunctiveQuery(
            free_variables=order,
            atoms=self._atoms,
            negated_atoms=self._negated,
            disequalities=self._disequalities,
            existential_variables=(),
        )

    # ----------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self._free == other._free
            and set(self._atoms) == set(other._atoms)
            and set(self._negated) == set(other._negated)
            and set(self._disequalities) == set(other._disequalities)
            and self._existential == other._existential
        )

    def __hash__(self) -> int:
        return hash(
            (
                self._free,
                frozenset(self._atoms),
                frozenset(self._negated),
                frozenset(self._disequalities),
                self._existential,
            )
        )

    def __str__(self) -> str:
        parts = [str(a) for a in self._atoms]
        parts += [str(a) for a in self._negated]
        parts += [str(d) for d in self._disequalities]
        head = f"Ans({', '.join(self._free)})"
        return f"{head} :- {', '.join(parts)}" if parts else head

    def __repr__(self) -> str:
        return (
            f"ConjunctiveQuery(free={list(self._free)}, atoms={len(self._atoms)}, "
            f"negated={len(self._negated)}, disequalities={len(self._disequalities)}, "
            f"class={self.query_class().value})"
        )
