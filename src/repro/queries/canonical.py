"""Canonical query forms: renaming-insensitive serialisations of queries.

The prepared-query cache (:mod:`repro.queries.prepared`) and the service's
plan/result caches key on the canonical form of a query.  Correctness of a
cache hit requires that two queries mapping to the same key provably have the
same answer set:

:func:`canonical_query_key` serialises a query after renaming its variables
to a canonical alphabet.  Free variables are renamed positionally (answers
are tuples ordered by free-variable position, so positional renaming
preserves the answer *set*, not just its size); existential variables are
ordered by an iterated occurrence-signature refinement with the original
name as the final tie-break.  Alpha-equivalent queries therefore usually
share a key (always, when the refinement separates the existential
variables), and — the direction correctness depends on — two queries with
the same key are always alpha-equivalent, because the key is a complete
serialisation of the renamed query.

(The database-side cache keys pairing a structure's identity token with its
per-relation version counters live in :mod:`repro.service.keys`, which also
re-exports this module's functions under their historical import path.)
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.queries.query import ConjunctiveQuery

#: How many rounds of signature refinement to run when canonically ordering
#: existential variables.  Occurrence signatures stabilise quickly on the
#: small queries the paper's parameterised algorithms target.
_REFINEMENT_ROUNDS = 3


def _initial_signatures(query: ConjunctiveQuery) -> Dict[str, Tuple]:
    """Occurrence signature of every variable: where (relation, position,
    polarity) it appears, how many disequalities touch it, and whether it is
    free (free variables additionally carry their position)."""
    free_positions = {v: i for i, v in enumerate(query.free_variables)}
    occurrences: Dict[str, List[Tuple]] = {v: [] for v in query.variables}
    for atom in query.atoms:
        for position, variable in enumerate(atom.args):
            occurrences[variable].append(("+", atom.relation, position))
    for atom in query.negated_atoms:
        for position, variable in enumerate(atom.args):
            occurrences[variable].append(("-", atom.relation, position))
    for disequality in query.disequalities:
        occurrences[disequality.left].append(("!=",))
        occurrences[disequality.right].append(("!=",))
    return {
        variable: (
            ("free", free_positions[variable]) if variable in free_positions else ("ex",),
            tuple(sorted(occurrences[variable])),
        )
        for variable in query.variables
    }


def _refine_signatures(
    query: ConjunctiveQuery, signatures: Dict[str, Tuple]
) -> Dict[str, Tuple]:
    """One round of refinement: extend each variable's signature with the
    sorted signatures of the variables it co-occurs with."""
    neighbours: Dict[str, List[Tuple]] = {v: [] for v in signatures}
    for atom in itertools.chain(query.atoms, query.negated_atoms):
        for variable in atom.args:
            neighbours[variable].extend(
                signatures[other] for other in atom.args if other != variable
            )
    for disequality in query.disequalities:
        neighbours[disequality.left].append(signatures[disequality.right])
        neighbours[disequality.right].append(signatures[disequality.left])
    return {
        variable: (signatures[variable], tuple(sorted(neighbours[variable])))
        for variable in signatures
    }


def canonical_variable_renaming(query: ConjunctiveQuery) -> Dict[str, str]:
    """The canonical renaming: free variables become ``f0, f1, ...`` in
    positional order, existential variables become ``e0, e1, ...`` ordered by
    refined occurrence signature (original name as the deterministic
    tie-break)."""
    signatures = _initial_signatures(query)
    for _ in range(_REFINEMENT_ROUNDS):
        signatures = _refine_signatures(query, signatures)
    renaming = {variable: f"f{i}" for i, variable in enumerate(query.free_variables)}
    existential = sorted(
        query.existential_variables, key=lambda v: (signatures[v], str(v))
    )
    renaming.update({variable: f"e{i}" for i, variable in enumerate(existential)})
    return renaming


def canonical_query_key(
    query: ConjunctiveQuery, renaming: Optional[Dict[str, str]] = None
) -> str:
    """A complete, renaming-insensitive serialisation of the query, suitable
    as a cache key.  ``renaming`` may be passed in when the caller already
    computed :func:`canonical_variable_renaming` (the prepared-query layer
    keeps both)."""
    if renaming is None:
        renaming = canonical_variable_renaming(query)
    atoms = sorted(
        f"{atom.relation}({','.join(renaming[v] for v in atom.args)})"
        for atom in query.atoms
    )
    negated = sorted(
        f"!{atom.relation}({','.join(renaming[v] for v in atom.args)})"
        for atom in query.negated_atoms
    )
    disequalities = sorted(
        "{}!={}".format(*sorted((renaming[d.left], renaming[d.right])))
        for d in query.disequalities
    )
    head = ",".join(renaming[v] for v in query.free_variables)
    return f"Ans({head}):-" + ";".join(itertools.chain(atoms, negated, disequalities))


def query_relation_names(query: ConjunctiveQuery) -> Tuple[str, ...]:
    """Every relation symbol the query's answers can depend on."""
    return tuple(sorted(symbol.name for symbol in query.signature()))
