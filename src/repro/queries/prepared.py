"""The :class:`PreparedQuery` compilation layer: compile once, count many.

Every algorithm of the paper consumes per-*query* artifacts — the hypergraph
``H(phi)`` (Definition 3), its width profile (treewidth / hypertreewidth /
fractional hypertreewidth / adaptive width, Figure 1), and, for the Theorem-16
FPRAS, an fhw-optimal tree decomposition made nice (Lemmas 43/52).  These
artifacts depend only on the query's *shape*, never on the database, yet the
seed code recomputed them in four places (``classify_query``, the planner,
``fptras_count_*`` and ``fpras_count_cq``) on every call.

:class:`PreparedQuery` is the compiled form of one query shape:

* every artifact is **lazily memoised** — computed on first access, with
  per-artifact compute/hit counters so tests and benches can assert the
  "at most once per canonical query per process" contract;
* prepared queries are shared through a **process-wide LRU** keyed on the
  canonical query form (:func:`repro.queries.canonical.canonical_query_key`),
  so alpha-renamed copies of a query share one entry and one artifact set;
* variable-named artifacts (the decompositions) are stored in the variable
  space of the representative query (the first one prepared) and translated
  to any alpha-equivalent query's variables on demand — width *numbers* are
  renaming-invariant and shared as-is.

Consumers: the counting schemes accept a ``prepared=`` argument (and call
:func:`prepare` themselves when not given one), the planner and
``classify_query`` read the shared width profile, and
:class:`repro.core.registry.SchemeRegistry` dispatches every scheme over
prepared queries.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional, Tuple

from repro.decomposition.adaptive import (
    AdaptiveWidthEstimate,
    estimate_adaptive_width,
)
from repro.decomposition.f_width import EXACT_F_WIDTH_LIMIT
from repro.decomposition.fractional import fractional_hypertreewidth_decomposition
from repro.decomposition.hypertree import generalized_hypertreewidth
from repro.decomposition.nice import NiceTreeDecomposition, make_nice
from repro.decomposition.tree_decomposition import TreeDecomposition
from repro.decomposition.treewidth import exact_treewidth, treewidth_upper_bound
from repro.decomposition.widths import WidthProfile
from repro.hypergraph import Hypergraph
from repro.queries.canonical import canonical_query_key, canonical_variable_renaming
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.util.cache import CacheStats, LRUCache
from repro.util.rng import RNGLike

#: Default capacity of the process-wide prepared-query cache.  Each entry is
#: one query *shape* (a few decomposition nodes and width numbers), so the
#: footprint is small even at capacity.
DEFAULT_PREPARED_CACHE_SIZE = 256

#: How many *translated* decompositions (one per distinct variable renaming
#: of an alpha-equivalent caller) each prepared query memoises.  Beyond this,
#: translations are still served — recomputed from the stored decomposition,
#: a cheap rename — but not stored, so a long-running stream of fresh
#: renamings cannot grow a shape's memo without bound.
TRANSLATED_MEMO_LIMIT = 32


class PreparedQuery:
    """Compiled, shareable artifacts of one query shape.

    Construct via :func:`prepare` (which shares instances across
    alpha-renamed queries through the process-wide cache); constructing
    directly yields a private, uncached instance — the benches use that to
    measure the uncached cost.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        canonical_key: Optional[str] = None,
        renaming: Optional[Dict[str, str]] = None,
    ) -> None:
        self._query = query
        if renaming is None:
            renaming = canonical_variable_renaming(query)
        #: representative variable -> canonical name (f0..., e0...).
        self._renaming = renaming
        self._canonical_key = canonical_key or canonical_query_key(
            query, renaming=renaming
        )
        self._query_class = query.query_class()
        self._lock = threading.RLock()
        self._memo: Dict[Any, Any] = {}
        self._counters: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------ memoisation
    def _get(self, name: str, key: Any, compute: Callable[[], Any]) -> Any:
        """Lazily compute and memoise one artifact, counting computes/hits.

        ``key`` extends ``name`` for artifacts parameterised beyond the query
        shape (e.g. translated decompositions, one per variable renaming);
        counters aggregate per ``name``.
        """
        with self._lock:
            counter = self._counters.setdefault(name, {"computes": 0, "hits": 0})
            if key in self._memo:
                counter["hits"] += 1
                return self._memo[key]
            value = compute()
            self._memo[key] = value
            counter["computes"] += 1
            return value

    def artifact_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-artifact ``{"computes": ..., "hits": ...}`` counters (the
        compile-once contract is ``computes <= 1`` for every shape-determined
        artifact)."""
        with self._lock:
            return {name: dict(counts) for name, counts in self._counters.items()}

    # ----------------------------------------------------------------- access
    @property
    def query(self) -> ConjunctiveQuery:
        """The representative query (the first one prepared for this shape)."""
        return self._query

    @property
    def canonical_key(self) -> str:
        """The canonical form shared by every alpha-renamed copy."""
        return self._canonical_key

    @property
    def query_class(self) -> QueryClass:
        return self._query_class

    def __repr__(self) -> str:
        return (
            f"PreparedQuery(class={self._query_class.value}, "
            f"key={self._canonical_key!r})"
        )

    # -------------------------------------------------- shape-level artifacts
    def hypergraph(self) -> Hypergraph:
        """``H(phi)`` of the representative query (Definition 3)."""
        return self._get("hypergraph", "hypergraph", self._query.hypergraph)

    def signature_arity(self) -> int:
        """``ar(sig(phi))``: the maximum relation arity (Theorem 5's ``a``)."""
        return self._get("signature_arity", "signature_arity", self._query.arity)

    def hypergraph_arity(self) -> int:
        """The hypergraph arity (maximum hyperedge size) of ``H(phi)``."""
        return self.hypergraph().arity()

    def treewidth(self) -> int:
        """``tw(H(phi))`` — exact on hypergraphs with at most
        :data:`EXACT_F_WIDTH_LIMIT` vertices, a greedy upper bound beyond."""
        return self._get("treewidth", "treewidth", self._compute_treewidth)[0]

    def treewidth_is_exact(self) -> bool:
        """Whether :meth:`treewidth` is the exact treewidth (as opposed to a
        greedy upper bound); bound checks must not *reject* on upper bounds."""
        return self._get("treewidth", "treewidth", self._compute_treewidth)[1]

    def _compute_treewidth(self) -> Tuple[int, bool]:
        hypergraph = self.hypergraph()
        n = hypergraph.num_vertices()
        if n == 0:
            return -1, True
        if n <= EXACT_F_WIDTH_LIMIT:
            return exact_treewidth(hypergraph), True
        return treewidth_upper_bound(hypergraph), False

    def hypertreewidth(self) -> Tuple[float, bool]:
        """``(hw(H(phi)), exact?)`` (generalized hypertreewidth)."""
        return self._get(
            "hypertreewidth",
            "hypertreewidth",
            lambda: generalized_hypertreewidth(self.hypergraph()),
        )

    def fhw_decomposition(self) -> Tuple[TreeDecomposition, float, bool]:
        """The Lemma-43 input: a tree decomposition (approximately) minimising
        fractional hypertreewidth, the achieved fhw, and whether it is exact —
        in the representative query's variable space."""
        return self._get(
            "fhw_decomposition",
            "fhw_decomposition",
            lambda: fractional_hypertreewidth_decomposition(self.hypergraph()),
        )

    def fractional_hypertreewidth(self) -> Tuple[float, bool]:
        """``(fhw(H(phi)), exact?)``."""
        _, width, is_exact = self.fhw_decomposition()
        return width, is_exact

    def adaptive_width_upper(self) -> Optional[float]:
        """The fhw-based upper bound on the adaptive width used by the
        Theorem-13 bound check (``aw <= fhw``, Lemma 12); ``None`` beyond the
        exact-width regime, mirroring the historical ``fptras_count_dcq``
        behaviour (a heuristic fhw upper bound proves nothing about aw)."""
        if self.hypergraph().num_vertices() > EXACT_F_WIDTH_LIMIT:
            return None
        return self.fractional_hypertreewidth()[0]

    def adaptive_width_estimate(self, rng: RNGLike = None) -> AdaptiveWidthEstimate:
        """Bracketing estimate of ``aw(H(phi))`` (Definition 33).  Memoised on
        first use: the sampled lower bound of the first caller's ``rng`` is
        reused by everyone (the upper bound — all the algorithms need — is
        deterministic)."""
        return self._get(
            "adaptive_width_estimate",
            "adaptive_width_estimate",
            lambda: self._compute_adaptive_estimate(rng),
        )

    def _compute_adaptive_estimate(self, rng: RNGLike) -> AdaptiveWidthEstimate:
        hypergraph = self.hypergraph()
        n = hypergraph.num_vertices()
        if 0 < n <= EXACT_F_WIDTH_LIMIT or n == 0:
            return estimate_adaptive_width(hypergraph, samples=8, rng=rng)
        return AdaptiveWidthEstimate(
            lower_bound=0.0, upper_bound=self.fractional_hypertreewidth()[0]
        )

    def width_profile(self, rng: RNGLike = None) -> WidthProfile:
        """The full :class:`~repro.decomposition.widths.WidthProfile`, built
        from the individually memoised widths (same values as
        :func:`repro.decomposition.widths.width_profile` on ``H(phi)``)."""
        return self._get(
            "width_profile", "width_profile", lambda: self._compute_profile(rng)
        )

    def _compute_profile(self, rng: RNGLike) -> WidthProfile:
        hypergraph = self.hypergraph()
        hypertreewidth, hw_exact = self.hypertreewidth()
        fhw, fhw_exact = self.fractional_hypertreewidth()
        return WidthProfile(
            num_vertices=hypergraph.num_vertices(),
            num_edges=hypergraph.num_edges(),
            arity=hypergraph.arity(),
            treewidth=int(self.treewidth()),
            treewidth_exact=self.treewidth_is_exact(),
            hypertreewidth=float(hypertreewidth),
            hypertreewidth_exact=hw_exact,
            fractional_hypertreewidth=float(fhw),
            fractional_hypertreewidth_exact=fhw_exact,
            adaptive_width=self.adaptive_width_estimate(rng),
        )

    def classification(self, rng: RNGLike = None):
        """The Figure-1 instance report
        (:class:`repro.core.dichotomy.QueryReport`) over the shared width
        profile, memoised."""

        def compute():
            # Imported lazily: repro.core.dichotomy imports this module.
            from repro.core.dichotomy import classify_query

            return classify_query(self._query, profile=self.width_profile(rng))

        return self._get("classification", "classification", compute)

    # ------------------------------------------- caller-variable translations
    def renaming_for(self, query: ConjunctiveQuery) -> Optional[Dict[str, str]]:
        """The map *representative variable -> ``query`` variable* witnessing
        alpha-equivalence, or ``None`` when the names already coincide.

        Raises ``ValueError`` if ``query`` does not share this prepared
        query's canonical form (the two are then not known to be
        alpha-equivalent and no translation exists).
        """
        if query is self._query:
            return None
        other = canonical_variable_renaming(query)
        if canonical_query_key(query, renaming=other) != self._canonical_key:
            raise ValueError(
                "query does not match this prepared query's canonical form"
            )
        if other == self._renaming:
            return None
        inverse = {canonical: variable for variable, canonical in other.items()}
        return {
            variable: inverse[canonical]
            for variable, canonical in self._renaming.items()
        }

    def nice_decomposition(self) -> NiceTreeDecomposition:
        """The nice tree decomposition (Lemma 43) of the fhw-optimal
        decomposition, in the representative query's variable space."""
        return self._get(
            "nice_decomposition",
            "nice_decomposition",
            lambda: make_nice(self.fhw_decomposition()[0], self.hypergraph()),
        )

    def nice_decomposition_for(
        self, query: ConjunctiveQuery
    ) -> NiceTreeDecomposition:
        """The nice decomposition translated into ``query``'s variable names
        (``query`` must be alpha-equivalent); translations are memoised per
        renaming (at most :data:`TRANSLATED_MEMO_LIMIT` stored — beyond that
        they are recomputed per call, a cheap rename), and the identity
        renaming shares the stored object."""
        renaming = self.renaming_for(query)
        if renaming is None:
            return self.nice_decomposition()
        key = ("nice_translated", tuple(sorted(renaming.items())))
        with self._lock:
            counter = self._counters.setdefault(
                "nice_translated", {"computes": 0, "hits": 0}
            )
            if key in self._memo:
                counter["hits"] += 1
                return self._memo[key]
            value = self.nice_decomposition().rename_vertices(renaming)
            counter["computes"] += 1
            stored = sum(
                1
                for memo_key in self._memo
                if isinstance(memo_key, tuple)
                and memo_key
                and memo_key[0] == "nice_translated"
            )
            if stored < TRANSLATED_MEMO_LIMIT:
                self._memo[key] = value
            return value


# ----------------------------------------------------------- process-wide LRU
_PREPARED_CACHE = LRUCache(DEFAULT_PREPARED_CACHE_SIZE)
_PREPARE_LOCK = threading.Lock()


def prepare(query) -> PreparedQuery:
    """Compile ``query`` (or return its cached compilation).

    Idempotent on prepared queries: ``prepare(prepared)`` returns its
    argument.  Alpha-renamed copies of a query share one cache entry — the
    canonical query form is the key — and therefore one artifact set.
    """
    if isinstance(query, PreparedQuery):
        return query
    renaming = canonical_variable_renaming(query)
    key = canonical_query_key(query, renaming=renaming)
    prepared = _PREPARED_CACHE.get(key)
    if prepared is None:
        with _PREPARE_LOCK:
            prepared = _PREPARED_CACHE.peek(key)
            if prepared is None:
                prepared = PreparedQuery(query, canonical_key=key, renaming=renaming)
            _PREPARED_CACHE.put(key, prepared)
    return prepared


def prepared_cache_stats() -> CacheStats:
    """Hit/miss/eviction statistics of the process-wide prepared cache."""
    return _PREPARED_CACHE.stats()


def clear_prepared_cache() -> None:
    """Drop every cached prepared query (tests and benches use this to
    measure cold-start behaviour; statistics are preserved)."""
    _PREPARED_CACHE.clear()
