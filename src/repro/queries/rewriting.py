"""Query rewritings.

* :func:`eliminate_equalities` — the paper's w.l.o.g. step: an ECQ with
  equalities is rewritten by unifying equal variables into a single
  representative, so algorithms never see equality atoms.  If an equality
  forces two *distinct free* variables together the construction keeps both
  free variables distinct in the head and raises (the paper's model does not
  allow repeated head variables); callers should merge head variables
  themselves in that case.
* :func:`add_constant_constraint` — the "constants via singleton unary
  relations" trick of Section 1.1: to constrain a variable to a constant
  ``v``, add a fresh unary relation ``R_v = {v}`` to the database and the atom
  ``R_v(x)`` to the query.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.queries.atoms import Atom, Disequality, Equality, NegatedAtom, Variable
from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Structure


class _UnionFind:
    """Union-find over variable names with deterministic representatives."""

    def __init__(self) -> None:
        self._parent: Dict[Variable, Variable] = {}

    def find(self, item: Variable) -> Variable:
        self._parent.setdefault(item, item)
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Variable, b: Variable) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def redirect_to(self, preferred: Iterable[Variable]) -> Dict[Variable, Variable]:
        """Mapping from every seen variable to its class representative,
        preferring representatives from ``preferred`` (e.g. free variables)."""
        preferred = list(preferred)
        classes: Dict[Variable, List[Variable]] = {}
        for variable in list(self._parent):
            classes.setdefault(self.find(variable), []).append(variable)
        mapping: Dict[Variable, Variable] = {}
        for root, members in classes.items():
            representative = next(
                (v for v in preferred if v in members), sorted(members)[0]
            )
            for member in members:
                mapping[member] = representative
        return mapping


def eliminate_equalities(
    free_variables: Sequence[Variable],
    atoms: Iterable[Atom],
    negated_atoms: Iterable[NegatedAtom] = (),
    disequalities: Iterable[Disequality] = (),
    equalities: Iterable[Equality] = (),
) -> ConjunctiveQuery:
    """Build a :class:`ConjunctiveQuery` with the equalities eliminated by
    variable unification.

    Raises
    ------
    ValueError
        If the equalities force two distinct free variables to coincide (the
        rewritten query could no longer report both output coordinates), or if
        unification makes a disequality of the form ``x != x`` (the query is
        unsatisfiable; the paper's syntax forbids it, so we reject it rather
        than silently producing an always-empty query).
    """
    equalities = list(equalities)
    atoms = list(atoms)
    negated_atoms = list(negated_atoms)
    disequalities = list(disequalities)
    free_variables = list(free_variables)

    if not equalities:
        return ConjunctiveQuery(
            free_variables=free_variables,
            atoms=atoms,
            negated_atoms=negated_atoms,
            disequalities=disequalities,
        )

    union_find = _UnionFind()
    for equality in equalities:
        union_find.union(equality.left, equality.right)
    mapping = union_find.redirect_to(free_variables)

    merged_free = [mapping.get(v, v) for v in free_variables]
    if len(set(merged_free)) != len(merged_free):
        raise ValueError(
            "equalities identify two distinct free variables; merge the head "
            "variables explicitly before parsing"
        )

    new_atoms = [atom.rename(mapping) for atom in atoms]
    new_negated = [atom.rename(mapping) for atom in negated_atoms]
    new_disequalities = []
    for disequality in disequalities:
        left = mapping.get(disequality.left, disequality.left)
        right = mapping.get(disequality.right, disequality.right)
        if left == right:
            raise ValueError(
                f"equalities contradict the disequality {disequality}; the query "
                "would be trivially unsatisfiable"
            )
        new_disequalities.append(Disequality(left, right))

    return ConjunctiveQuery(
        free_variables=merged_free,
        atoms=new_atoms,
        negated_atoms=new_negated,
        disequalities=new_disequalities,
    )


def add_constant_constraint(
    query: ConjunctiveQuery,
    database: Structure,
    variable: Variable,
    constant,
    relation_name: str = None,
) -> Tuple[ConjunctiveQuery, Structure]:
    """Constrain ``variable`` to the constant ``constant`` using a singleton
    unary relation (Section 1.1).

    Returns a new (query, database) pair: the database gains the relation
    ``R_<constant> = {constant}`` (name overridable) and the query gains the
    atom ``R_<constant>(variable)``.
    """
    if variable not in query.variables:
        raise ValueError(f"{variable!r} is not a variable of the query")
    if constant not in database.universe:
        raise ValueError(f"{constant!r} is not an element of the database universe")
    if relation_name is None:
        relation_name = f"R_const_{constant}"
    new_database = database.with_unary_relation(relation_name, [constant])
    new_query = ConjunctiveQuery(
        free_variables=query.free_variables,
        atoms=list(query.atoms) + [Atom(relation_name, (variable,))],
        negated_atoms=query.negated_atoms,
        disequalities=query.disequalities,
        existential_variables=query.existential_variables,
    )
    return new_query, new_database
