"""Conjunctive queries and their extensions (Section 1.1).

* CQ — conjunctive query: conjunction of relational atoms with free and
  existentially quantified variables.
* DCQ — CQ extended with disequalities ``x != y``.
* ECQ — CQ extended with disequalities and negated atoms ``not R(...)``
  (equalities are allowed in the input but rewritten away, as in the paper).

The model lives in :mod:`repro.queries.query`, a small text parser in
:mod:`repro.queries.parser`, and programmatic builders for the query families
used throughout the paper (Hamiltonian path, locally injective homomorphisms,
star queries, ...) in :mod:`repro.queries.builders`.
"""

from repro.queries.atoms import Atom, Disequality, Equality, NegatedAtom
from repro.queries.canonical import canonical_query_key, canonical_variable_renaming
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.queries.parser import parse_query
from repro.queries.prepared import (
    PreparedQuery,
    clear_prepared_cache,
    prepare,
    prepared_cache_stats,
)
from repro.queries.rewriting import eliminate_equalities, add_constant_constraint
from repro.queries.builders import (
    clique_query,
    common_neighbour_query,
    cycle_query,
    friends_query,
    grid_query,
    hamiltonian_path_query,
    high_arity_acyclic_query,
    path_query,
    star_query,
    tree_query,
)

__all__ = [
    "Atom",
    "NegatedAtom",
    "Disequality",
    "Equality",
    "ConjunctiveQuery",
    "QueryClass",
    "PreparedQuery",
    "prepare",
    "prepared_cache_stats",
    "clear_prepared_cache",
    "canonical_query_key",
    "canonical_variable_renaming",
    "parse_query",
    "eliminate_equalities",
    "add_constant_constraint",
    "path_query",
    "star_query",
    "clique_query",
    "cycle_query",
    "common_neighbour_query",
    "friends_query",
    "grid_query",
    "hamiltonian_path_query",
    "high_arity_acyclic_query",
    "tree_query",
]
