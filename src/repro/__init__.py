"""repro — reproduction of "Approximately Counting Answers to Conjunctive Queries
with Disequalities and Negations" (Focke, Goldberg, Roth, Živný, PODS 2022).

The package implements, from scratch:

* a hypergraph and (hyper)tree-decomposition substrate, including treewidth,
  hypertreewidth, fractional hypertreewidth and adaptive width,
* relational signatures, structures/databases and a homomorphism (CSP) engine,
* conjunctive queries with disequalities and negations (CQ / DCQ / ECQ),
* the paper's approximation schemes:
    - the FPTRAS for bounded-treewidth, bounded-arity ECQs (Theorem 5),
    - the FPTRAS for bounded-adaptive-width DCQs (Theorem 13),
    - the FPRAS for bounded-fractional-hypertreewidth CQs (Theorem 16),
  together with the Dell–Lapinskas–Meeks oracle framework, colour coding and
  the tree-automaton reduction they rely on,
* exact counting baselines, approximate uniform sampling, unions of queries,
  the locally-injective-homomorphism application, and the Figure-1 dichotomy
  classifier,
* a compile-once/count-many layer: :func:`prepare` turns a query into a
  :class:`PreparedQuery` (canonical form + lazily memoised widths and
  decompositions, shared process-wide across alpha-renamed copies) and
  :data:`repro.core.REGISTRY` dispatches every counting scheme through one
  uniform envelope,
* a serving layer (:mod:`repro.service`): an explainable query planner over
  all of the above schemes, plan/result caches keyed on canonical query forms
  and database version counters, and a :class:`CountingService` that executes
  batches of queries in parallel with deterministic per-task seeding,
* a streaming layer (:mod:`repro.stream`): ``CountingService.subscribe``
  returns live count handles that survive database mutations —
  untouched-relation updates are free, touched-relation updates are
  delta-patched through the change log (exact schemes, bit-identical to a
  recount) or re-estimated with derived seeds (approximate schemes), under
  eager / debounced / budget refresh policies.

Quickstart
----------
>>> from repro import parse_query, Database, approx_count_answers
>>> db = Database.from_relations({"E": [(1, 2), (2, 3), (1, 3)]})
>>> q = parse_query("Ans(x) :- E(x, y), E(x, z), y != z")
>>> approx_count_answers(q, db, epsilon=0.2, delta=0.05, seed=0)
1
"""

from repro.queries import (
    Atom,
    ConjunctiveQuery,
    Disequality,
    NegatedAtom,
    PreparedQuery,
    parse_query,
    prepare,
)
from repro.relational import Database, Signature, Structure
from repro.core import (
    approx_count_answers,
    count_answers_exact,
    classify_query,
    fpras_count_cq,
    fptras_count_dcq,
    fptras_count_ecq,
)
from repro.sampling import sample_answers
from repro.service import CountingService, ServiceConfig
from repro.unions import approx_count_union

__all__ = [
    "Atom",
    "NegatedAtom",
    "Disequality",
    "ConjunctiveQuery",
    "PreparedQuery",
    "prepare",
    "parse_query",
    "Signature",
    "Structure",
    "Database",
    "approx_count_answers",
    "count_answers_exact",
    "classify_query",
    "fptras_count_ecq",
    "fptras_count_dcq",
    "fpras_count_cq",
    "sample_answers",
    "approx_count_union",
    "CountingService",
    "ServiceConfig",
]

__version__ = "1.0.0"
