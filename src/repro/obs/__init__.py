"""`repro.obs`: observability for the counting pipeline.

Three stdlib-only building blocks (no imports from the rest of the package,
so every layer can instrument itself cycle-free):

* :mod:`repro.obs.trace` — lightweight span tracing.  ``with span("..."):``
  blocks build a tree on the context's active :class:`~repro.obs.trace.Tracer`;
  spans are pickle-friendly, survive process-pool workers, and dump as JSON
  lines (the CLI's ``--trace``).  A shared no-op span makes disabled tracing
  near-free.
* :mod:`repro.obs.metrics` — a :class:`~repro.obs.metrics.MetricsRegistry`
  of counters, gauges and fixed-bucket histograms (interpolated p50/p95/p99),
  plus pull-collectors absorbing the scattered cache/breaker/subscription
  ``stats()`` behind one ``snapshot()`` and one Prometheus-style text
  exposition (the CLI's ``--metrics``).
* :mod:`repro.obs.profile` — per-(canonical form, fingerprint class, scheme)
  latency/size sketches recorded on every execution: the observed-cost feed
  for the adaptive planner (ROADMAP item 4), surfaced in
  ``QueryPlan.explain()``'s "observed" section and persisted via
  ``to_json``/``from_json``.

The telemetry contract (enforced by ``tests/test_obs.py``): recording spans,
metrics or profiles never touches seeds or RNG state — estimates are
bit-identical with telemetry on or off, across serial/thread/process
back-ends and under fault injection.

See DESIGN.md ("Telemetry") for the span taxonomy and metric names.
"""

from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profile import ProfileStore, SchemeProfile, fingerprint_class
from repro.obs.trace import (
    NOOP_SPAN,
    Span,
    Tracer,
    activate,
    attach,
    current_span,
    current_tracer,
    span,
    tracing_active,
)

__all__ = [
    "Span",
    "Tracer",
    "span",
    "activate",
    "attach",
    "current_span",
    "current_tracer",
    "tracing_active",
    "NOOP_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "ProfileStore",
    "SchemeProfile",
    "fingerprint_class",
]
