"""Per-(canonical form, fingerprint class, scheme) cost profiles.

ROADMAP item 4 — the observed-cost adaptive planner — needs a durable,
structured record of what each scheme *actually* cost on each query shape at
each database scale, next to the Figure-1 dichotomy's prediction.  This
module is that data feed:

* a **fingerprint class** buckets database sizes logarithmically
  (``size.bit_length()``), so runs over same-order-of-magnitude databases
  share one profile while 1k vs 1M stay separate — the granularity at which
  the exact-vs-approximate tradeoff actually moves;
* a :class:`SchemeProfile` is a constant-memory latency/size sketch — run
  count, latency histogram (p50/p95/p99 via
  :class:`~repro.obs.metrics.Histogram`), mean database size and mean
  estimate magnitude — recorded on **every** execution by the service;
* a :class:`ProfileStore` holds the sketches keyed by
  ``(canonical_key, fingerprint_class, scheme, engine)`` — the engine label
  keeps "fpras_cq on the columnar engine" separate from "fpras_cq on the
  indexed engine", which is exactly the cost difference the planner's
  columnar-upgrade threshold wants to learn — serves the planner's
  ``QueryPlan.observed`` section (:meth:`summary`), and persists via
  :meth:`to_json`/:meth:`from_json` so observations survive process
  restarts (version-1 snapshots load with engine defaulted to
  ``"indexed"``).

Recording never touches RNG state.  The store carries a monotone
:attr:`~ProfileStore.version` bumped on every mutation: the adaptive planner
keys its plan cache on it, so a plan computed from one profile snapshot is
never served after the snapshot moved (plans stay a pure function of
(request, profile snapshot, config)).
"""

from __future__ import annotations

import json
import threading
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import Histogram

__all__ = ["SchemeProfile", "ProfileStore", "fingerprint_class"]

#: Histogram edges for scheme latencies inside a profile sketch (10us–30s).
_PROFILE_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.001, 0.01, 0.1, 1.0, 10.0, 30.0,
)


def fingerprint_class(database_size: int) -> int:
    """The log2 size bucket a database falls in (0 for empty databases)."""
    return max(0, int(database_size)).bit_length()


@dataclass
class SchemeProfile:
    """The latency/size sketch of one (canonical form, size bucket, scheme)."""

    runs: int = 0
    latency: Histogram = field(default_factory=lambda: Histogram(_PROFILE_BUCKETS))
    total_database_size: float = 0.0
    total_estimate_magnitude: float = 0.0

    def record(
        self, seconds: float, database_size: int, estimate: Optional[float] = None
    ) -> None:
        self.runs += 1
        self.latency.observe(seconds)
        self.total_database_size += float(database_size)
        if estimate is not None:
            self.total_estimate_magnitude += abs(float(estimate))

    def summary(self) -> Dict[str, Any]:
        runs = max(1, self.runs)
        return {
            "runs": self.runs,
            "mean_seconds": round(self.latency.mean, 9),
            "p50_seconds": round(self.latency.quantile(0.50), 9),
            "p95_seconds": round(self.latency.quantile(0.95), 9),
            "p99_seconds": round(self.latency.quantile(0.99), 9),
            "max_seconds": round(self.latency.maximum or 0.0, 9),
            "mean_database_size": round(self.total_database_size / runs, 2),
            "mean_estimate_magnitude": round(self.total_estimate_magnitude / runs, 4),
        }

    def to_dict(self) -> Dict[str, Any]:
        return {
            "runs": self.runs,
            "total_database_size": self.total_database_size,
            "total_estimate_magnitude": self.total_estimate_magnitude,
            "latency": {
                "boundaries": list(self.latency.boundaries),
                "bucket_counts": list(self.latency.bucket_counts),
                "count": self.latency.count,
                "sum": self.latency.total,
                "min": self.latency.minimum,
                "max": self.latency.maximum,
            },
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SchemeProfile":
        sketch = payload.get("latency", {})
        histogram = Histogram(tuple(sketch.get("boundaries", _PROFILE_BUCKETS)))
        counts = sketch.get("bucket_counts")
        if counts:
            # Tolerate truncated/overlong snapshots (hand-edited files,
            # partial writes): missing trailing buckets are zero, surplus
            # mass folds into the overflow bucket — count/sum stay the
            # authoritative totals either way.
            slots = len(histogram.bucket_counts)
            for position, value in enumerate(counts):
                histogram.bucket_counts[min(position, slots - 1)] += int(value)
        histogram.count = int(sketch.get("count", 0))
        histogram.total = float(sketch.get("sum", 0.0))
        histogram.minimum = sketch.get("min")
        histogram.maximum = sketch.get("max")
        profile = cls(
            runs=int(payload.get("runs", 0)),
            latency=histogram,
            total_database_size=float(payload.get("total_database_size", 0.0)),
            total_estimate_magnitude=float(payload.get("total_estimate_magnitude", 0.0)),
        )
        return profile


class ProfileStore:
    """All profile sketches of one service (or one persisted snapshot)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._profiles: Dict[Tuple[str, int, str, str], SchemeProfile] = {}
        self._version = 0
        self._merge_drops = 0

    def __len__(self) -> int:
        return len(self._profiles)

    @property
    def version(self) -> int:
        """Monotone mutation counter: bumped on every :meth:`record` and
        :meth:`merge`.  The adaptive planner includes it in its plan-cache
        key, so cached plans never outlive the snapshot they were predicted
        from."""
        return self._version

    def record(
        self,
        canonical_key: str,
        database_size: int,
        scheme: str,
        seconds: float,
        estimate: Optional[float] = None,
        engine: str = "indexed",
    ) -> None:
        """Fold one execution into the matching sketch (creating it).

        The whole fold happens under the store lock: the sketch's ``runs``
        and size/magnitude totals are plain ``+=`` updates, so mutating them
        outside the lock would let concurrent thread-backend requests lose
        increments (the histogram's own lock protects only the histogram).
        """
        key = (canonical_key, fingerprint_class(database_size), scheme, engine)
        with self._lock:
            profile = self._profiles.get(key)
            if profile is None:
                profile = self._profiles[key] = SchemeProfile()
            profile.record(seconds, database_size, estimate)
            self._version += 1

    def get(
        self,
        canonical_key: str,
        database_size: int,
        scheme: str,
        engine: str = "indexed",
    ) -> Optional[SchemeProfile]:
        return self._profiles.get(
            (canonical_key, fingerprint_class(database_size), scheme, engine)
        )

    def summary(self, canonical_key: str, database_size: int) -> Dict[str, Any]:
        """Every scheme's observed costs for this canonical form in this
        size bucket — the payload ``QueryPlan.observed`` carries into
        ``explain()``.  Empty dict when nothing was observed yet."""
        bucket = fingerprint_class(database_size)
        with self._lock:
            matching = {
                (scheme, engine): profile
                for (key, klass, scheme, engine), profile in self._profiles.items()
                if key == canonical_key and klass == bucket
            }
        if not matching:
            return {}
        # Keep the payload keyed by the bare scheme name when only one engine
        # was observed for it (the common case, and the shape version-1
        # consumers expect); disambiguate with "scheme@engine" otherwise.
        engines_per_scheme: Dict[str, int] = {}
        for scheme, _ in matching:
            engines_per_scheme[scheme] = engines_per_scheme.get(scheme, 0) + 1
        schemes: Dict[str, Any] = {}
        for (scheme, engine), profile in sorted(matching.items()):
            label = scheme if engines_per_scheme[scheme] == 1 else f"{scheme}@{engine}"
            schemes[label] = dict(profile.summary(), engine=engine)
        return {"fingerprint_class": bucket, "schemes": schemes}

    def stats(self) -> Dict[str, Any]:
        """Aggregate store statistics for ``CountingService.stats()``."""
        with self._lock:
            profiles = dict(self._profiles)
        return {
            "entries": len(profiles),
            "runs": sum(profile.runs for profile in profiles.values()),
            "canonical_forms": len({key for key, _, _, _ in profiles}),
            "schemes": sorted({scheme for _, _, scheme, _ in profiles}),
            "engines": sorted({engine for _, _, _, engine in profiles}),
            "version": self._version,
            "merge_drops": self._merge_drops,
        }

    # ----------------------------------------------------------- persistence
    def to_json(self, indent: Optional[int] = None) -> str:
        with self._lock:
            rows: List[Dict[str, Any]] = [
                {
                    "canonical_key": key,
                    "fingerprint_class": klass,
                    "scheme": scheme,
                    "engine": engine,
                    "profile": profile.to_dict(),
                }
                for (key, klass, scheme, engine), profile in sorted(
                    self._profiles.items()
                )
            ]
        return json.dumps({"version": 2, "profiles": rows}, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ProfileStore":
        payload = json.loads(text)
        store = cls()
        for row in payload.get("profiles", []):
            key = (
                str(row["canonical_key"]),
                int(row["fingerprint_class"]),
                str(row["scheme"]),
                # Version-1 snapshots predate the engine label; everything
                # they recorded ran on the indexed engine.
                str(row.get("engine", "indexed")),
            )
            store._profiles[key] = SchemeProfile.from_dict(row.get("profile", {}))
        return store

    def merge(self, other: "ProfileStore") -> None:
        """Fold another store's sketches in (persisted history + live runs).

        Matching histogram boundaries merge bucket-by-bucket.  Mismatched
        boundaries (a snapshot written by an older build with different
        edges) are **rebucketed**: each source bucket's mass lands in the
        target bucket whose upper edge covers the source bucket's upper
        edge, so ``count``/``sum``/quantiles stay consistent with ``runs``
        instead of silently diverging.  Mass the target's finite buckets
        cannot place (source buckets above the target's last edge, and the
        source's overflow bucket) folds into the target's overflow bucket
        and is tallied in the ``merge_drops`` stat — the count/total are
        still folded, only bucket-level precision was dropped.
        """
        with self._lock:
            for key, profile in other._profiles.items():
                mine = self._profiles.get(key)
                if mine is None:
                    self._profiles[key] = SchemeProfile.from_dict(profile.to_dict())
                    self._version += 1
                    continue
                theirs_hist = profile.latency
                mine_hist = mine.latency
                if mine_hist.boundaries == theirs_hist.boundaries:
                    for position, count in enumerate(theirs_hist.bucket_counts):
                        mine_hist.bucket_counts[position] += count
                else:
                    overflow = len(mine_hist.boundaries)
                    for position, count in enumerate(theirs_hist.bucket_counts):
                        if not count:
                            continue
                        if position < len(theirs_hist.boundaries):
                            upper = theirs_hist.boundaries[position]
                            target = bisect_left(mine_hist.boundaries, upper)
                            if target >= overflow:
                                # Above every finite target bucket.
                                target = overflow
                                self._merge_drops += count
                        else:
                            # Their overflow bucket: correct in ours only if
                            # their last edge reaches at least as high.
                            target = overflow
                            if theirs_hist.boundaries[-1] < mine_hist.boundaries[-1]:
                                self._merge_drops += count
                        mine_hist.bucket_counts[target] += count
                mine_hist.count += theirs_hist.count
                mine_hist.total += theirs_hist.total
                for bound in ("minimum", "maximum"):
                    theirs = getattr(theirs_hist, bound)
                    ours = getattr(mine_hist, bound)
                    if theirs is not None and (
                        ours is None
                        or (bound == "minimum" and theirs < ours)
                        or (bound == "maximum" and theirs > ours)
                    ):
                        setattr(mine_hist, bound, theirs)
                mine.runs += profile.runs
                mine.total_database_size += profile.total_database_size
                mine.total_estimate_magnitude += profile.total_estimate_magnitude
                self._version += 1

    # ----------------------------------------------------------- file helpers
    def save(self, path) -> None:
        """Write this store's snapshot to ``path`` (pretty-printed v2 JSON)."""
        with open(path, "w") as handle:
            handle.write(self.to_json(indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "ProfileStore":
        """Read a snapshot written by :meth:`save` (v1 snapshots load with
        the engine defaulted to ``"indexed"``)."""
        with open(path) as handle:
            return cls.from_json(handle.read())
