"""Lightweight span tracing for the counting pipeline.

A :class:`Span` is a named, timed tree node with free-form attributes and
point-in-time events; a :class:`Tracer` collects root spans.  The pieces are
deliberately tiny and dependency-free (this module imports nothing from the
rest of the package, so every layer — registry, executor, shard, stream —
can instrument itself without import cycles):

* **Context propagation.**  The active tracer and the current span live in
  :mod:`contextvars`, so nested ``with span("..."):`` blocks build the tree
  without threading a handle through every call signature.  Thread-pool and
  process-pool workers start with an empty context; tasks that should be
  traced carry a ``traced`` flag instead, run under a worker-local tracer,
  and their finished span rides back on the task outcome (see
  :meth:`Span.attach` / :func:`attach`).
* **No-op fast path.**  :func:`span` returns a shared immutable no-op
  context manager when no tracer is active — one ``ContextVar.get`` and an
  attribute-free ``with`` block.  Telemetry off means near-zero cost, and
  tracing never touches seeds or RNG state, so estimates are bit-identical
  with tracing on or off (``tests/test_obs.py`` enforces this
  differentially).
* **Pickle-friendly.**  :class:`Span` is a plain dataclass of primitives,
  lists and dicts; it survives the process-pool boundary unchanged and
  reattaches to the parent span on return.
* **Injectable clock.**  ``Tracer(clock=...)`` takes any zero-argument
  monotonic float source (``time.perf_counter`` by default), so tests can
  pin timestamps.

Span dumps are JSON lines — one root span tree per line
(:meth:`Tracer.to_jsonl`) — written by the CLI's ``--trace`` flag and the
chaos harness's artifact upload.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "span",
    "activate",
    "attach",
    "current_span",
    "current_tracer",
    "tracing_active",
]


@dataclass
class Span:
    """One timed operation: name, attributes, events, children.

    ``start``/``end`` are clock readings from the tracer that opened the
    span (monotonic seconds; readings from different processes share no
    epoch, so cross-process trees are ordered by structure, not by
    timestamp).  ``status`` is ``"ok"`` unless the block raised.
    """

    name: str
    start: float = 0.0
    end: Optional[float] = None
    status: str = "ok"
    attrs: Dict[str, Any] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    children: List["Span"] = field(default_factory=list)

    @property
    def seconds(self) -> float:
        """The span's duration (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> "Span":
        """Merge attributes into the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def event(self, note: str, **attrs: Any) -> None:
        """Record a point-in-time note (retry taken, fault absorbed, ...)."""
        entry: Dict[str, Any] = {"note": str(note)}
        if attrs:
            entry.update(attrs)
        self.events.append(entry)

    def attach(self, child: Optional["Span"]) -> None:
        """Adopt ``child`` (e.g. a span unpickled from a pool worker)."""
        if child is not None:
            self.children.append(child)

    def find(self, name: str) -> List["Span"]:
        """Every descendant span (self included) with the given name."""
        found = [self] if self.name == name else []
        for child in self.children:
            found.extend(child.find(name))
        return found

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "name": self.name,
            "start": round(self.start, 9),
            "end": None if self.end is None else round(self.end, 9),
            "seconds": round(self.seconds, 9),
            "status": self.status,
        }
        if self.attrs:
            payload["attrs"] = self.attrs
        if self.events:
            payload["events"] = self.events
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload


class _NoopSpan:
    """The shared do-nothing span returned while tracing is inactive.

    Supports the full :class:`Span` surface the instrumentation points use
    (``set``/``event``/``attach``) so call sites never branch on whether
    tracing is on."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NoopSpan":
        return self

    def event(self, note: str, **attrs: Any) -> None:
        return None

    def attach(self, child: Optional[Span]) -> None:
        return None


NOOP_SPAN = _NoopSpan()

#: The active tracer of the current context (None = tracing off).
_ACTIVE: ContextVar[Optional["Tracer"]] = ContextVar("repro_obs_tracer", default=None)
#: The innermost open span of the current context.
_CURRENT: ContextVar[Optional[Span]] = ContextVar("repro_obs_span", default=None)


class _LiveSpan:
    """Context manager that opens a real span under the active tracer."""

    __slots__ = ("_tracer", "_name", "_attrs", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._span: Optional[Span] = None
        self._token = None

    def __enter__(self) -> Span:
        opened = Span(name=self._name, start=self._tracer.clock(), attrs=self._attrs)
        parent = _CURRENT.get()
        if parent is None:
            self._tracer.roots.append(opened)
        else:
            parent.children.append(opened)
        self._token = _CURRENT.set(opened)
        self._span = opened
        return opened

    def __exit__(self, exc_type, exc, tb) -> bool:
        opened = self._span
        opened.end = self._tracer.clock()
        if exc_type is not None:
            opened.status = "error"
            opened.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        _CURRENT.reset(self._token)
        return False


class Tracer:
    """Collects root spans for one request path (service, worker, CLI run)."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self.roots: List[Span] = []

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a span under *this* tracer regardless of the context."""
        return _LiveSpan(self, name, attrs)

    def clear(self) -> None:
        self.roots = []

    def find(self, name: str) -> List[Span]:
        found: List[Span] = []
        for root in self.roots:
            found.extend(root.find(name))
        return found

    def to_jsonl(self) -> str:
        """One JSON object per line, one line per root span tree."""
        return "\n".join(json.dumps(root.to_dict(), default=str) for root in self.roots)


def span(name: str, **attrs: Any):
    """Open a span on the context's active tracer.

    The disabled fast path — no active tracer — allocates nothing and
    returns the shared :data:`NOOP_SPAN`."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return NOOP_SPAN
    return _LiveSpan(tracer, name, attrs)


@contextmanager
def activate(tracer: Optional[Tracer]) -> Iterator[Optional[Tracer]]:
    """Make ``tracer`` the context's active tracer for the block.

    ``None`` deactivates nothing and costs nothing (so call sites can pass
    an optional tracer through unconditionally).  Re-activating the tracer
    that is already active keeps the current span — nested service calls
    (e.g. a stream refresh submitting through ``count_batch``) nest under
    the caller's span instead of starting a new root."""
    if tracer is None or _ACTIVE.get() is tracer:
        yield tracer
        return
    active_token = _ACTIVE.set(tracer)
    span_token = _CURRENT.set(None)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(active_token)
        _CURRENT.reset(span_token)


def attach(child: Optional[Span]) -> None:
    """Adopt a finished span (typically unpickled from a pool worker) under
    the current span, or as a tracer root when no span is open.  A no-op
    while tracing is inactive."""
    if child is None:
        return
    parent = _CURRENT.get()
    if parent is not None:
        parent.children.append(child)
        return
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.roots.append(child)


def current_span():
    """The innermost open span, or the shared no-op span when none is."""
    opened = _CURRENT.get()
    return NOOP_SPAN if opened is None else opened


def current_tracer() -> Optional[Tracer]:
    return _ACTIVE.get()


def tracing_active() -> bool:
    """Whether a tracer is active in this context (the flag task builders
    copy onto :class:`~repro.service.executor.CountTask` so pool workers —
    which start with an empty context — know to trace themselves)."""
    return _ACTIVE.get() is not None
