"""A process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Before this module the repo's operational numbers were scattered — each
:class:`~repro.util.cache.LRUCache` kept its own ``stats()``, the circuit
breaker its per-rung tallies, the executor its mode counts — and nothing
correlated them.  :class:`MetricsRegistry` is the one sink:

* :class:`Counter` — monotone ``inc()``;
* :class:`Gauge` — ``set()`` to the latest value;
* :class:`Histogram` — fixed bucket boundaries with interpolated
  p50/p95/p99 quantile estimates (constant memory, no sample retention);
* **collectors** — zero-argument callables registered per subsystem
  (cache stats, breaker state, subscription counts) and pulled at
  :meth:`MetricsRegistry.snapshot` time, so existing ``stats()`` providers
  are absorbed without double bookkeeping.

Series are keyed by ``(name, labels)`` — ``registry.counter("executor.batches",
mode="process")`` — and everything lands in one nested
:meth:`~MetricsRegistry.snapshot` dict or one Prometheus-style text
exposition (:meth:`~MetricsRegistry.render_prometheus`, the CLI's
``--metrics`` output).

Like the tracer, this module is stdlib-only and imports nothing from the
rest of the package; recording a metric never touches seeds or RNG state.
All mutation is lock-protected (the thread executor records task latencies
concurrently).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_LATENCY_BUCKETS",
]

#: Default histogram boundaries: latencies from 10us to 30s, roughly
#: geometric — wide enough for a cache hit and a merged-view recount alike.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0000316, 0.0001, 0.000316, 0.001, 0.00316,
    0.01, 0.0316, 0.1, 0.316, 1.0, 3.16, 10.0, 30.0,
)

Labels = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> Labels:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for ups and downs")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down; reports the latest ``set()``."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """A fixed-bucket histogram with interpolated quantile estimates.

    ``boundaries`` are the inclusive upper edges of the finite buckets; one
    implicit overflow bucket catches everything above the last edge.  Memory
    is constant in the number of observations, and :meth:`quantile` linearly
    interpolates within the bucket that crosses the requested rank — the
    usual fixed-bucket p50/p95/p99 estimate (exact values are not retained).
    """

    __slots__ = ("boundaries", "bucket_counts", "count", "total", "minimum", "maximum", "_lock")

    def __init__(self, boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        edges = tuple(float(edge) for edge in boundaries)
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError("histogram boundaries must be non-empty and increasing")
        self.boundaries = edges
        self.bucket_counts = [0] * (len(edges) + 1)  # +1 overflow
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        position = bisect_left(self.boundaries, value)
        with self._lock:
            self.bucket_counts[position] += 1
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (``0 <= q <= 1``); 0.0 when empty.

        Linear interpolation inside the crossing bucket, clamped to the
        observed min/max so estimates never leave the data's range."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for position, bucket_count in enumerate(self.bucket_counts):
            if bucket_count == 0:
                if position < len(self.boundaries):
                    lower = self.boundaries[position]
                continue
            if cumulative + bucket_count >= rank:
                upper = (
                    self.boundaries[position]
                    if position < len(self.boundaries)
                    else (self.maximum if self.maximum is not None else lower)
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, min(1.0, fraction))
                if self.minimum is not None:
                    estimate = max(estimate, self.minimum)
                if self.maximum is not None:
                    estimate = min(estimate, self.maximum)
                return estimate
            cumulative += bucket_count
            if position < len(self.boundaries):
                lower = self.boundaries[position]
        return self.maximum if self.maximum is not None else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "mean": round(self.mean, 9),
            "min": None if self.minimum is None else round(self.minimum, 9),
            "max": None if self.maximum is None else round(self.maximum, 9),
            "p50": round(self.quantile(0.50), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }


class MetricsRegistry:
    """Name+labels -> instrument table with one unified snapshot.

    The module-level :data:`METRICS` is the process-wide default; services
    create their own instance per default (isolating tests and twin
    services) and accept a shared one via ``ServiceConfig.metrics``.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, Labels], Counter] = {}
        self._gauges: Dict[Tuple[str, Labels], Gauge] = {}
        self._histograms: Dict[Tuple[str, Labels], Histogram] = {}
        self._collectors: Dict[str, Callable[[], Any]] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter()
        return instrument

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge()
        return instrument

    def histogram(
        self,
        name: str,
        boundaries: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = Histogram(boundaries)
        return instrument

    def register_collector(self, name: str, collect: Callable[[], Any]) -> None:
        """Register a pull-style stats source (cache, breaker, subscription
        count); re-registering a name replaces the previous collector."""
        with self._lock:
            self._collectors[name] = collect

    # -------------------------------------------------------------- exporters
    @staticmethod
    def _series(instruments: Dict[Tuple[str, Labels], Any], value) -> Dict[str, Dict[str, Any]]:
        series: Dict[str, Dict[str, Any]] = {}
        for (name, labels), instrument in sorted(instruments.items()):
            label_text = ",".join(f"{k}={v}" for k, v in labels)
            series.setdefault(name, {})[label_text] = value(instrument)
        return series

    def snapshot(self) -> Dict[str, Any]:
        """Every series plus every collector's current output, one dict."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            collectors = dict(self._collectors)
        return {
            "counters": self._series(counters, lambda c: c.value),
            "gauges": self._series(gauges, lambda g: g.value),
            "histograms": self._series(histograms, lambda h: h.to_dict()),
            "collected": {name: collect() for name, collect in sorted(collectors.items())},
        }

    def render_prometheus(self) -> str:
        """Prometheus-style text exposition of the full snapshot.

        Counter/gauge series render as ``repro_<name>{labels} value``;
        histograms as ``_count``/``_sum`` plus ``quantile`` series; numeric
        leaves of collected subsystem stats are flattened into gauges (so
        cache hit-rates and breaker failure counts are scrapable too)."""
        lines: List[str] = []
        snapshot = self.snapshot()

        def metric_name(*parts: str) -> str:
            raw = "_".join(part for part in parts if part)
            cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in raw)
            return f"repro_{cleaned}"

        def label_block(label_text: str, extra: str = "") -> str:
            rendered = [
                f'{key}="{value}"'
                for key, _, value in (
                    part.partition("=") for part in label_text.split(",") if part
                )
            ]
            if extra:
                rendered.append(extra)
            return "{" + ",".join(rendered) + "}" if rendered else ""

        for kind, series_by_name in (("counter", snapshot["counters"]), ("gauge", snapshot["gauges"])):
            for name, series in series_by_name.items():
                lines.append(f"# TYPE {metric_name(name)} {kind}")
                for label_text, value in series.items():
                    lines.append(f"{metric_name(name)}{label_block(label_text)} {value:g}")
        for name, series in snapshot["histograms"].items():
            lines.append(f"# TYPE {metric_name(name)} summary")
            for label_text, stats in series.items():
                base = metric_name(name)
                lines.append(f"{base}_count{label_block(label_text)} {stats['count']:g}")
                lines.append(f"{base}_sum{label_block(label_text)} {stats['sum']:g}")
                for quantile, key in (("0.5", "p50"), ("0.95", "p95"), ("0.99", "p99")):
                    block = label_block(label_text, f'quantile="{quantile}"')
                    lines.append(f"{base}{block} {stats[key]:g}")

        def flatten(prefix: str, payload: Any) -> None:
            if isinstance(payload, dict):
                for key, value in sorted(payload.items()):
                    flatten(f"{prefix}_{key}" if prefix else str(key), value)
            elif isinstance(payload, bool):
                lines.append(f"{metric_name(prefix)} {int(payload)}")
            elif isinstance(payload, (int, float)):
                lines.append(f"{metric_name(prefix)} {payload:g}")

        for name, payload in snapshot["collected"].items():
            flatten(name, payload)
        return "\n".join(lines) + "\n"


#: The process-wide default registry (importable from anywhere; services
#: default to a private instance — pass ``ServiceConfig(metrics=METRICS)``
#: to aggregate several services here).
METRICS = MetricsRegistry()
