"""Synthetic hypergraph generators.

These supply the hypergraph classes "C" that the paper's theorems quantify
over: bounded-treewidth families (paths, trees, grids of fixed height),
unbounded-treewidth families (cliques, grids), high-arity families, and random
hypergraphs for property-based testing.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.hypergraph.hypergraph import Hypergraph
from repro.util.rng import RNGLike, as_generator


def path_hypergraph(length: int) -> Hypergraph:
    """The path on ``length`` vertices (treewidth 1, arity 2).

    This is the hypergraph of the Hamiltonian-path query of Observation 10.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    vertices = list(range(length))
    edges = [(i, i + 1) for i in range(length - 1)]
    return Hypergraph(vertices=vertices, edges=edges)


def cycle_hypergraph(length: int) -> Hypergraph:
    """The cycle on ``length`` >= 3 vertices (treewidth 2, arity 2)."""
    if length < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    edges = [(i, (i + 1) % length) for i in range(length)]
    return Hypergraph(vertices=range(length), edges=edges)


def star_hypergraph(leaves: int) -> Hypergraph:
    """The star with one centre (vertex 0) and ``leaves`` leaves
    (treewidth 1, arity 2).  The hypergraph of the footnote-4 query."""
    if leaves <= 0:
        raise ValueError("need at least one leaf")
    edges = [(0, i) for i in range(1, leaves + 1)]
    return Hypergraph(vertices=range(leaves + 1), edges=edges)


def tree_hypergraph(num_vertices: int, rng: RNGLike = None) -> Hypergraph:
    """A uniformly random labelled tree on ``num_vertices`` vertices
    (treewidth 1, arity 2), generated via a random Prüfer sequence."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if num_vertices == 1:
        return Hypergraph(vertices=[0])
    if num_vertices == 2:
        return Hypergraph(vertices=[0, 1], edges=[(0, 1)])
    generator = as_generator(rng)
    pruefer = [int(generator.integers(0, num_vertices)) for _ in range(num_vertices - 2)]
    tree = nx.from_prufer_sequence(pruefer)
    return Hypergraph.from_graph(tree)


def grid_hypergraph(rows: int, cols: int) -> Hypergraph:
    """The rows x cols grid graph as an arity-2 hypergraph.

    Its treewidth is min(rows, cols), so fixing one dimension gives a
    bounded-treewidth family while growing both gives the canonical
    unbounded-treewidth family used for hardness demonstrations.
    """
    if rows <= 0 or cols <= 0:
        raise ValueError("rows and cols must be positive")
    edges = []
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                edges.append(((r, c), (r, c + 1)))
            if r + 1 < rows:
                edges.append(((r, c), (r + 1, c)))
    vertices = [(r, c) for r in range(rows) for c in range(cols)]
    return Hypergraph(vertices=vertices, edges=edges)


def complete_graph_hypergraph(num_vertices: int) -> Hypergraph:
    """The complete graph K_n as an arity-2 hypergraph (treewidth n - 1):
    the canonical family with unbounded treewidth (Observation 9)."""
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    edges = [
        (i, j) for i in range(num_vertices) for j in range(i + 1, num_vertices)
    ]
    return Hypergraph(vertices=range(num_vertices), edges=edges)


def single_edge_hypergraph(arity: int) -> Hypergraph:
    """A single hyperedge covering ``arity`` vertices: hypertreewidth 1,
    fractional hypertreewidth 1, treewidth ``arity - 1``.  The simplest family
    separating treewidth from the hypergraph width measures."""
    if arity <= 0:
        raise ValueError("arity must be positive")
    return Hypergraph(vertices=range(arity), edges=[tuple(range(arity))])


def random_hypergraph(
    num_vertices: int,
    num_edges: int,
    arity: int,
    rng: RNGLike = None,
    uniform: bool = False,
) -> Hypergraph:
    """A random hypergraph with hyperedges drawn uniformly (without a
    particular structure).  Each edge has cardinality ``arity`` when
    ``uniform`` is true, otherwise cardinality uniform in [1, arity].
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if arity <= 0 or arity > num_vertices:
        raise ValueError("arity must be in [1, num_vertices]")
    generator = as_generator(rng)
    vertices = list(range(num_vertices))
    edges: List[tuple] = []
    for _ in range(num_edges):
        if uniform:
            size = arity
        else:
            size = int(generator.integers(1, arity + 1))
        members = generator.choice(num_vertices, size=size, replace=False)
        edges.append(tuple(int(v) for v in members))
    return Hypergraph(vertices=vertices, edges=edges)


def random_connected_graph_hypergraph(
    num_vertices: int, edge_probability: float, rng: RNGLike = None
) -> Hypergraph:
    """An Erdős–Rényi graph conditioned on connectivity (by adding a random
    spanning tree), as an arity-2 hypergraph."""
    generator = as_generator(rng)
    tree = tree_hypergraph(num_vertices, rng=generator)
    edges = list(tree.edges)
    for i in range(num_vertices):
        for j in range(i + 1, num_vertices):
            if generator.random() < edge_probability:
                edges.append((i, j))
    return Hypergraph(vertices=range(num_vertices), edges=edges)
