"""l-uniform, l-partite hypergraphs (Section 2.1 of the paper).

The Dell–Lapinskas–Meeks framework (Theorem 17) estimates the number of
hyperedges of an l-uniform hypergraph given only an oracle for the predicate
``EdgeFree(H[V_1, ..., V_l])``, where ``(V_1, ..., V_l)`` ranges over
*l-partite subsets* of the vertex set: tuples of pairwise-disjoint vertex
subsets.  ``H[V_1, ..., V_l]`` keeps exactly the hyperedges containing one
vertex from each ``V_i``.

This module provides the :class:`PartiteHypergraph` specialisation used for
the answer hypergraph ``H(phi, D)`` of Definition 24 together with the
restriction operation ``H[V_1, ..., V_l]``.
"""

from __future__ import annotations

from typing import FrozenSet, Hashable, Iterable, List, Sequence, Set, Tuple

from repro.hypergraph.hypergraph import Hypergraph, Vertex


class PartiteHypergraph(Hypergraph):
    """An l-uniform, l-partite hypergraph with an explicit l-partition.

    Every hyperedge must contain exactly one vertex from each class of the
    partition.  The classes are indexed ``0 .. l-1``; in the answer hypergraph
    of Definition 24, class ``i`` is ``U_i(D) = U(D) x {i}``, the candidate
    values of the ``i``-th free variable.
    """

    def __init__(self, classes: Sequence[Iterable[Vertex]]) -> None:
        class_sets: List[Set[Vertex]] = [set(block) for block in classes]
        for i, block_i in enumerate(class_sets):
            for block_j in class_sets[i + 1 :]:
                if block_i & block_j:
                    raise ValueError("partition classes must be pairwise disjoint")
        all_vertices: Set[Vertex] = set()
        for block in class_sets:
            all_vertices |= block
        super().__init__(vertices=all_vertices, edges=())
        self._classes: List[FrozenSet[Vertex]] = [frozenset(block) for block in class_sets]

    # ----------------------------------------------------------------- basics
    @property
    def num_classes(self) -> int:
        """The uniformity l of the hypergraph."""
        return len(self._classes)

    @property
    def classes(self) -> Tuple[FrozenSet[Vertex], ...]:
        return tuple(self._classes)

    def class_of(self, vertex: Vertex) -> int:
        """Index of the partition class containing ``vertex``."""
        for index, block in enumerate(self._classes):
            if vertex in block:
                return index
        raise KeyError(f"vertex {vertex!r} is not in any partition class")

    def add_edge(self, edge: Iterable[Vertex]) -> FrozenSet[Vertex]:
        frozen = frozenset(edge)
        if len(frozen) != self.num_classes:
            raise ValueError(
                f"edges of an {self.num_classes}-partite hypergraph must have "
                f"cardinality {self.num_classes}, got {len(frozen)}"
            )
        hits = [0] * self.num_classes
        for vertex in frozen:
            hits[self.class_of(vertex)] += 1
        if any(count != 1 for count in hits):
            raise ValueError("edges must contain exactly one vertex from each class")
        return super().add_edge(frozen)

    def add_tuple_edge(self, assignment: Sequence[Vertex]) -> FrozenSet[Vertex]:
        """Add the edge {assignment[0], ..., assignment[l-1]} where
        ``assignment[i]`` must lie in class ``i``."""
        if len(assignment) != self.num_classes:
            raise ValueError("assignment length must equal the number of classes")
        for index, vertex in enumerate(assignment):
            if vertex not in self._classes[index]:
                raise ValueError(f"vertex {vertex!r} is not in class {index}")
        return self.add_edge(assignment)

    # ------------------------------------------------------------ restriction
    def restrict(self, subsets: Sequence[Iterable[Vertex]]) -> "PartiteHypergraph":
        """The hypergraph ``H[V_1, ..., V_l]`` of Section 2.1.

        ``subsets`` must be an l-partite subset of ``V(H)`` (pairwise disjoint;
        they need *not* be aligned with the partition classes — the paper's
        oracle is queried with arbitrary disjoint subsets, and Lemma 22 reduces
        to the aligned case by permuting).  The result keeps exactly the
        hyperedges with one vertex in each ``V_i``; its partition classes are
        the ``V_i``.
        """
        subset_sets = [set(block) for block in subsets]
        if len(subset_sets) != self.num_classes:
            raise ValueError("need exactly one subset per partition class")
        for block in subset_sets:
            unknown = block - set(self.vertices)
            if unknown:
                raise KeyError(f"vertices not in hypergraph: {sorted(map(repr, unknown))}")
        restricted = PartiteHypergraph(subset_sets)
        for edge in self.edges:
            signature = []
            ok = True
            for block in subset_sets:
                hits = edge & block
                if len(hits) != 1:
                    ok = False
                    break
                signature.append(next(iter(hits)))
            if ok:
                restricted.add_edge(signature)
        return restricted

    def is_edge_free(self) -> bool:
        """The predicate ``EdgeFree(H)``: true iff H has no hyperedges."""
        return self.num_edges() == 0

    def __repr__(self) -> str:
        return (
            f"PartiteHypergraph(l={self.num_classes}, |V|={self.num_vertices()}, "
            f"|E|={self.num_edges()})"
        )


def is_partite_subset(
    hypergraph: Hypergraph, subsets: Sequence[Iterable[Vertex]]
) -> bool:
    """Whether ``subsets`` is an l-partite subset of ``V(hypergraph)``:
    pairwise-disjoint subsets of the vertex set (Section 2.1)."""
    subset_sets = [set(block) for block in subsets]
    vertices = set(hypergraph.vertices)
    for block in subset_sets:
        if not block <= vertices:
            return False
    for i, block_i in enumerate(subset_sets):
        for block_j in subset_sets[i + 1 :]:
            if block_i & block_j:
                return False
    return True


def restrict_to_partite_subset(
    hypergraph: Hypergraph, subsets: Sequence[Iterable[Vertex]]
) -> Hypergraph:
    """``H[V_1, ..., V_l]`` for a plain (not necessarily partite) l-uniform
    hypergraph: keep the hyperedges containing exactly one vertex in each
    ``V_i``.  Used for testing the partite machinery against a reference
    implementation."""
    if not is_partite_subset(hypergraph, subsets):
        raise ValueError("subsets must be pairwise disjoint subsets of the vertex set")
    subset_sets = [set(block) for block in subsets]
    vertices: Set[Vertex] = set()
    for block in subset_sets:
        vertices |= block
    kept = []
    for edge in hypergraph.edges:
        if all(len(edge & block) == 1 for block in subset_sets):
            kept.append(edge)
    return Hypergraph(vertices=vertices, edges=kept)
