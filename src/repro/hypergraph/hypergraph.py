"""The :class:`Hypergraph` data structure.

A hypergraph ``H`` consists of a finite vertex set ``V(H)`` and a set of
non-empty hyperedges ``E(H) ⊆ 2^V(H)`` (paper, Section 1.2).  The *arity* of a
hypergraph is the maximum size of its hyperedges.  Query hypergraphs
``H(phi)`` (Definition 3), the hypergraphs associated with relational
structures (Section 4) and the hypergraphs handed to the width measures in
:mod:`repro.decomposition` are all instances of this class.

Hyperedges are stored as frozensets and the edge *set* semantics of the paper
are preserved: adding the same hyperedge twice results in a single hyperedge.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Optional, Set, Tuple

import networkx as nx

Vertex = Hashable
Edge = FrozenSet[Vertex]


class Hypergraph:
    """A finite hypergraph with hashable vertices.

    Parameters
    ----------
    vertices:
        Iterable of vertices.  Vertices appearing in edges are added
        automatically, so this is only needed for isolated vertices.
    edges:
        Iterable of vertex-iterables; empty edges are rejected.
    """

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Iterable[Vertex]] = (),
    ) -> None:
        self._vertices: Set[Vertex] = set(vertices)
        self._edges: Set[Edge] = set()
        for edge in edges:
            self.add_edge(edge)

    # ------------------------------------------------------------------ basic
    def add_vertex(self, vertex: Vertex) -> None:
        """Add an isolated vertex (no effect if already present)."""
        self._vertices.add(vertex)

    def add_edge(self, edge: Iterable[Vertex]) -> FrozenSet[Vertex]:
        """Add a hyperedge (and its endpoints) and return it as a frozenset."""
        frozen = frozenset(edge)
        if not frozen:
            raise ValueError("hyperedges must be non-empty")
        self._vertices.update(frozen)
        self._edges.add(frozen)
        return frozen

    @property
    def vertices(self) -> FrozenSet[Vertex]:
        """The vertex set V(H)."""
        return frozenset(self._vertices)

    @property
    def edges(self) -> FrozenSet[Edge]:
        """The hyperedge set E(H)."""
        return frozenset(self._edges)

    def num_vertices(self) -> int:
        return len(self._vertices)

    def num_edges(self) -> int:
        return len(self._edges)

    def arity(self) -> int:
        """Maximum hyperedge cardinality (0 for an edgeless hypergraph)."""
        if not self._edges:
            return 0
        return max(len(edge) for edge in self._edges)

    def is_uniform(self, cardinality: Optional[int] = None) -> bool:
        """Whether every hyperedge has the same cardinality (optionally a
        specific one)."""
        sizes = {len(edge) for edge in self._edges}
        if not sizes:
            return True
        if len(sizes) > 1:
            return False
        if cardinality is None:
            return True
        return sizes == {cardinality}

    def has_edge(self, edge: Iterable[Vertex]) -> bool:
        return frozenset(edge) in self._edges

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def degree(self, vertex: Vertex) -> int:
        """Number of hyperedges containing ``vertex``."""
        if vertex not in self._vertices:
            raise KeyError(f"unknown vertex {vertex!r}")
        return sum(1 for edge in self._edges if vertex in edge)

    def incident_edges(self, vertex: Vertex) -> List[Edge]:
        """The hyperedges containing ``vertex``."""
        if vertex not in self._vertices:
            raise KeyError(f"unknown vertex {vertex!r}")
        return [edge for edge in self._edges if vertex in edge]

    def isolated_vertices(self) -> Set[Vertex]:
        """Vertices not contained in any hyperedge."""
        covered: Set[Vertex] = set()
        for edge in self._edges:
            covered.update(edge)
        return self._vertices - covered

    # -------------------------------------------------------------- structure
    def neighbours(self, vertex: Vertex) -> Set[Vertex]:
        """Vertices sharing at least one hyperedge with ``vertex``."""
        result: Set[Vertex] = set()
        for edge in self.incident_edges(vertex):
            result.update(edge)
        result.discard(vertex)
        return result

    def primal_graph(self) -> nx.Graph:
        """The primal (Gaifman) graph: vertices of H, with an edge between two
        vertices whenever they co-occur in some hyperedge.

        The treewidth of a hypergraph (Definition 4) coincides with the
        treewidth of its primal graph, which is how
        :mod:`repro.decomposition.treewidth` computes it.
        """
        graph = nx.Graph()
        graph.add_nodes_from(self._vertices)
        for edge in self._edges:
            edge_list = list(edge)
            for i, u in enumerate(edge_list):
                for v in edge_list[i + 1 :]:
                    graph.add_edge(u, v)
        return graph

    def incidence_graph(self) -> nx.Graph:
        """Bipartite incidence graph between vertices and hyperedges."""
        graph = nx.Graph()
        for vertex in self._vertices:
            graph.add_node(("v", vertex), kind="vertex")
        for index, edge in enumerate(sorted(self._edges, key=sorted_edge_key)):
            graph.add_node(("e", index), kind="edge", members=edge)
            for vertex in edge:
                graph.add_edge(("v", vertex), ("e", index))
        return graph

    def connected_components(self) -> List[Set[Vertex]]:
        """Connected components of the primal graph (isolated vertices are
        singleton components)."""
        return [set(component) for component in nx.connected_components(self.primal_graph())]

    def is_connected(self) -> bool:
        if not self._vertices:
            return True
        return len(self.connected_components()) == 1

    # ------------------------------------------------------------- operations
    def induced(self, subset: Iterable[Vertex]) -> "Hypergraph":
        """The induced hypergraph H[X] of Definition 39: vertex set X, edges
        { e ∩ X : e ∈ E(H), e ∩ X ≠ ∅ }."""
        subset_set = set(subset)
        unknown = subset_set - self._vertices
        if unknown:
            raise KeyError(f"vertices not in hypergraph: {sorted(map(repr, unknown))}")
        induced_edges = []
        for edge in self._edges:
            intersection = edge & subset_set
            if intersection:
                induced_edges.append(intersection)
        return Hypergraph(vertices=subset_set, edges=induced_edges)

    def remove_vertex(self, vertex: Vertex) -> "Hypergraph":
        """A new hypergraph with ``vertex`` removed from the vertex set and
        from every hyperedge (empty edges disappear)."""
        if vertex not in self._vertices:
            raise KeyError(f"unknown vertex {vertex!r}")
        remaining = self._vertices - {vertex}
        new_edges = []
        for edge in self._edges:
            trimmed = edge - {vertex}
            if trimmed:
                new_edges.append(trimmed)
        return Hypergraph(vertices=remaining, edges=new_edges)

    def with_singleton_edges(self, vertices: Iterable[Vertex]) -> "Hypergraph":
        """A copy with additional size-1 hyperedges {v} for the given vertices.

        This is the operation used in the proofs of Theorem 5 and Lemma 35:
        adding unary relations to a structure adds singleton hyperedges to its
        hypergraph, which increases neither treewidth (beyond max(tw, 0)) nor
        adaptive width (beyond max(aw, 1)).
        """
        copy = self.copy()
        for vertex in vertices:
            copy.add_edge([vertex])
        return copy

    def union(self, other: "Hypergraph") -> "Hypergraph":
        """Disjoint-aware union: vertex sets and edge sets are unioned."""
        return Hypergraph(
            vertices=self._vertices | other._vertices,
            edges=list(self._edges) + list(other._edges),
        )

    def copy(self) -> "Hypergraph":
        return Hypergraph(vertices=self._vertices, edges=self._edges)

    # ------------------------------------------------------------- conversion
    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "Hypergraph":
        """Build the arity-2 hypergraph of a simple graph."""
        return cls(vertices=graph.nodes(), edges=[frozenset(edge) for edge in graph.edges()])

    def to_edge_list(self) -> List[Tuple[Vertex, ...]]:
        """Sorted list of edges as sorted tuples (deterministic order for
        hashing/serialisation in tests)."""
        return sorted((tuple(sorted(edge, key=repr)) for edge in self._edges), key=repr)

    # ----------------------------------------------------------------- dunder
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Hypergraph):
            return NotImplemented
        return self._vertices == other._vertices and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((frozenset(self._vertices), frozenset(self._edges)))

    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._vertices

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._vertices)

    def __len__(self) -> int:
        return len(self._vertices)

    def __repr__(self) -> str:
        return (
            f"Hypergraph(|V|={self.num_vertices()}, |E|={self.num_edges()}, "
            f"arity={self.arity()})"
        )


def sorted_edge_key(edge: Edge) -> str:
    """Deterministic sort key for hyperedges with heterogeneous vertex types."""
    return repr(tuple(sorted(edge, key=repr)))
