"""Hypergraphs: the combinatorial substrate for query hypergraphs H(phi)
(Definition 3), induced hypergraphs H[X] (Definition 39) and the l-uniform,
l-partite answer hypergraphs of Section 2.1."""

from repro.hypergraph.hypergraph import Hypergraph
from repro.hypergraph.partite import (
    PartiteHypergraph,
    is_partite_subset,
    restrict_to_partite_subset,
)
from repro.hypergraph.generators import (
    complete_graph_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    path_hypergraph,
    random_hypergraph,
    star_hypergraph,
    tree_hypergraph,
)

__all__ = [
    "Hypergraph",
    "PartiteHypergraph",
    "is_partite_subset",
    "restrict_to_partite_subset",
    "path_hypergraph",
    "cycle_hypergraph",
    "star_hypergraph",
    "tree_hypergraph",
    "grid_hypergraph",
    "complete_graph_hypergraph",
    "random_hypergraph",
]
