"""Command-line interface.

Ten subcommands, mirroring the package's main entry points (also available
as ``python -m repro``)::

    repro-count count    --query "Ans(x) :- E(x, y), E(x, z), y != z" --database db.json
    repro-count classify --query "Ans(x, y) :- E(x, y), x != y"
    repro-count sample   --query "Ans(x, y) :- E(x, z), E(z, y)" --database db.json -n 5
    repro-count plan     --query "Ans(x) :- E(x, y)" --database db.json
    repro-count batch    --queries workload.txt --database db.json --seed 7
    repro-count batch    --workload 50 --seed 7   # synthetic mixed workload
    repro-count batch    --workload 50 --adaptive --latency-budget 0.5 --profiles profiles.json
    repro-count shard    --workload 20 --shards 4 --partitioner relation --compare
    repro-count stream   --events 200 --queries 8 --seed 7 --refresh debounced
    repro-count profiles show profiles.json
    repro-count serve    --database db.json --port 8000
    repro-count client   count --query "Ans(x) :- E(x, y)" --port 8000

Databases are JSON files in the format of :mod:`repro.relational.io` (or edge
lists with ``--edge-list``).  The counting subcommand prints both the chosen
scheme's estimate and, with ``--exact``, the exact count for comparison;
``plan`` and ``batch`` go through the :mod:`repro.service` layer (explainable
scheme selection, plan/result caching, parallel batch execution) and accept
the adaptive-planner knobs (``--adaptive``, ``--latency-budget``,
``--profiles`` to load/save the observed-cost snapshot); ``stream`` replays a
randomized insert/delete/query schedule against live ``subscribe()`` handles
(:mod:`repro.stream`) and reports how many reads were served for free,
delta-patched, or re-estimated; ``profiles`` inspects and merges cost-profile
snapshots (``show`` / ``export`` / ``import``); ``serve`` runs the
:mod:`repro.serve` HTTP/JSON front-end over a resident database and
``client`` talks to one.

Every ``--json`` report is a v1 wire envelope (:mod:`repro.serve.schema`):
the payload carries ``"api": "repro.v1"`` and a ``"kind"`` naming its shape,
and batch/shard results serialize through the same codecs the server and
client use.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.core import (
    approx_count_answers,
    classify_query,
    count_answers_exact,
)
from repro.queries import parse_query
from repro.relational.csp import DEFAULT_ENGINE, ENGINES
from repro.relational.io import load_database_json, load_edge_list
from repro.resilience.faults import FaultPlan, FaultPlanError
from repro.sampling import sample_answers


class CLIError(Exception):
    """A user-facing CLI error: reported as one line on stderr, exit code 2.

    Raised for bad invocations (conflicting flags, empty query files) and
    joined in :func:`main` by the package's own user-input errors — query
    parse failures, unknown schemes/partitioners, fault-plan config errors —
    so none of them surface as tracebacks."""


def _add_fault_plan_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fault-plan",
        metavar="JSON",
        default=None,
        help="deterministic fault plan to inject (repro.resilience): inline "
        'JSON like \'{"seed": 7, "rules": [{"site": "executor.task"}]}\' '
        "or a path to a JSON file; faulted tasks are retried under the "
        "default retry policy (chaos-run reproduction)",
    )


def _parse_fault_plan(args: argparse.Namespace) -> Optional[FaultPlan]:
    spec = getattr(args, "fault_plan", None)
    if not spec:
        return None
    text = spec
    if not spec.lstrip().startswith("{"):
        try:
            with open(spec) as handle:
                text = handle.read()
        except OSError as error:
            raise CLIError(f"cannot read fault plan file {spec!r}: {error}")
    return FaultPlan.from_json(text)


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a span trace of the run and write it to PATH as JSON "
        "lines (one root span tree per line); tracing never affects "
        "estimates or seeds",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a Prometheus-style text snapshot of the service metrics "
        "(cache hit rates, executor modes, per-scheme latency histograms) "
        "to PATH after the run",
    )


def _make_tracer(args: argparse.Namespace):
    """A Tracer when ``--trace`` was given, else None (tracing off)."""
    if getattr(args, "trace", None):
        from repro.obs import Tracer

        return Tracer()
    return None


def _write_telemetry(args: argparse.Namespace, tracer, service) -> None:
    """Write the ``--trace`` JSON-lines dump and/or the ``--metrics``
    Prometheus snapshot, as requested."""
    if tracer is not None and getattr(args, "trace", None):
        with open(args.trace, "w") as handle:
            text = tracer.to_jsonl()
            handle.write(text + "\n" if text else "")
    if getattr(args, "metrics", None):
        with open(args.metrics, "w") as handle:
            handle.write(service.metrics.render_prometheus())


def _add_adaptive_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--adaptive",
        action="store_true",
        help="let the planner overlay observed per-scheme costs on the "
        "Figure-1 dichotomy: the cheapest sound scheme whose predicted p95 "
        "latency fits the budget wins (cold profiles fall back to the "
        "static rules; estimates stay bit-identical — only which scheme "
        "runs changes)",
    )
    parser.add_argument(
        "--latency-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request latency budget the adaptive planner admits "
        "predicted costs against (requires --adaptive to take effect; "
        "unlike a deadline it never kills a request, it only steers "
        "scheme choice)",
    )
    parser.add_argument(
        "--profiles",
        metavar="PATH",
        default=None,
        help="cost-profile snapshot to load on start and save back on exit "
        "(the adaptive planner's memory across runs)",
    )


def _add_engine_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=list(ENGINES),
        default=DEFAULT_ENGINE,
        help="CSP engine the schemes solve with: indexed (default), naive "
        "(differential oracle), or columnar (vectorized NumPy; falls back "
        "to indexed when NumPy is unavailable); estimates are bit-identical "
        "across engines under equal seeds",
    )


def _add_database_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--database", help="path to a JSON database file")
    parser.add_argument(
        "--edge-list",
        help="path to a whitespace-separated edge list, loaded as a symmetric "
        "binary relation E",
    )
    parser.add_argument(
        "--relation",
        default="E",
        help="relation name used with --edge-list (default: E)",
    )


def _load_database(args: argparse.Namespace):
    if args.database and args.edge_list:
        raise CLIError("use either --database or --edge-list, not both")
    if args.database:
        return load_database_json(args.database)
    if args.edge_list:
        return load_edge_list(args.edge_list, relation=args.relation)
    raise CLIError("a database is required (--database or --edge-list)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-count",
        description="Approximately count answers to conjunctive queries with "
        "disequalities and negations (PODS 2022 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    count = subparsers.add_parser("count", help="approximately count query answers")
    count.add_argument("--query", required=True, help="query in Datalog-ish syntax")
    _add_database_arguments(count)
    count.add_argument("--epsilon", type=float, default=0.2)
    count.add_argument("--delta", type=float, default=0.05)
    count.add_argument("--seed", type=int, default=None)
    count.add_argument(
        "--method",
        choices=[
            "auto", "fpras", "fptras",
            "exact", "oracle_exact", "fpras_cq", "fptras_dcq", "fptras_ecq",
        ],
        default="auto",
        help="counting method: auto (FPRAS for CQs, FPTRAS otherwise), the "
        "legacy fpras/fptras aliases, or any registered scheme name; all "
        "dispatch through the unified scheme registry",
    )
    count.add_argument(
        "--exact",
        action="store_true",
        help="also compute the exact count for comparison (slow on large inputs)",
    )
    _add_engine_argument(count)

    classify = subparsers.add_parser(
        "classify", help="report the Figure-1 classification of a query"
    )
    classify.add_argument("--query", required=True)
    classify.add_argument("--json", action="store_true", help="emit JSON")

    sample = subparsers.add_parser("sample", help="sample answers approximately uniformly")
    sample.add_argument("--query", required=True)
    _add_database_arguments(sample)
    sample.add_argument("-n", "--num-samples", type=int, default=1)
    sample.add_argument("--epsilon", type=float, default=0.25)
    sample.add_argument("--delta", type=float, default=0.1)
    sample.add_argument("--seed", type=int, default=None)
    sample.add_argument(
        "--exact",
        action="store_true",
        help="use exact counts inside the sampler (exactly uniform, slower)",
    )

    plan = subparsers.add_parser(
        "plan",
        help="explain which counting scheme the service planner would choose",
    )
    plan.add_argument("--query", required=True)
    _add_database_arguments(plan)
    plan.add_argument(
        "--method",
        choices=["exact", "fpras_cq", "fptras_dcq", "fptras_ecq", "oracle_exact"],
        default=None,
        help="force a scheme instead of letting the planner choose",
    )
    plan.add_argument("--json", action="store_true", help="emit JSON")
    _add_engine_argument(plan)
    _add_adaptive_arguments(plan)

    batch = subparsers.add_parser(
        "batch",
        help="count a batch of queries through the service (planned, cached, parallel)",
    )
    source = batch.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--queries",
        help="path to a file with one query per line ('#' starts a comment)",
    )
    source.add_argument(
        "--workload",
        type=int,
        metavar="N",
        help="generate a synthetic mixed CQ/DCQ/ECQ workload of N queries "
        "(with its own database unless one is given)",
    )
    _add_database_arguments(batch)
    batch.add_argument("--epsilon", type=float, default=0.2)
    batch.add_argument("--delta", type=float, default=0.05)
    batch.add_argument("--seed", type=int, default=None, help="batch master seed")
    batch.add_argument(
        "--executor",
        choices=["process", "thread", "serial"],
        default="process",
        help="execution back-end (default: process pool)",
    )
    batch.add_argument("--workers", type=int, default=None, help="worker count")
    batch.add_argument(
        "--method",
        choices=["exact", "fpras_cq", "fptras_dcq", "fptras_ecq", "oracle_exact"],
        default=None,
        help="force one scheme for every query",
    )
    batch.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="submit the batch this many times (demonstrates result-cache hits)",
    )
    _add_fault_plan_argument(batch)
    _add_obs_arguments(batch)
    _add_engine_argument(batch)
    _add_adaptive_arguments(batch)
    batch.add_argument("--json", action="store_true", help="emit a JSON report")

    shard = subparsers.add_parser(
        "shard",
        help="count a batch against a horizontally sharded database",
    )
    source = shard.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--queries",
        help="path to a file with one query per line ('#' starts a comment)",
    )
    source.add_argument(
        "--workload",
        type=int,
        metavar="N",
        help="generate a synthetic mixed CQ/DCQ/ECQ workload of N queries "
        "(with its own database unless one is given)",
    )
    _add_database_arguments(shard)
    shard.add_argument(
        "--shards", type=int, default=4, help="number of shards (default: 4)"
    )
    shard.add_argument(
        "--partitioner",
        choices=["relation", "tuple"],
        default="relation",
        help="fact placement: whole relations per shard, or hash-by-tuple "
        "(default: relation)",
    )
    shard.add_argument(
        "--assign",
        default=None,
        metavar="R=0,S=1",
        help="explicit relation-to-shard assignment for --partitioner "
        "relation (comma-separated name=shard pairs)",
    )
    shard.add_argument("--epsilon", type=float, default=0.2)
    shard.add_argument("--delta", type=float, default=0.05)
    shard.add_argument("--seed", type=int, default=None, help="batch master seed")
    shard.add_argument(
        "--executor",
        choices=["process", "thread", "serial"],
        default="process",
        help="execution back-end for per-shard tasks (default: process pool)",
    )
    shard.add_argument("--workers", type=int, default=None, help="worker count")
    shard.add_argument(
        "--method",
        choices=["exact", "fpras_cq", "fptras_dcq", "fptras_ecq", "oracle_exact"],
        default=None,
        help="force one scheme for every query",
    )
    shard.add_argument(
        "--compare",
        action="store_true",
        help="also count unsharded and report agreement (slow on large inputs)",
    )
    _add_fault_plan_argument(shard)
    _add_obs_arguments(shard)
    _add_engine_argument(shard)
    shard.add_argument("--json", action="store_true", help="emit a JSON report")

    stream = subparsers.add_parser(
        "stream",
        help="replay a live insert/delete/query stream against subscriptions",
    )
    _add_database_arguments(stream)
    stream.add_argument(
        "--events", type=int, default=200, help="schedule length (default: 200)"
    )
    stream.add_argument(
        "--queries",
        type=int,
        default=8,
        metavar="N",
        help="number of subscribed queries (synthetic mixed workload)",
    )
    stream.add_argument(
        "--refresh",
        choices=["eager", "debounced", "budget"],
        default="eager",
        help="subscription refresh policy (default: eager)",
    )
    stream.add_argument(
        "--debounce-ticks",
        type=int,
        default=4,
        help="mutation ticks a debounced subscription coalesces (default: 4)",
    )
    stream.add_argument(
        "--budget-seconds",
        type=float,
        default=1.0,
        help="per-subscription refresh budget for --refresh budget",
    )
    stream.add_argument("--epsilon", type=float, default=0.2)
    stream.add_argument("--delta", type=float, default=0.05)
    stream.add_argument("--seed", type=int, default=None, help="schedule + estimate seed")
    stream.add_argument(
        "--verify",
        action="store_true",
        help="check every fresh exact read against a from-scratch recount (slow)",
    )
    _add_fault_plan_argument(stream)
    _add_obs_arguments(stream)
    _add_engine_argument(stream)
    stream.add_argument("--json", action="store_true", help="emit a JSON report")

    profiles = subparsers.add_parser(
        "profiles",
        help="inspect and manage cost-profile snapshots (the adaptive "
        "planner's memory)",
    )
    profiles_sub = profiles.add_subparsers(dest="profiles_command", required=True)
    show = profiles_sub.add_parser(
        "show", help="summarize a snapshot: entries, runs, per-key latency sketches"
    )
    show.add_argument("path", help="snapshot JSON file (v1 or v2)")
    show.add_argument("--json", action="store_true", help="emit JSON")
    export = profiles_sub.add_parser(
        "export",
        help="re-write a snapshot as current-version JSON (upgrades v1 "
        "snapshots in place of their implicit engine label)",
    )
    export.add_argument("path", help="snapshot JSON file to read")
    export.add_argument("--out", required=True, help="destination file")
    imported = profiles_sub.add_parser(
        "import",
        help="merge one or more snapshots into a destination store "
        "(created when missing; mismatched histogram boundaries are "
        "rebucketed, dropped precision is reported)",
    )
    imported.add_argument("sources", nargs="+", help="snapshot files to fold in")
    imported.add_argument(
        "--into", required=True, help="destination snapshot (loaded when present)"
    )

    serve = subparsers.add_parser(
        "serve",
        help="run the HTTP/JSON front-end over a resident database "
        "(coalescing, admission control, SSE live counts)",
    )
    _add_database_arguments(serve)
    serve.add_argument(
        "--workload",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="N",
        help="serve a synthetic workload database instead of a file "
        "(N is accepted for symmetry and ignored; the database is fixed "
        "by --seed)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8000, help="0 binds an ephemeral port"
    )
    serve.add_argument("--epsilon", type=float, default=0.2)
    serve.add_argument("--delta", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=None, help="synthetic database seed")
    serve.add_argument(
        "--executor",
        choices=["process", "thread", "serial"],
        default="thread",
        help="batch execution back-end (default: thread — the server already "
        "runs requests on a pool)",
    )
    serve.add_argument("--workers", type=int, default=None, help="batch worker count")
    serve.add_argument(
        "--tenants",
        metavar="JSON",
        default=None,
        help="per-tenant API keys and quotas: inline JSON like "
        "'[{\"name\": \"acme\", \"key\": \"s3cret\", \"rate\": 50, "
        "\"burst\": 100}]' or a path to a JSON file; omitted = open access",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=64,
        help="bounded request queue: more in-flight requests than this are "
        "answered 429 (default: 64)",
    )
    serve.add_argument(
        "--worker-threads",
        type=int,
        default=4,
        help="threads executing blocking service calls (default: 4)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default hard deadline stamped on requests that carry none",
    )
    serve.add_argument(
        "--no-mutations",
        action="store_true",
        help="refuse POST /v1/facts (serve an immutable snapshot)",
    )
    _add_engine_argument(serve)
    _add_adaptive_arguments(serve)

    client = subparsers.add_parser(
        "client",
        help="talk to a running serve instance over the v1 wire API",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8000)
    client.add_argument("--api-key", default=None, help="X-API-Key header value")
    client.add_argument(
        "--timeout", type=float, default=60.0, help="per-request socket timeout"
    )
    client_sub = client.add_subparsers(dest="client_command", required=True)

    c_count = client_sub.add_parser("count", help="POST /v1/count one query")
    c_count.add_argument("--query", required=True)
    c_count.add_argument("--epsilon", type=float, default=None)
    c_count.add_argument("--delta", type=float, default=None)
    c_count.add_argument("--seed", type=int, default=None)
    c_count.add_argument(
        "--method",
        choices=["exact", "fpras_cq", "fptras_dcq", "fptras_ecq", "oracle_exact"],
        default=None,
    )
    c_count.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    c_count.add_argument("--json", action="store_true", help="emit the wire envelope")

    c_batch = client_sub.add_parser("batch", help="POST /v1/batch a query file")
    c_batch.add_argument(
        "--queries",
        required=True,
        help="path to a file with one query per line ('#' starts a comment)",
    )
    c_batch.add_argument("--seed", type=int, default=None, help="batch master seed")
    c_batch.add_argument(
        "--executor", choices=["process", "thread", "serial"], default=None
    )
    c_batch.add_argument("--workers", type=int, default=None)
    c_batch.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    c_batch.add_argument("--json", action="store_true", help="emit the wire envelope")

    c_plan = client_sub.add_parser("plan", help="GET /v1/plan for one query")
    c_plan.add_argument("--query", required=True)
    c_plan.add_argument(
        "--method",
        choices=["exact", "fpras_cq", "fptras_dcq", "fptras_ecq", "oracle_exact"],
        default=None,
    )
    c_plan.add_argument("--json", action="store_true", help="emit the wire envelope")

    c_stats = client_sub.add_parser("stats", help="GET /v1/stats")
    c_stats.add_argument("--json", action="store_true", help=argparse.SUPPRESS)

    c_metrics = client_sub.add_parser(
        "metrics", help="GET /v1/metrics (Prometheus text)"
    )
    c_metrics.add_argument("--json", action="store_true", help=argparse.SUPPRESS)

    c_subscribe = client_sub.add_parser(
        "subscribe", help="GET /v1/subscribe and stream live counts (SSE)"
    )
    c_subscribe.add_argument("--query", required=True)
    c_subscribe.add_argument(
        "--refresh", choices=["eager", "debounced", "budget"], default="eager"
    )
    c_subscribe.add_argument("--epsilon", type=float, default=None)
    c_subscribe.add_argument("--delta", type=float, default=None)
    c_subscribe.add_argument("--seed", type=int, default=None)
    c_subscribe.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="end the stream after this many count events (default: forever)",
    )
    c_subscribe.add_argument(
        "--json", action="store_true", help="one wire envelope per line"
    )

    c_facts = client_sub.add_parser(
        "facts", help="POST /v1/facts to mutate the resident database"
    )
    c_facts.add_argument(
        "--add",
        action="append",
        default=[],
        metavar="R,v1,v2",
        help="fact to add, comma-separated relation then values "
        "(repeatable; integer-looking values are sent as integers)",
    )
    c_facts.add_argument(
        "--remove",
        action="append",
        default=[],
        metavar="R,v1,v2",
        help="fact to remove (same format, repeatable)",
    )
    c_facts.add_argument("--json", action="store_true", help=argparse.SUPPRESS)
    return parser


def _command_count(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    database = _load_database(args)
    estimate = approx_count_answers(
        query,
        database,
        epsilon=args.epsilon,
        delta=args.delta,
        seed=args.seed,
        method=args.method,
        engine=args.engine,
    )
    print(f"query class: {query.query_class().value}")
    print(f"estimate:    {estimate}")
    if args.exact and args.method != "exact":
        print(f"exact:       {count_answers_exact(query, database, engine=args.engine)}")
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    report = classify_query(query)
    verdict = report.class_verdict_if_widths_bounded
    if args.json:
        payload = {
            "query_class": report.query_class.value,
            "treewidth": report.widths.treewidth,
            "hypertreewidth": report.widths.hypertreewidth,
            "fractional_hypertreewidth": report.widths.fractional_hypertreewidth,
            "adaptive_width_lower": report.widths.adaptive_width.lower_bound,
            "adaptive_width_upper": report.widths.adaptive_width.upper_bound,
            "arity": report.widths.arity,
            "fptras": verdict.fptras.value,
            "fptras_reference": verdict.fptras_reference,
            "fpras": verdict.fpras.value,
            "fpras_reference": verdict.fpras_reference,
            "recommended_algorithm": report.recommended_algorithm,
        }
        print(json.dumps(payload, indent=2))
        return 0
    print(f"query class:   {report.query_class.value}")
    print(
        "widths:        "
        f"tw={report.widths.treewidth} hw={report.widths.hypertreewidth:.1f} "
        f"fhw={report.widths.fractional_hypertreewidth:.2f} "
        f"aw<= {report.widths.adaptive_width.upper_bound:.2f} arity={report.widths.arity}"
    )
    print(f"FPTRAS:        {verdict.fptras.value} ({verdict.fptras_reference})")
    print(f"FPRAS:         {verdict.fpras.value} ({verdict.fpras_reference})")
    print(f"recommended:   {report.recommended_algorithm}")
    print(f"               {report.recommendation_reason}")
    return 0


def _command_sample(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    database = _load_database(args)
    samples = sample_answers(
        query,
        database,
        num_samples=args.num_samples,
        epsilon=args.epsilon,
        delta=args.delta,
        rng=args.seed,
        exact=args.exact,
    )
    if not samples:
        print("(no answers)")
        return 0
    for sample in samples:
        print("\t".join(str(value) for value in sample))
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    from repro.service import CountingService, PlannerConfig, ServiceConfig

    query = parse_query(args.query)
    database = _load_database(args)
    service = CountingService(
        database,
        ServiceConfig(
            engine=args.engine,
            planner=PlannerConfig(adaptive=args.adaptive),
            latency_budget_seconds=args.latency_budget,
            # Planning only reads the snapshot; nothing is saved back.
            profile_path=args.profiles,
        ),
    )
    plan = service.plan(query, method=args.method)
    if args.json:
        from repro.serve import schema as wire

        print(wire.to_json(plan, indent=2))
    else:
        print(plan.explain())
    return 0


def _load_batch_queries(path: str) -> List:
    queries = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            queries.append(parse_query(line))
    if not queries:
        raise CLIError(f"no queries found in {path!r}")
    return queries


def _command_batch(args: argparse.Namespace) -> int:
    from repro.service import (
        CountingService,
        CountRequest,
        PlannerConfig,
        ServiceConfig,
        mixed_query_workload,
        workload_database,
    )

    if args.workload is not None:
        queries = mixed_query_workload(args.workload, rng=args.seed)
        if args.database or args.edge_list:
            database = _load_database(args)
        else:
            database = workload_database(rng=args.seed)
    else:
        queries = _load_batch_queries(args.queries)
        database = _load_database(args)

    tracer = _make_tracer(args)
    service = CountingService(
        database,
        ServiceConfig(
            epsilon=args.epsilon,
            delta=args.delta,
            executor=args.executor,
            max_workers=args.workers,
            engine=args.engine,
            fault_plan=_parse_fault_plan(args),
            tracer=tracer,
            planner=PlannerConfig(adaptive=args.adaptive),
            latency_budget_seconds=args.latency_budget,
            profile_path=args.profiles,
        ),
    )
    requests = [CountRequest(query=query, method=args.method) for query in queries]
    reports = [
        service.count_batch(requests, seed=args.seed)
        for _ in range(max(1, args.repeat))
    ]
    # Persists the warmed cost profiles when --profiles was given.
    service.close()
    _write_telemetry(args, tracer, service)

    if args.json:
        from repro.serve import schema as wire

        final = reports[-1]
        payload = wire.envelope(
            "batch_report",
            {
                **wire.batch_report_payload(final),
                "passes": [wire.batch_report_payload(report) for report in reports],
                "cache": service.stats(),
            },
        )
        print(json.dumps(payload, indent=2))
        return 0

    final = reports[-1]
    for result, query in zip(final.results, queries):
        print(
            f"[{result.index:3d}] {result.query_class:3s} "
            f"scheme={result.scheme:11s} estimate={result.estimate:12.2f} "
            f"cache={result.cache:4s} {1000 * result.execute_seconds:8.1f}ms  {query}"
        )
    for number, report in enumerate(reports, start=1):
        print(
            f"pass {number}: {len(report.results)} queries in "
            f"{report.wall_seconds:.2f}s ({report.throughput_qps:.1f} q/s) "
            f"executor={report.executed_executor} "
            f"cache hits={report.cache_hits} misses={report.cache_misses}"
        )
        if report.retries or report.degradations:
            print(
                f"        resilience: {report.retries} retries, "
                f"{len(report.degradations)} degradations"
            )
            for note in report.degradations:
                print(f"        - {note}")
    stats = service.stats()
    plan_stats, result_stats = stats["caches"]["plan"], stats["caches"]["result"]
    print(
        f"caches: plan {plan_stats['hits']}/{plan_stats['hits'] + plan_stats['misses']} hits, "
        f"result {result_stats['hits']}/{result_stats['hits'] + result_stats['misses']} hits"
    )
    return 0


def _parse_shard_assignment(spec: Optional[str]) -> Optional[dict]:
    if not spec:
        return None
    assignment = {}
    for pair in spec.split(","):
        name, _, shard = pair.partition("=")
        if not name or not shard:
            raise CLIError(f"bad --assign entry {pair!r}; expected name=shard")
        try:
            assignment[name.strip()] = int(shard)
        except ValueError:
            raise CLIError(f"bad shard index in --assign entry {pair!r}")
    return assignment


def _command_shard(args: argparse.Namespace) -> int:
    from repro.service import (
        CountingService,
        CountRequest,
        ServiceConfig,
        mixed_query_workload,
        workload_database,
    )
    from repro.shard import ShardedStructure, make_partitioner

    if args.workload is not None:
        queries = mixed_query_workload(args.workload, rng=args.seed)
        if args.database or args.edge_list:
            database = _load_database(args)
        else:
            database = workload_database(rng=args.seed)
    else:
        queries = _load_batch_queries(args.queries)
        database = _load_database(args)

    if args.assign and args.partitioner != "relation":
        raise CLIError("--assign requires --partitioner relation")
    partitioner = make_partitioner(
        args.partitioner, args.shards, assignment=_parse_shard_assignment(args.assign)
    )
    sharded = ShardedStructure.from_structure(database, partitioner)
    tracer = _make_tracer(args)
    service = CountingService(
        sharded,
        ServiceConfig(
            epsilon=args.epsilon,
            delta=args.delta,
            executor=args.executor,
            max_workers=args.workers,
            engine=args.engine,
            fault_plan=_parse_fault_plan(args),
            tracer=tracer,
        ),
    )
    requests = [CountRequest(query=query, method=args.method) for query in queries]
    report = service.count_batch(requests, seed=args.seed)
    _write_telemetry(args, tracer, service)
    # The batch already planned every query; "hit" marks cache-served results
    # (which skip the shard planner entirely).
    strategies = [result.shard_strategy or "hit" for result in report.results]

    comparison = None
    if args.compare:
        plain = CountingService(
            database,
            ServiceConfig(
                epsilon=args.epsilon,
                delta=args.delta,
                executor=args.executor,
                max_workers=args.workers,
                engine=args.engine,
            ),
        )
        plain_report = plain.count_batch(requests, seed=args.seed)
        comparison = [
            (sharded_result.estimate, plain_result.estimate)
            for sharded_result, plain_result in zip(report.results, plain_report.results)
        ]

    if args.json:
        from repro.serve import schema as wire

        payload = {
            "num_shards": sharded.num_shards,
            "partitioner": partitioner.kind,
            "shard_fact_counts": sharded.shard_fact_counts(),
            "strategies": {
                strategy: strategies.count(strategy) for strategy in sorted(set(strategies))
            },
            "batch": wire.batch_report_payload(report),
        }
        if comparison is not None:
            payload["compare"] = {
                "estimates_equal": [a == b for a, b in comparison],
                "unsharded_estimates": [b for _, b in comparison],
            }
        print(json.dumps(wire.envelope("shard_report", payload), indent=2))
        return 0

    print(
        f"sharded database: {sharded.num_shards} shards "
        f"(partitioner={partitioner.kind}), facts per shard "
        f"{sharded.shard_fact_counts()}"
    )
    for result, query, strategy in zip(report.results, queries, strategies):
        print(
            f"[{result.index:3d}] {result.query_class:3s} "
            f"scheme={result.scheme:11s} strategy={strategy:7s} "
            f"estimate={result.estimate:12.2f} cache={result.cache:4s} "
            f"{1000 * result.execute_seconds:8.1f}ms  {query}"
        )
    print(
        f"batch: {len(report.results)} queries in {report.wall_seconds:.2f}s "
        f"({report.throughput_qps:.1f} q/s) executor={report.executed_executor} "
        f"cache hits={report.cache_hits} misses={report.cache_misses}"
    )
    if report.retries or report.degradations:
        print(
            f"resilience: {report.retries} retries, "
            f"{len(report.degradations)} degradations"
        )
        for note in report.degradations:
            print(f"  - {note}")
    if comparison is not None:
        equal = sum(1 for a, b in comparison if a == b)
        print(
            f"compare: {equal}/{len(comparison)} sharded estimates equal the "
            "unsharded service run (exact schemes must all agree; shard-"
            "spanning approximations may differ within their error bounds)"
        )
    return 0


def _command_stream(args: argparse.Namespace) -> int:
    from repro.service import (
        CountingService,
        ServiceConfig,
        mixed_query_workload,
        workload_database,
    )
    from repro.stream import run_stream, stream_schedule

    if args.database or args.edge_list:
        database = _load_database(args)
        # Adapt the synthetic workload to the database's own relations: the
        # first binary relation hosts the positive atoms, the second the
        # negated ones (declared empty when absent, so ECQs stay valid).
        binary = [s.name for s in database.signature if s.arity == 2]
        if not binary:
            raise CLIError(
                "stream needs a database with at least one binary relation"
            )
        relation = binary[0]
        if len(binary) > 1:
            negated = binary[1]
        else:
            from repro.relational import RelationSymbol

            # Pick a name no declared symbol (of any arity) already uses.
            negated = "F"
            while negated in database.signature:
                negated += "_"
            database.add_relation(RelationSymbol(negated, 2))
    else:
        database = workload_database(rng=args.seed)
        relation, negated = "E", "F"
    queries = mixed_query_workload(
        args.queries, rng=args.seed, relation=relation, negated_relation=negated
    )
    schedule = stream_schedule(
        args.events, database, len(queries), rng=args.seed,
        relations=(relation, negated),
    )
    tracer = _make_tracer(args)
    service = CountingService(
        database,
        ServiceConfig(
            epsilon=args.epsilon,
            delta=args.delta,
            executor="serial",
            engine=args.engine,
            fault_plan=_parse_fault_plan(args),
            tracer=tracer,
        ),
    )
    report, subscriptions = run_stream(
        service,
        queries,
        database,
        schedule,
        refresh=args.refresh,
        debounce_ticks=args.debounce_ticks,
        budget_seconds=args.budget_seconds,
        seed=args.seed,
        verify=args.verify,
    )
    _write_telemetry(args, tracer, service)
    if args.json:
        from repro.serve import schema as wire

        payload = report.to_dict()
        payload["refresh_policy"] = args.refresh
        payload["schemes"] = [sub.scheme for sub in subscriptions]
        payload["cache"] = service.stats()
        print(json.dumps(wire.envelope("stream_report", payload), indent=2))
    else:
        print(
            f"replayed {report.num_events} events "
            f"({report.inserts} inserts, {report.deletes} deletes, "
            f"{report.reads} reads) in {report.wall_seconds:.2f}s "
            f"({report.events_per_second:.0f} ev/s, policy={args.refresh})"
        )
        print(
            f"reads: {report.fresh_serves} served fresh without refresh, "
            f"{report.refreshes} refreshed "
            f"({', '.join(f'{mode}={n}' for mode, n in sorted(report.modes.items())) or 'none'}), "
            f"{report.stale_serves} served stale"
        )
        for index, (subscription, estimate) in enumerate(
            zip(subscriptions, report.final_estimates)
        ):
            print(
                f"[{index:3d}] {subscription.query_class:3s} "
                f"scheme={subscription.scheme:11s} estimate={estimate:12.2f}  "
                f"{subscription.query}"
            )
        if args.verify:
            print(f"verified {report.verified_reads} exact reads against recounts")
    for subscription in subscriptions:
        subscription.close()
    return 0


def _load_profile_store(path: str):
    from repro.obs.profile import ProfileStore

    try:
        return ProfileStore.load(path)
    except (OSError, KeyError, TypeError, json.JSONDecodeError) as error:
        raise CLIError(f"cannot load profile snapshot {path!r}: {error}")


def _command_profiles(args: argparse.Namespace) -> int:
    from repro.obs.profile import ProfileStore

    if args.profiles_command == "show":
        store = _load_profile_store(args.path)
        stats = store.stats()
        rows = json.loads(store.to_json())["profiles"]
        if args.json:
            payload = dict(stats)
            payload["profiles"] = [
                {
                    "canonical_key": row["canonical_key"],
                    "fingerprint_class": row["fingerprint_class"],
                    "scheme": row["scheme"],
                    "engine": row["engine"],
                    "runs": row["profile"]["runs"],
                }
                for row in rows
            ]
            print(json.dumps(payload, indent=2))
            return 0
        print(
            f"{stats['entries']} entries, {stats['runs']} recorded runs, "
            f"{stats['canonical_forms']} canonical forms"
        )
        print(f"schemes: {', '.join(stats['schemes']) or '(none)'}")
        print(f"engines: {', '.join(stats['engines']) or '(none)'}")
        for row in rows:
            profile = store.get(
                row["canonical_key"],
                # Any size inside the bucket maps back to it; the smallest
                # size in bucket k is 2^(k-1) (0 for the empty bucket).
                1 << (row["fingerprint_class"] - 1) if row["fingerprint_class"] else 0,
                row["scheme"],
                row["engine"],
            )
            summary = profile.summary()
            print(
                f"  [2^{row['fingerprint_class']:2d}] {row['scheme']:12s} "
                f"{row['engine']:8s} runs={summary['runs']:5d} "
                f"p50={summary['p50_seconds']:.6f}s "
                f"p95={summary['p95_seconds']:.6f}s  {row['canonical_key']}"
            )
        return 0

    if args.profiles_command == "export":
        store = _load_profile_store(args.path)
        store.save(args.out)
        print(f"exported {len(store)} entries to {args.out} (v2 JSON)")
        return 0

    # import: fold sources into the destination (created when missing).
    import os

    if os.path.exists(args.into):
        destination = _load_profile_store(args.into)
    else:
        destination = ProfileStore()
    before = destination.stats()
    for source in args.sources:
        destination.merge(_load_profile_store(source))
    after = destination.stats()
    destination.save(args.into)
    dropped = after["merge_drops"] - before.get("merge_drops", 0)
    print(
        f"merged {len(args.sources)} snapshot(s) into {args.into}: "
        f"{after['entries']} entries, {after['runs']} runs"
        + (
            f" ({dropped} histogram counts rebucketed imprecisely)"
            if dropped
            else ""
        )
    )
    return 0


def _parse_tenants_argument(spec: Optional[str]):
    from repro.serve import parse_tenants

    if not spec:
        return ()
    text = spec
    if not spec.lstrip().startswith("["):
        try:
            with open(spec) as handle:
                text = handle.read()
        except OSError as error:
            raise CLIError(f"cannot read tenants file {spec!r}: {error}")
    try:
        return parse_tenants(text)
    except (ValueError, json.JSONDecodeError) as error:
        raise CLIError(f"bad --tenants spec: {error}")


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, run_server
    from repro.service import (
        CountingService,
        PlannerConfig,
        ServiceConfig,
        workload_database,
    )

    if args.database or args.edge_list:
        database = _load_database(args)
    elif args.workload is not None:
        database = workload_database(rng=args.seed)
    else:
        raise CLIError(
            "a database is required (--database, --edge-list, or --workload "
            "for a synthetic one)"
        )
    service = CountingService(
        database,
        ServiceConfig(
            epsilon=args.epsilon,
            delta=args.delta,
            executor=args.executor,
            max_workers=args.workers,
            engine=args.engine,
            planner=PlannerConfig(adaptive=args.adaptive),
            latency_budget_seconds=args.latency_budget,
            profile_path=args.profiles,
        ),
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        tenants=_parse_tenants_argument(args.tenants),
        max_pending=args.max_pending,
        worker_threads=args.worker_threads,
        default_deadline_seconds=args.deadline,
        allow_mutations=not args.no_mutations,
    )

    def on_started(server) -> None:
        access = (
            f"{len(config.tenants)} tenant(s)" if config.tenants else "open access"
        )
        print(
            f"serving {database.size()}-size database on "
            f"http://{server.config.host}:{server.port}/v1/ "
            f"({access}; Ctrl-C to stop)",
            flush=True,
        )

    run_server(service, config, on_started=on_started)
    return 0


def _fact_value(text: str):
    try:
        return int(text)
    except ValueError:
        return text


def _parse_fact_entries(entries: List[str]) -> List:
    facts = []
    for entry in entries:
        parts = [part.strip() for part in entry.split(",")]
        if len(parts) < 2 or not parts[0]:
            raise CLIError(
                f"bad fact {entry!r}; expected 'Relation,value1,value2,...'"
            )
        facts.append((parts[0], tuple(_fact_value(part) for part in parts[1:])))
    return facts


def _command_client(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeError
    from repro.serve import schema as wire

    client = ServeClient(
        args.host, args.port, api_key=args.api_key, timeout=args.timeout
    )
    try:
        if args.client_command == "count":
            result = client.count(
                args.query,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=args.seed,
                method=args.method,
                deadline_seconds=args.deadline,
            )
            if args.json:
                print(wire.to_json(result, indent=2))
            else:
                flag = " (coalesced)" if result.coalesced else ""
                print(
                    f"{result.query_class:3s} scheme={result.scheme} "
                    f"estimate={result.estimate} cache={result.cache}{flag}"
                )
            return 0
        if args.client_command == "batch":
            queries = [str(query) for query in _load_batch_queries(args.queries)]
            report = client.count_batch(
                queries,
                seed=args.seed,
                executor=args.executor,
                max_workers=args.workers,
                deadline_seconds=args.deadline,
            )
            if args.json:
                print(wire.to_json(report, indent=2))
            else:
                for result, query in zip(report.results, queries):
                    print(
                        f"[{result.index:3d}] {result.query_class:3s} "
                        f"scheme={result.scheme:11s} "
                        f"estimate={result.estimate:12.2f} "
                        f"cache={result.cache:4s}  {query}"
                    )
                print(
                    f"batch: {len(report.results)} queries in "
                    f"{report.wall_seconds:.2f}s executor={report.executed_executor} "
                    f"cache hits={report.cache_hits} misses={report.cache_misses}"
                )
            return 0
        if args.client_command == "plan":
            plan = client.plan(args.query, method=args.method)
            if args.json:
                print(wire.to_json(plan, indent=2))
            else:
                print(plan.explain())
            return 0
        if args.client_command == "stats":
            print(json.dumps(client.stats(), indent=2))
            return 0
        if args.client_command == "metrics":
            print(client.metrics_text(), end="")
            return 0
        if args.client_command == "subscribe":
            for live in client.subscribe(
                args.query,
                refresh=args.refresh,
                epsilon=args.epsilon,
                delta=args.delta,
                seed=args.seed,
                max_events=args.max_events,
            ):
                if args.json:
                    print(wire.to_json(live), flush=True)
                else:
                    print(
                        f"count={live.count} estimate={live.estimate} "
                        f"mode={live.mode} fresh={live.fresh}",
                        flush=True,
                    )
            return 0
        # facts
        outcome = client.add_facts(
            adds=_parse_fact_entries(args.add),
            removes=_parse_fact_entries(args.remove),
        )
        print(json.dumps(outcome, indent=2))
        return 0
    except KeyboardInterrupt:
        return 0  # Ctrl-C out of a subscribe stream is a clean exit
    except ServeError as error:
        raise CLIError(str(error))
    except ConnectionRefusedError:
        raise CLIError(
            f"cannot reach http://{args.host}:{args.port} — is the server "
            "running? (repro-count serve ...)"
        )


_COMMANDS = {
    "count": _command_count,
    "classify": _command_classify,
    "sample": _command_sample,
    "plan": _command_plan,
    "batch": _command_batch,
    "shard": _command_shard,
    "stream": _command_stream,
    "profiles": _command_profiles,
    "serve": _command_serve,
    "client": _command_client,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    command = _COMMANDS.get(args.command)
    if command is None:
        parser.error(f"unknown command {args.command!r}")
        return 2
    try:
        return command(args)
    except (CLIError, ValueError, OSError) as error:
        # One line, exit 2, for every user-input failure: bad invocations
        # (CLIError), query parse errors and unknown schemes/partitioners and
        # fault-plan config errors (all ValueError subclasses, incl.
        # QueryParseError/FaultPlanError/json.JSONDecodeError), and unreadable
        # files (OSError).  Genuine bugs still traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
