"""Random graph generators used by benches and tests.

All generators accept an ``rng`` (seed or generator) and return
:class:`networkx.Graph` instances; databases are derived from them with
:func:`repro.workloads.databases.database_from_graph`.
"""

from __future__ import annotations

import networkx as nx

from repro.util.rng import RNGLike, as_generator


def erdos_renyi_graph(num_vertices: int, edge_probability: float, rng: RNGLike = None) -> nx.Graph:
    """An Erdős–Rényi G(n, p) graph."""
    generator = as_generator(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_vertices))
    for u in range(num_vertices):
        for v in range(u + 1, num_vertices):
            if generator.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def path_graph(num_vertices: int) -> nx.Graph:
    """The path on ``num_vertices`` vertices."""
    return nx.path_graph(num_vertices)


def grid_graph(rows: int, cols: int) -> nx.Graph:
    """The rows x cols grid graph with integer-tuple vertices."""
    graph = nx.Graph()
    for r in range(rows):
        for c in range(cols):
            graph.add_node((r, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
    return graph


def random_bipartite_graph(
    left: int, right: int, edge_probability: float, rng: RNGLike = None
) -> nx.Graph:
    """A random bipartite graph with parts {0..left-1} and {left..left+right-1}."""
    generator = as_generator(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(left + right))
    for u in range(left):
        for v in range(left, left + right):
            if generator.random() < edge_probability:
                graph.add_edge(u, v)
    return graph


def power_law_graph(num_vertices: int, edges_per_vertex: int = 2, rng: RNGLike = None) -> nx.Graph:
    """A Barabási–Albert style preferential-attachment graph (heavy-tailed
    degree distribution), built without relying on networkx's global RNG."""
    generator = as_generator(rng)
    edges_per_vertex = max(1, min(edges_per_vertex, max(num_vertices - 1, 1)))
    graph = nx.Graph()
    graph.add_nodes_from(range(num_vertices))
    if num_vertices <= 1:
        return graph
    # Seed clique of size edges_per_vertex + 1.
    seed = min(edges_per_vertex + 1, num_vertices)
    for u in range(seed):
        for v in range(u + 1, seed):
            graph.add_edge(u, v)
    targets = [v for u in range(seed) for v in [u] * max(graph.degree(u), 1)]
    for new_vertex in range(seed, num_vertices):
        chosen = set()
        while len(chosen) < edges_per_vertex and targets:
            candidate = targets[int(generator.integers(0, len(targets)))]
            chosen.add(candidate)
        for target in chosen:
            graph.add_edge(new_vertex, target)
            targets.extend([new_vertex, target])
    return graph


def random_regular_ish_graph(num_vertices: int, degree: int, rng: RNGLike = None) -> nx.Graph:
    """An approximately ``degree``-regular graph built by a configuration-model
    style pairing with rejection of loops and multi-edges."""
    generator = as_generator(rng)
    graph = nx.Graph()
    graph.add_nodes_from(range(num_vertices))
    stubs = [v for v in range(num_vertices) for _ in range(degree)]
    generator.shuffle(stubs)
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v:
            graph.add_edge(u, v)
    return graph
