"""Random database generators.

The paper's counting problems take arbitrary relational databases as the
"large" input; these generators produce synthetic ones of controlled size,
arity and density for the benches and property-based tests.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Sequence

import networkx as nx

from repro.relational.signature import RelationSymbol, Signature
from repro.relational.structure import Database
from repro.util.rng import RNGLike, as_generator


def database_from_graph(graph: nx.Graph, relation: str = "E", symmetric: bool = True) -> Database:
    """The database of a graph over a (by default symmetric) binary relation."""
    database = Database(signature=Signature([RelationSymbol(relation, 2)]),
                        universe=graph.nodes())
    for u, v in graph.edges():
        database.add_fact(relation, (u, v))
        if symmetric:
            database.add_fact(relation, (v, u))
    return database


def random_database(
    universe_size: int,
    relations: Mapping[str, int],
    facts_per_relation: int,
    rng: RNGLike = None,
) -> Database:
    """A random database: ``relations`` maps relation names to arities, and
    each relation receives ``facts_per_relation`` uniformly random tuples
    (duplicates collapse, so the realised size may be slightly smaller)."""
    if universe_size <= 0:
        raise ValueError("universe_size must be positive")
    generator = as_generator(rng)
    signature = Signature.from_arities(dict(relations))
    database = Database(signature=signature, universe=range(universe_size))
    for name, arity in relations.items():
        for _ in range(facts_per_relation):
            fact = tuple(int(v) for v in generator.integers(0, universe_size, size=arity))
            database.add_fact(name, fact)
    return database


def random_high_arity_database(
    universe_size: int,
    relation_names: Sequence[str],
    arity: int,
    facts_per_relation: int,
    rng: RNGLike = None,
    correlated: bool = True,
) -> Database:
    """A random database with several relations of the same (high) arity.

    With ``correlated=True`` the relations share tuples on overlapping
    prefixes, which makes chained joins (the high-arity acyclic queries of
    Theorems 13/16) return non-trivially many answers instead of being empty
    almost surely.
    """
    generator = as_generator(rng)
    signature = Signature.from_arities({name: arity for name in relation_names})
    database = Database(signature=signature, universe=range(universe_size))
    shared_pool = [
        tuple(int(v) for v in generator.integers(0, universe_size, size=arity))
        for _ in range(max(facts_per_relation // 2, 1))
    ]
    for name in relation_names:
        for _ in range(facts_per_relation):
            if correlated and shared_pool and generator.random() < 0.5:
                base = shared_pool[int(generator.integers(0, len(shared_pool)))]
                # Mutate one random coordinate so relations overlap but differ.
                position = int(generator.integers(0, arity))
                fact = list(base)
                fact[position] = int(generator.integers(0, universe_size))
                database.add_fact(name, tuple(fact))
            else:
                fact = tuple(
                    int(v) for v in generator.integers(0, universe_size, size=arity)
                )
                database.add_fact(name, fact)
    return database
