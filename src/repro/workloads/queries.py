"""Random query-family generators.

These produce members of the query classes Φ_C the paper's theorems quantify
over: random bounded-treewidth (tree-shaped) queries with a controllable mix
of free/existential variables and optional disequalities / negations.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx

from repro.hypergraph.generators import tree_hypergraph
from repro.queries.atoms import Atom, Disequality, NegatedAtom
from repro.queries.query import ConjunctiveQuery
from repro.util.rng import RNGLike, as_generator


def random_tree_query(
    num_variables: int,
    num_free: Optional[int] = None,
    num_disequalities: int = 0,
    num_negations: int = 0,
    relation: str = "E",
    negated_relation: str = "F",
    rng: RNGLike = None,
) -> ConjunctiveQuery:
    """A random tree-shaped query (treewidth 1, arity 2).

    The atom structure is a uniformly random labelled tree on the variables;
    ``num_free`` variables are kept free (default: about half); disequalities
    and negated atoms are added over random variable pairs.
    """
    if num_variables < 2:
        raise ValueError("need at least two variables")
    generator = as_generator(rng)
    tree = tree_hypergraph(num_variables, rng=generator)
    variables = [f"x{i}" for i in range(num_variables)]
    atoms: List[Atom] = []
    for edge in sorted(tree.edges, key=lambda e: sorted(e)):
        u, v = sorted(edge)
        atoms.append(Atom(relation, (variables[u], variables[v])))

    if num_free is None:
        num_free = max(1, num_variables // 2)
    num_free = max(1, min(num_free, num_variables))
    free = variables[:num_free]

    pairs = [
        (variables[i], variables[j])
        for i in range(num_variables)
        for j in range(i + 1, num_variables)
    ]
    disequalities: List[Disequality] = []
    if num_disequalities > 0 and pairs:
        chosen = generator.choice(
            len(pairs), size=min(num_disequalities, len(pairs)), replace=False
        )
        disequalities = [Disequality(*pairs[int(i)]) for i in chosen]

    negated: List[NegatedAtom] = []
    if num_negations > 0 and pairs:
        chosen = generator.choice(
            len(pairs), size=min(num_negations, len(pairs)), replace=False
        )
        negated = [NegatedAtom(negated_relation, pairs[int(i)]) for i in chosen]

    return ConjunctiveQuery(
        free_variables=free,
        atoms=atoms,
        negated_atoms=negated,
        disequalities=disequalities,
    )


def random_bounded_treewidth_query(
    num_variables: int,
    treewidth: int,
    num_free: Optional[int] = None,
    relation: str = "E",
    rng: RNGLike = None,
) -> ConjunctiveQuery:
    """A random query whose hypergraph is a ``treewidth``-tree (a k-tree
    subgraph): start from a (treewidth+1)-clique and attach each further
    variable to a random existing bag of ``treewidth`` variables.  The
    resulting treewidth is at most the requested bound."""
    if treewidth < 1:
        raise ValueError("treewidth must be at least 1")
    if num_variables < treewidth + 1:
        raise ValueError("need at least treewidth + 1 variables")
    generator = as_generator(rng)
    variables = [f"x{i}" for i in range(num_variables)]
    atoms: List[Atom] = []
    cliques: List[List[str]] = [variables[: treewidth + 1]]
    for i in range(treewidth + 1):
        for j in range(i + 1, treewidth + 1):
            atoms.append(Atom(relation, (variables[i], variables[j])))
    for index in range(treewidth + 1, num_variables):
        base = cliques[int(generator.integers(0, len(cliques)))]
        subset_indices = generator.choice(len(base), size=treewidth, replace=False)
        subset = [base[int(i)] for i in subset_indices]
        for other in subset:
            atoms.append(Atom(relation, (variables[index], other)))
        cliques.append(subset + [variables[index]])

    if num_free is None:
        num_free = max(1, num_variables // 2)
    num_free = max(1, min(num_free, num_variables))
    return ConjunctiveQuery(free_variables=variables[:num_free], atoms=atoms)


def random_path_workload(
    lengths: List[int], num_free: int = 2, rng: RNGLike = None
) -> List[ConjunctiveQuery]:
    """A family of path queries of the given lengths with ``num_free`` free
    variables each (the rest existential)."""
    queries = []
    for length in lengths:
        variables = [f"x{i}" for i in range(length + 1)]
        atoms = [Atom("E", (variables[i], variables[i + 1])) for i in range(length)]
        free = variables[: max(1, min(num_free, len(variables)))]
        queries.append(ConjunctiveQuery(free_variables=free, atoms=atoms))
    return queries


def random_star_workload(
    leaf_counts: List[int], with_disequalities: bool = False
) -> List[ConjunctiveQuery]:
    """The footnote-4 star-query family for the given leaf counts."""
    from repro.queries.builders import star_query

    return [
        star_query(k, centre_free=False, with_disequalities=with_disequalities)
        for k in leaf_counts
    ]
