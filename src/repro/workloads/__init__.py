"""Synthetic workload generators: random graphs, random databases and random
query families.

These stand in for the abstract query classes Φ_C and arbitrary databases D
that the paper's theorems quantify over (DESIGN.md records this as the only
"data" substitution: the paper has no datasets, so all workloads are
synthetic by construction)."""

from repro.workloads.graphs import (
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    power_law_graph,
    random_bipartite_graph,
    random_regular_ish_graph,
)
from repro.workloads.databases import (
    database_from_graph,
    random_database,
    random_high_arity_database,
)
from repro.workloads.queries import (
    random_bounded_treewidth_query,
    random_path_workload,
    random_star_workload,
    random_tree_query,
)

__all__ = [
    "erdos_renyi_graph",
    "path_graph",
    "grid_graph",
    "power_law_graph",
    "random_bipartite_graph",
    "random_regular_ish_graph",
    "database_from_graph",
    "random_database",
    "random_high_arity_database",
    "random_tree_query",
    "random_bounded_treewidth_query",
    "random_path_workload",
    "random_star_workload",
]
