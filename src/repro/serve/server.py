"""The asyncio HTTP/JSON front-end over a resident :class:`CountingService`.

``CountingServer`` binds the v1 wire API (:mod:`repro.serve.schema`) to a
long-lived service instance — the shape of the bluesky exemplar: one
stateful core, many concurrent clients reading live state.

Endpoints::

    POST /v1/count      one CountRequest -> CountResult (coalesced)
    POST /v1/batch      BatchRequest -> BatchReport
    GET  /v1/plan       ?query=...[&method=...] -> QueryPlan
    GET  /v1/stats      service + serve statistics
    GET  /v1/metrics    Prometheus text exposition (repro.obs)
    GET  /v1/subscribe  ?query=... -> SSE stream of live counts
    POST /v1/facts      mutate the resident database (feeds subscriptions)

The systems contract, in order of interest:

* **Coalescing** — identical in-flight ``/v1/count`` requests (same
  canonical form, restricted fingerprint, epsilon/delta, seed, method,
  engine — see :func:`repro.serve.coalesce.coalescing_key`) share one
  execution; followers' responses carry ``coalesced: true`` and bump the
  ``serve.coalesced`` metric.  A herd of N identical requests costs one
  count (the result cache covers stragglers arriving after it finishes).
* **Admission control** — per-tenant token buckets
  (:mod:`repro.serve.admission`, 401/429 + ``Retry-After``) in front of a
  bounded in-flight queue (``max_pending``, 429 on overflow): backpressure
  instead of collapse.
* **Deadlines** — a request's ``deadline_seconds`` (or the server default)
  rides the PR-6 resilience path into every task; expiry answers 504.
* **Consistency** — counting requests hold a shared read gate and
  ``/v1/facts`` mutations an exclusive write gate, so a count never
  observes a half-applied mutation; each mutation wakes the SSE
  subscriptions, whose next read serves the new count through the PR-4
  subscription layer (delta-patched, re-estimated, or fingerprint-free —
  sharded databases included).

Blocking service work runs on a small thread pool; the event loop itself
only parses, routes, admits, and coalesces.
"""

from __future__ import annotations

import asyncio
import contextlib
import functools
import json
import threading
import time
from dataclasses import dataclass, replace
from typing import Any, Awaitable, Callable, Dict, Optional, Set, Tuple

from repro.resilience.retry import DeadlineExceeded, RetriesExhausted
from repro.serve import http, schema
from repro.serve.admission import AdmissionController, TenantSpec
from repro.serve.coalesce import Coalescer, coalescing_key
from repro.service.service import CountingService, CountRequest

REFRESH_POLICIES = ("eager", "debounced", "budget")


@dataclass(frozen=True)
class ServeConfig:
    """Server-side knobs (the service brings its own :class:`ServiceConfig`)."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (read it back from ``CountingServer.port``).
    port: int = 0
    #: Per-tenant API keys and quotas; empty means open access (dev mode).
    tenants: Tuple[TenantSpec, ...] = ()
    #: The bounded request queue: count/batch/facts requests in flight
    #: beyond this are answered 429 + Retry-After (backpressure).
    max_pending: int = 64
    #: Threads executing blocking service calls (counts, plans, refreshes).
    worker_threads: int = 4
    #: Default hard deadline stamped on wire requests that carry none.
    default_deadline_seconds: Optional[float] = None
    #: Retry-After hint (seconds) for queue-full rejections.
    queue_retry_after: float = 0.1
    #: Idle SSE streams emit a comment frame this often.
    sse_heartbeat_seconds: float = 15.0
    #: Refuse ``POST /v1/facts`` (immutable serving snapshots).
    allow_mutations: bool = True

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if self.worker_threads < 1:
            raise ValueError("worker_threads must be at least 1")


class _ReadWriteGate:
    """An asyncio readers-writer gate: counts share, mutations exclude.

    Loop-confined (created and used on the server's event loop); writers
    wait for in-flight readers to drain, new readers wait out the writer.
    """

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writing = False

    @contextlib.asynccontextmanager
    async def read(self):
        async with self._cond:
            while self._writing:
                await self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            async with self._cond:
                self._readers -= 1
                self._cond.notify_all()

    @contextlib.asynccontextmanager
    async def write(self):
        async with self._cond:
            while self._writing or self._readers:
                await self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            async with self._cond:
                self._writing = False
                self._cond.notify_all()


class CountingServer:
    """One resident service behind the v1 wire API.  Construct on (or run
    into) the event loop that will serve it; see :func:`start_in_thread`
    for the blocking-world helper."""

    def __init__(
        self, service: CountingService, config: Optional[ServeConfig] = None
    ) -> None:
        if service.default_database is None:
            raise ValueError(
                "the server needs a resident database "
                "(CountingService(database, ...))"
            )
        self.service = service
        self.config = config or ServeConfig()
        self.admission = AdmissionController(self.config.tenants)
        self.coalescer = Coalescer()
        self.metrics = service.metrics
        self._gate = _ReadWriteGate()
        self._mutated = asyncio.Condition()
        self._db_version = 0
        self._pool: Optional[Any] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[asyncio.StreamWriter] = set()
        self._inflight = 0
        self._subscribers = 0
        self._closing = False
        self.port: Optional[int] = None
        self._routes: Dict[Tuple[str, str], Callable[..., Awaitable]] = {
            ("POST", "/v1/count"): self._handle_count,
            ("POST", "/v1/batch"): self._handle_batch,
            ("GET", "/v1/plan"): self._handle_plan,
            ("GET", "/v1/stats"): self._handle_stats,
            ("GET", "/v1/metrics"): self._handle_metrics,
            ("GET", "/v1/healthz"): self._handle_health,
            ("POST", "/v1/facts"): self._handle_facts,
        }

    # -------------------------------------------------------------- lifecycle
    async def start(self) -> int:
        """Bind and start accepting; returns the (possibly ephemeral) port."""
        from concurrent.futures import ThreadPoolExecutor

        self._pool = ThreadPoolExecutor(
            max_workers=self.config.worker_threads,
            thread_name_prefix="repro-serve",
        )
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def stop(self) -> None:
        """Stop accepting, sever open connections, drain the pool."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Wake idle SSE streams so their tasks notice the close promptly.
        async with self._mutated:
            self._mutated.notify_all()
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._pool is not None:
            self._pool.shutdown(wait=False)

    # -------------------------------------------------------------- plumbing
    async def _run_blocking(self, fn: Callable[[], Any]) -> Any:
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn
        )

    def _json_response(
        self,
        kind: str,
        payload: Dict[str, Any],
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> bytes:
        body = json.dumps(schema.envelope(kind, payload)).encode("utf-8")
        return http.response(status, body, headers=headers)

    def _error_response(
        self, status: int, message: str, retry_after: Optional[float] = None
    ) -> bytes:
        headers = None
        if retry_after is not None:
            # Retry-After is an integer header; keep sub-second precision in
            # the JSON payload for clients that can honor it.
            headers = {"Retry-After": str(max(1, int(retry_after + 0.999)))}
        return self._json_response(
            "error",
            schema.error_payload(
                schema.ServeError(
                    status=status, error=message, retry_after=retry_after
                )
            ),
            status=status,
            headers=headers,
        )

    def _decode_body(self, request: http.Request, expect: str) -> Any:
        try:
            message = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise schema.WireError(f"invalid JSON body: {error}")
        return schema.decode(message, expect=expect)

    def _admit(
        self, request: http.Request, cost: float = 1.0
    ) -> Optional[Tuple[int, bytes]]:
        """Run admission control; ``None`` on admission, else the
        ``(status, response)`` rejection to send."""
        api_key = request.header("x-api-key") or request.params.get("api_key")
        decision = self.admission.admit(api_key, cost=cost)
        if not decision.admitted:
            reason = "auth" if decision.status == 401 else "quota"
            self.metrics.counter("serve.rejections", reason=reason).inc()
            return decision.status, self._error_response(
                decision.status, decision.reason, decision.retry_after
            )
        return None

    def _check_queue(self) -> Optional[bytes]:
        if self._inflight >= self.config.max_pending:
            self.metrics.counter("serve.rejections", reason="queue_full").inc()
            return self._error_response(
                429,
                f"request queue full ({self.config.max_pending} in flight); "
                "retry shortly",
                retry_after=self.config.queue_retry_after,
            )
        return None

    def _with_default_deadline(self, request: CountRequest) -> CountRequest:
        if (
            request.deadline_seconds is None
            and self.config.default_deadline_seconds is not None
        ):
            return replace(
                request, deadline_seconds=self.config.default_deadline_seconds
            )
        return request

    # ------------------------------------------------------------ connection
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        try:
            while not self._closing:
                try:
                    request = await http.read_request(reader)
                except http.HTTPError as error:
                    writer.write(
                        self._error_response(error.status, error.message)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                streamed, keep = await self._dispatch(request, writer)
                if streamed:
                    break
                if not keep:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, request: http.Request, writer: asyncio.StreamWriter
    ) -> Tuple[bool, bool]:
        """Route one request; returns ``(streamed, keep_alive)``."""
        started = time.perf_counter()
        endpoint = request.path
        status = 200
        try:
            if request.path == "/v1/subscribe" and request.method == "GET":
                status = await self._handle_subscribe(request, writer)
                return True, False
            handler = self._routes.get((request.method, request.path))
            if handler is None:
                if request.path.startswith("/v1/"):
                    status, body = 404, self._error_response(
                        404, f"no such endpoint {request.path!r}"
                    )
                elif request.path.startswith("/v"):
                    status, body = 404, self._error_response(
                        404,
                        f"unsupported API version in {request.path!r}; "
                        f"this server speaks {schema.API_VERSION!r} under /v1/",
                    )
                else:
                    status, body = 404, self._error_response(
                        404, f"not found: {request.path!r}"
                    )
            else:
                status, body = await handler(request)
            writer.write(body)
            await writer.drain()
            return False, request.keep_alive
        except (ConnectionResetError, BrokenPipeError):
            status = 499  # client went away; nothing to write
            return True, False
        except Exception as error:  # noqa: BLE001 - last-resort 500
            status = 500
            with contextlib.suppress(Exception):
                writer.write(
                    self._error_response(500, f"internal error: {error!r}")
                )
                await writer.drain()
            return False, False
        finally:
            self.metrics.counter(
                "serve.requests", endpoint=endpoint, status=str(status)
            ).inc()
            self.metrics.histogram(
                "serve.request_seconds", endpoint=endpoint
            ).observe(time.perf_counter() - started)

    # ------------------------------------------------------------- endpoints
    async def _handle_count(self, request: http.Request) -> Tuple[int, bytes]:
        rejection = self._admit(request)
        if rejection is not None:
            return rejection
        overflow = self._check_queue()
        if overflow is not None:
            return 429, overflow
        try:
            count_request = self._decode_body(request, "count_request")
        except (schema.WireError, ValueError) as error:
            return 400, self._error_response(400, str(error))
        count_request = self._with_default_deadline(count_request)

        self._inflight += 1
        try:
            key = coalescing_key(self.service, count_request)
            async with self._gate.read():
                result, coalesced = await self.coalescer.fetch(
                    key,
                    functools.partial(
                        self._run_blocking,
                        functools.partial(
                            self.service.submit, request=count_request
                        ),
                    ),
                )
        except DeadlineExceeded as error:
            return 504, self._error_response(504, f"deadline exceeded: {error}")
        except RetriesExhausted as error:
            return 503, self._error_response(503, f"retries exhausted: {error}")
        except ValueError as error:
            return 400, self._error_response(400, str(error))
        finally:
            self._inflight -= 1
        if coalesced:
            self.metrics.counter("serve.coalesced").inc()
            result = replace(result, coalesced=True)
        return 200, self._json_response(
            "count_result", schema.count_result_payload(result)
        )

    async def _handle_batch(self, request: http.Request) -> Tuple[int, bytes]:
        try:
            batch_request = self._decode_body(request, "batch_request")
        except (schema.WireError, ValueError) as error:
            return 400, self._error_response(400, str(error))
        rejection = self._admit(
            request, cost=float(len(batch_request.requests))
        )
        if rejection is not None:
            return rejection
        overflow = self._check_queue()
        if overflow is not None:
            return 429, overflow

        requests = [
            self._with_default_deadline(entry)
            for entry in batch_request.requests
        ]
        self._inflight += 1
        try:
            async with self._gate.read():
                report = await self._run_blocking(
                    functools.partial(
                        self.service.count_batch,
                        requests,
                        seed=batch_request.seed,
                        executor=batch_request.executor,
                        max_workers=batch_request.max_workers,
                        deadline_seconds=batch_request.deadline_seconds,
                    )
                )
        except DeadlineExceeded as error:
            return 504, self._error_response(504, f"deadline exceeded: {error}")
        except RetriesExhausted as error:
            return 503, self._error_response(503, f"retries exhausted: {error}")
        except ValueError as error:
            return 400, self._error_response(400, str(error))
        finally:
            self._inflight -= 1
        return 200, self._json_response(
            "batch_report", schema.batch_report_payload(report)
        )

    async def _handle_plan(self, request: http.Request) -> Tuple[int, bytes]:
        query_text = request.params.get("query")
        if not query_text:
            return 400, self._error_response(400, "plan needs ?query=...")
        method = request.params.get("method") or None
        budget = request.params.get("latency_budget_seconds")
        try:
            from repro.queries import parse_query

            query = parse_query(query_text)
            async with self._gate.read():
                plan = await self._run_blocking(
                    functools.partial(
                        self.service.plan,
                        query,
                        method=method,
                        latency_budget_seconds=(
                            float(budget) if budget is not None else None
                        ),
                    )
                )
        except ValueError as error:
            return 400, self._error_response(400, str(error))
        return 200, self._json_response(
            "query_plan", schema.query_plan_payload(plan)
        )

    async def _handle_stats(self, request: http.Request) -> Tuple[int, bytes]:
        stats = await self._run_blocking(self.service.stats)
        return 200, self._json_response(
            "stats", {"service": stats, "serve": self.serve_stats()}
        )

    async def _handle_metrics(self, request: http.Request) -> Tuple[int, bytes]:
        text = await self._run_blocking(self.metrics.render_prometheus)
        return 200, http.response(
            200, text.encode("utf-8"), content_type="text/plain; version=0.0.4"
        )

    async def _handle_health(self, request: http.Request) -> Tuple[int, bytes]:
        return 200, self._json_response(
            "health",
            {
                "status": "ok",
                "database_size": self.service.default_database.size(),
            },
        )

    async def _handle_facts(self, request: http.Request) -> Tuple[int, bytes]:
        if not self.config.allow_mutations:
            return 403, self._error_response(
                403, "this server's database is immutable (--no-mutations)"
            )
        rejection = self._admit(request)
        if rejection is not None:
            return rejection
        overflow = self._check_queue()
        if overflow is not None:
            return 429, overflow
        try:
            update = self._decode_body(request, "facts_update")
        except (schema.WireError, ValueError) as error:
            return 400, self._error_response(400, str(error))

        self._inflight += 1
        try:
            async with self._gate.write():
                await self._run_blocking(
                    functools.partial(self._apply_facts, update)
                )
        except (KeyError, ValueError) as error:
            return 400, self._error_response(400, f"bad facts update: {error}")
        finally:
            self._inflight -= 1
        self._db_version += 1
        async with self._mutated:
            self._mutated.notify_all()
        return 200, self._json_response(
            "facts_applied",
            {
                "added": len(update.adds),
                "removed": len(update.removes),
                "database_size": self.service.default_database.size(),
            },
        )

    def _apply_facts(self, update: schema.FactsUpdate) -> None:
        database = self.service.default_database
        for name, values in update.adds:
            database.add_fact(name, values)
        for name, values in update.removes:
            database.remove_fact(name, values)

    # -------------------------------------------------------------------- SSE
    async def _handle_subscribe(
        self, request: http.Request, writer: asyncio.StreamWriter
    ) -> int:
        rejection = self._admit(request)
        if rejection is not None:
            status, body = rejection
            writer.write(body)
            await writer.drain()
            return status
        params = request.params
        query_text = params.get("query")
        if not query_text:
            writer.write(self._error_response(400, "subscribe needs ?query=..."))
            await writer.drain()
            return 400
        try:
            from repro.queries import parse_query

            refresh = params.get("refresh", "eager")
            if refresh not in REFRESH_POLICIES:
                raise ValueError(
                    f"unknown refresh policy {refresh!r}; expected one of "
                    f"{REFRESH_POLICIES}"
                )
            count_request = CountRequest(
                query=parse_query(query_text),
                epsilon=_opt_param(params, "epsilon", float),
                delta=_opt_param(params, "delta", float),
                seed=_opt_param(params, "seed", int),
                method=params.get("method") or None,
            )
            max_events = _opt_param(params, "max_events", int)
            heartbeat = (
                _opt_param(params, "heartbeat_seconds", float)
                or self.config.sse_heartbeat_seconds
            )
            debounce_ticks = _opt_param(params, "debounce_ticks", int) or 4
            budget_seconds = _opt_param(params, "budget_seconds", float) or 1.0
            # subscribe() mutates shared stream state (change-log observers,
            # the subscription list), so creation takes the exclusive gate.
            async with self._gate.write():
                subscription = await self._run_blocking(
                    functools.partial(
                        self.service.subscribe,
                        count_request,
                        refresh=refresh,
                        debounce_ticks=debounce_ticks,
                        budget_seconds=budget_seconds,
                    )
                )
        except ValueError as error:
            writer.write(self._error_response(400, str(error)))
            await writer.drain()
            return 400

        self._subscribers += 1
        self.metrics.counter("serve.subscriptions").inc()
        try:
            writer.write(http.sse_preamble())
            await writer.drain()
            sent = 0
            seen_version = self._db_version
            while not self._closing:
                async with self._gate.read():
                    live = await self._run_blocking(subscription.read)
                payload = schema.envelope(
                    "live_count", schema.live_count_payload(live)
                )
                writer.write(
                    http.sse_event(json.dumps(payload), event="count", event_id=sent)
                )
                await writer.drain()
                sent += 1
                if max_events is not None and sent >= max_events:
                    break
                # Wait for the next mutation (or emit a heartbeat comment).
                while not self._closing and self._db_version == seen_version:
                    try:
                        async with self._mutated:
                            if self._db_version == seen_version:
                                await asyncio.wait_for(
                                    self._mutated.wait(), timeout=heartbeat
                                )
                    except asyncio.TimeoutError:
                        writer.write(http.sse_comment("heartbeat"))
                        await writer.drain()
                seen_version = self._db_version
            return 200
        except (ConnectionResetError, BrokenPipeError):
            return 499
        finally:
            self._subscribers -= 1
            with contextlib.suppress(Exception):
                async with self._gate.write():
                    await self._run_blocking(subscription.close)

    # ------------------------------------------------------------------ stats
    def serve_stats(self) -> Dict[str, Any]:
        return {
            "inflight": self._inflight,
            "subscribers": self._subscribers,
            "max_pending": self.config.max_pending,
            "coalesced": self.coalescer.coalesced,
            "led": self.coalescer.led,
            "admission": self.admission.stats(),
        }


def _opt_param(params: Dict[str, str], key: str, cast) -> Optional[Any]:
    value = params.get(key)
    if value is None or value == "":
        return None
    try:
        return cast(value)
    except (TypeError, ValueError):
        raise ValueError(f"bad query parameter {key}={value!r}")


# ---------------------------------------------------------------- runners
class ServerHandle:
    """A server running on a background thread's event loop (tests, the
    sync client's world).  Use as a context manager or call :meth:`stop`."""

    def __init__(
        self,
        server: CountingServer,
        loop: asyncio.AbstractEventLoop,
        thread: threading.Thread,
    ) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.config.host

    def stop(self) -> None:
        if not self._thread.is_alive():
            return
        asyncio.run_coroutine_threadsafe(self.server.stop(), self._loop).result(
            timeout=10
        )
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10)
        self._loop.close()

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def start_in_thread(
    service: CountingService, config: Optional[ServeConfig] = None
) -> ServerHandle:
    """Start a server on a fresh daemon-thread event loop and return once
    it is accepting connections."""
    loop = asyncio.new_event_loop()
    started = threading.Event()
    holder: Dict[str, Any] = {}

    def run() -> None:
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            # Constructed on the loop so its Conditions bind to it.
            server = CountingServer(service, config)
            await server.start()
            holder["server"] = server

        try:
            loop.run_until_complete(boot())
        except BaseException as error:  # noqa: BLE001 - reported to starter
            holder["error"] = error
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=run, name="repro-serve-loop", daemon=True)
    thread.start()
    started.wait(timeout=10)
    if "error" in holder:
        raise holder["error"]
    if "server" not in holder:
        raise RuntimeError("server failed to start within 10s")
    return ServerHandle(holder["server"], loop, thread)


def run_server(
    service: CountingService,
    config: Optional[ServeConfig] = None,
    on_started: Optional[Callable[[CountingServer], None]] = None,
) -> None:
    """Run a server on the current thread until interrupted (the CLI's
    ``serve`` subcommand)."""

    async def main() -> None:
        server = CountingServer(service, config)
        await server.start()
        if on_started is not None:
            on_started(server)
        try:
            await asyncio.Event().wait()  # until cancelled
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
