"""Admission control: per-tenant API keys with token-bucket quotas.

The server refuses work it cannot absorb *before* spending anything on it:

* **Authentication** — when tenants are configured, every admission-checked
  endpoint requires a known ``X-API-Key`` (401 otherwise).  With no tenants
  configured the server is open and unmetered (development mode).
* **Rate limiting** — each tenant owns a :class:`TokenBucket` refilled at
  ``rate`` tokens/second up to ``burst``; a request costs one token (a batch
  costs one per query).  An empty bucket yields HTTP 429 with a
  ``Retry-After`` telling the client exactly when a token will exist.
* The server-level bounded request queue (backpressure) lives in
  :mod:`repro.serve.server`; this module is purely per-tenant policy.

Buckets take an injectable clock so tests replay quota decisions
deterministically.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple


@dataclass(frozen=True)
class TenantSpec:
    """One tenant: display name, API key, and quota (tokens/second + burst)."""

    name: str
    api_key: str
    rate: float = 50.0
    burst: float = 100.0

    def __post_init__(self) -> None:
        if not self.api_key:
            raise ValueError("tenant api_key must be non-empty")
        if self.rate <= 0 or self.burst < 1:
            raise ValueError(
                f"tenant {self.name!r} needs rate > 0 and burst >= 1"
            )


def parse_tenants(spec: Any) -> Tuple[TenantSpec, ...]:
    """Parse tenant specs from JSON text or a decoded list of dicts
    (``[{"name": ..., "key": ..., "rate": ..., "burst": ...}, ...]``)."""
    if isinstance(spec, str):
        spec = json.loads(spec)
    if not isinstance(spec, list):
        raise ValueError("tenants must be a JSON list of objects")
    tenants = []
    for entry in spec:
        if not isinstance(entry, dict) or "key" not in entry:
            raise ValueError(f"bad tenant entry {entry!r}; expected a 'key'")
        tenants.append(
            TenantSpec(
                name=str(entry.get("name", entry["key"])),
                api_key=str(entry["key"]),
                rate=float(entry.get("rate", 50.0)),
                burst=float(entry.get("burst", 100.0)),
            )
        )
    return tuple(tenants)


class TokenBucket:
    """A classic token bucket: ``burst`` capacity, ``rate`` tokens/second.

    :meth:`acquire` is all-or-nothing: it returns ``None`` on admission or
    the seconds until the requested tokens will exist (the 429's
    ``Retry-After``).  Thread-safe — the asyncio server calls it from the
    loop, but stats collectors may read concurrently.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._updated)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def acquire(self, cost: float = 1.0) -> Optional[float]:
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return None
            # Even a cost above burst gets a finite (if hopeless-looking)
            # retry hint rather than a lockout.
            deficit = min(cost, self.burst) - self._tokens
            return deficit / self.rate

    def available(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict on one request: admitted, or an HTTP status + hint."""

    admitted: bool
    tenant: str
    status: int = 200
    reason: str = ""
    retry_after: Optional[float] = None


class AdmissionController:
    """Maps API keys to tenants and meters their token buckets."""

    def __init__(
        self,
        tenants: Sequence[TenantSpec] = (),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        keys = [tenant.api_key for tenant in tenants]
        if len(set(keys)) != len(keys):
            raise ValueError("tenant api keys must be unique")
        self._tenants: Dict[str, TenantSpec] = {
            tenant.api_key: tenant for tenant in tenants
        }
        self._buckets: Dict[str, TokenBucket] = {
            tenant.api_key: TokenBucket(tenant.rate, tenant.burst, clock=clock)
            for tenant in tenants
        }
        self.admitted = 0
        self.rejected_auth = 0
        self.rejected_quota = 0

    @property
    def open_access(self) -> bool:
        """True when no tenants are configured (development mode)."""
        return not self._tenants

    def admit(self, api_key: Optional[str], cost: float = 1.0) -> AdmissionDecision:
        if self.open_access:
            self.admitted += 1
            return AdmissionDecision(admitted=True, tenant="anonymous")
        tenant = self._tenants.get(api_key or "")
        if tenant is None:
            self.rejected_auth += 1
            return AdmissionDecision(
                admitted=False,
                tenant="unknown",
                status=401,
                reason="unknown or missing API key (send X-API-Key)",
            )
        retry_after = self._buckets[tenant.api_key].acquire(cost)
        if retry_after is not None:
            self.rejected_quota += 1
            return AdmissionDecision(
                admitted=False,
                tenant=tenant.name,
                status=429,
                reason=f"quota exhausted for tenant {tenant.name!r}",
                retry_after=retry_after,
            )
        self.admitted += 1
        return AdmissionDecision(admitted=True, tenant=tenant.name)

    def stats(self) -> Dict[str, Any]:
        return {
            "tenants": len(self._tenants),
            "open_access": self.open_access,
            "admitted": self.admitted,
            "rejected_auth": self.rejected_auth,
            "rejected_quota": self.rejected_quota,
            "buckets": {
                tenant.name: round(self._buckets[key].available(), 3)
                for key, tenant in self._tenants.items()
            },
        }
