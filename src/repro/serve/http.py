"""A minimal HTTP/1.1 layer over asyncio streams — no frameworks, stdlib only.

Just enough protocol for the v1 wire API: request-line + header parsing,
Content-Length bodies, keep-alive, JSON and Server-Sent-Event responses.
Deliberately *not* general: no chunked transfer, no multipart, no TLS —
the serve layer sits behind whatever terminates those in production.
"""

from __future__ import annotations

import asyncio
import urllib.parse
from dataclasses import dataclass, field
from typing import Dict, Optional

#: Reason phrases for every status the serve layer emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Refuse request bodies beyond this (a count request is a few hundred bytes;
#: even a large batch is kilobytes).
MAX_BODY_BYTES = 8 * 1024 * 1024


class HTTPError(Exception):
    """A protocol-level failure answered with ``status`` and closed."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    params: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def header(self, name: str) -> Optional[str]:
        return self.headers.get(name.lower())


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int = MAX_BODY_BYTES
) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF (the client
    closed a keep-alive connection between requests)."""
    try:
        request_line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError):
        return None
    if not request_line or request_line in (b"\r\n", b"\n"):
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HTTPError(400, f"malformed request line {request_line!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise HTTPError(400, "connection closed mid-headers")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise HTTPError(400, "malformed Content-Length")
    if length < 0:
        raise HTTPError(400, "negative Content-Length")
    if length > max_body_bytes:
        raise HTTPError(413, f"request body over {max_body_bytes} bytes")
    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(400, "chunked request bodies are not supported")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError(400, "connection closed mid-body")

    path, _, query_string = target.partition("?")
    params = {
        key: values[0]
        for key, values in urllib.parse.parse_qs(query_string).items()
    }
    return Request(
        method=method.upper(),
        path=urllib.parse.unquote(path),
        params=params,
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
    keep_alive: bool = True,
) -> bytes:
    """Render a full response with Content-Length."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def sse_preamble(headers: Optional[Dict[str, str]] = None) -> bytes:
    """The header block opening a Server-Sent-Events stream (no
    Content-Length — the stream ends when the connection closes)."""
    lines = [
        "HTTP/1.1 200 OK",
        "Content-Type: text/event-stream",
        "Cache-Control: no-store",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def sse_event(
    data: str, event: Optional[str] = None, event_id: Optional[int] = None
) -> bytes:
    """One SSE frame (``data`` must not contain newlines; the wire API
    sends compact single-line JSON)."""
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    if event_id is not None:
        lines.append(f"id: {event_id}")
    lines.append(f"data: {data}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


def sse_comment(text: str) -> bytes:
    """An SSE comment frame (the heartbeat keeping idle streams alive)."""
    return f": {text}\n\n".encode("utf-8")
