"""A blocking v1 wire client on :mod:`http.client` — the CLI's and the
benchmarks' view of a running :class:`~repro.serve.server.CountingServer`.

One connection per call (the server speaks keep-alive, but a fresh
connection keeps the client trivially thread-safe for closed-loop
benchmark workers); SSE subscriptions hold their connection open and
iterate frames.  Every response is decoded through
:mod:`repro.serve.schema`, so a server-side :class:`CountResult` arrives
bit-identical to one produced by an in-process
:meth:`~repro.service.service.CountingService.submit`.
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, Optional, Sequence, Union

from repro.queries import ConjunctiveQuery, parse_query
from repro.serve import schema
from repro.service.plan import QueryPlan
from repro.service.service import BatchReport, CountRequest, CountResult
from repro.stream.live import LiveCount


class ServeError(Exception):
    """An error response from the server (or a wire-protocol failure).

    Carries the HTTP ``status`` and, for 429s, the server's ``retry_after``
    hint in seconds.
    """

    def __init__(
        self,
        status: int,
        message: str,
        retry_after: Optional[float] = None,
    ) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.error = message
        self.retry_after = retry_after


class ServeClient:
    """A synchronous client for one server address.

    >>> client = ServeClient("127.0.0.1", 8000, api_key="s3cret")
    >>> client.count("Q() :- E(x, y)").estimate
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8000,
        api_key: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.api_key = api_key
        self.timeout = timeout

    # ------------------------------------------------------------- plumbing
    def _headers(self) -> Dict[str, str]:
        headers = {"Accept": "application/json", "Connection": "close"}
        if self.api_key is not None:
            headers["X-API-Key"] = self.api_key
        return headers

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _raise_for_error(self, status: int, body: bytes) -> None:
        if status < 400:
            return
        message, retry_after = body.decode("utf-8", "replace"), None
        try:
            error = schema.from_json(message, expect="error")
            message, retry_after = error.error, error.retry_after
        except schema.WireError:
            pass
        raise ServeError(status, message, retry_after)

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        expect: Optional[str] = None,
        raw: bool = False,
        envelope_only: bool = False,
    ) -> Any:
        """One round trip.  ``raw`` returns the body text verbatim;
        ``envelope_only`` validates the envelope and returns the payload
        dict (for kinds without a dataclass, like ``stats``); otherwise the
        body decodes through the schema registry."""
        connection = self._connect()
        try:
            payload = None
            headers = self._headers()
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            data = response.read()
            self._raise_for_error(response.status, data)
            if raw:
                return data.decode("utf-8")
            try:
                if envelope_only:
                    message = json.loads(data.decode("utf-8"))
                    schema.open_envelope(message, expect=expect)
                    return {
                        key: value
                        for key, value in message.items()
                        if key not in ("api", "kind")
                    }
                return schema.from_json(data.decode("utf-8"), expect=expect)
            except (schema.WireError, json.JSONDecodeError) as error:
                raise ServeError(response.status, f"bad server reply: {error}")
        finally:
            connection.close()

    @staticmethod
    def _as_request(
        query: Union[str, ConjunctiveQuery, CountRequest], **options: Any
    ) -> CountRequest:
        if isinstance(query, CountRequest):
            if options and any(value is not None for value in options.values()):
                raise ValueError(
                    "pass either a CountRequest or per-field options, not both"
                )
            return query
        if isinstance(query, str):
            query = parse_query(query)
        return CountRequest(query=query, **options)

    # ------------------------------------------------------------ endpoints
    def count(
        self,
        query: Union[str, ConjunctiveQuery, CountRequest],
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        seed: Optional[int] = None,
        method: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
    ) -> CountResult:
        """``POST /v1/count`` — one request, one (possibly coalesced) result."""
        request = self._as_request(
            query,
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            method=method,
            deadline_seconds=deadline_seconds,
        )
        return self._request(
            "POST",
            "/v1/count",
            body=schema.encode(request),
            expect="count_result",
        )

    def count_batch(
        self,
        queries: Sequence[Union[str, ConjunctiveQuery, CountRequest]],
        seed: Optional[int] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        deadline_seconds: Optional[float] = None,
    ) -> BatchReport:
        """``POST /v1/batch`` — many requests under one batch seed."""
        batch = schema.BatchRequest(
            requests=tuple(self._as_request(entry) for entry in queries),
            seed=seed,
            executor=executor,
            max_workers=max_workers,
            deadline_seconds=deadline_seconds,
        )
        return self._request(
            "POST", "/v1/batch", body=schema.encode(batch), expect="batch_report"
        )

    def plan(
        self,
        query: Union[str, ConjunctiveQuery],
        method: Optional[str] = None,
        latency_budget_seconds: Optional[float] = None,
    ) -> QueryPlan:
        """``GET /v1/plan`` — plan without executing."""
        params = {"query": str(query)}
        if method is not None:
            params["method"] = method
        if latency_budget_seconds is not None:
            params["latency_budget_seconds"] = repr(latency_budget_seconds)
        return self._request(
            "GET", "/v1/plan?" + _urlencode(params), expect="query_plan"
        )

    def stats(self) -> Dict[str, Any]:
        """``GET /v1/stats`` — the service + serve statistics dicts."""
        return self._request("GET", "/v1/stats", expect="stats", envelope_only=True)

    def metrics_text(self) -> str:
        """``GET /v1/metrics`` — Prometheus text exposition."""
        return self._request("GET", "/v1/metrics", raw=True)

    def health(self) -> Dict[str, Any]:
        """``GET /v1/healthz`` — liveness plus the resident database size."""
        return self._request(
            "GET", "/v1/healthz", expect="health", envelope_only=True
        )

    def add_facts(
        self,
        adds: Sequence = (),
        removes: Sequence = (),
    ) -> Dict[str, Any]:
        """``POST /v1/facts`` — mutate the resident database.  Entries are
        ``(relation, values)`` pairs."""
        update = schema.FactsUpdate(
            adds=tuple((name, tuple(values)) for name, values in adds),
            removes=tuple((name, tuple(values)) for name, values in removes),
        )
        return self._request(
            "POST",
            "/v1/facts",
            body=schema.encode(update),
            expect="facts_applied",
            envelope_only=True,
        )

    def subscribe(
        self,
        query: Union[str, ConjunctiveQuery],
        refresh: str = "eager",
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        seed: Optional[int] = None,
        method: Optional[str] = None,
        max_events: Optional[int] = None,
        heartbeat_seconds: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> Iterator[LiveCount]:
        """``GET /v1/subscribe`` — iterate live counts off the SSE stream.

        Yields one :class:`LiveCount` per ``count`` event (the first
        immediately, then one after every server-side mutation).  With
        ``max_events`` the server ends the stream after that many events —
        the deterministic shape tests and the CLI use.
        """
        params = {"query": str(query), "refresh": refresh}
        for key, value in (
            ("epsilon", epsilon),
            ("delta", delta),
            ("seed", seed),
            ("method", method),
            ("max_events", max_events),
            ("heartbeat_seconds", heartbeat_seconds),
        ):
            if value is not None:
                params[key] = str(value)
        connection = http.client.HTTPConnection(
            self.host,
            self.port,
            timeout=timeout if timeout is not None else self.timeout,
        )
        try:
            connection.request(
                "GET",
                "/v1/subscribe?" + _urlencode(params),
                headers=self._headers(),
            )
            response = connection.getresponse()
            if response.status >= 400:
                self._raise_for_error(response.status, response.read())
            for line in _sse_data_lines(response):
                message = json.loads(line)
                yield schema.decode(message, expect="live_count")
        finally:
            connection.close()


def _sse_data_lines(response: http.client.HTTPResponse) -> Iterator[str]:
    """Yield the ``data:`` payloads off an SSE response, skipping comments
    (heartbeats), ``event:``/``id:`` fields, and frame separators."""
    while True:
        raw = response.readline()
        if not raw:
            return
        line = raw.decode("utf-8").rstrip("\r\n")
        if line.startswith("data:"):
            yield line[len("data:") :].strip()


def _urlencode(params: Dict[str, str]) -> str:
    import urllib.parse

    return urllib.parse.urlencode(params)
