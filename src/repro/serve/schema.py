"""The versioned (v1) JSON wire schema — the one public request/response
contract.

Every message the server emits, the client consumes, and the CLI prints with
``--json`` is a **flat envelope**: the payload dictionary plus two reserved
keys naming the protocol::

    {"api": "repro.v1", "kind": "count_result", "estimate": 42.0, ...}

The schema is the *single* serializer for the service-layer dataclasses —
:class:`~repro.service.service.CountRequest`,
:class:`~repro.service.service.CountResult`,
:class:`~repro.service.service.BatchReport`,
:class:`~repro.service.plan.QueryPlan` and
:class:`~repro.stream.live.LiveCount` — so the server, the sync client, the
CLI and in-process callers all speak the same envelope instead of hand-rolled
dicts.  Queries cross the wire in their Datalog-ish text form (``str(query)``
and :func:`repro.queries.parse_query` round-trip exactly, canonical forms
included); databases never cross the wire — the server holds one resident
database and requests count against it.

Contracts:

* **Strict round-trip** — ``from_json(to_json(obj)) == obj`` for every
  schema type, field for field (floats serialize via ``repr`` and survive
  exactly; tuples come back as tuples).
* **Unknown-field tolerance** — decoders read the fields they know and
  ignore the rest, so a v1 consumer keeps working when a newer producer
  adds payload fields.  The ``api`` string itself is strict: a different
  protocol version raises :class:`WireError` rather than guessing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

from repro.queries import parse_query
from repro.service.plan import QueryPlan
from repro.service.service import BatchReport, CountRequest, CountResult
from repro.stream.live import LiveCount

#: The protocol identifier every envelope carries.  Bump only with a new,
#: incompatible payload shape; additive payload fields do NOT bump it
#: (decoders tolerate unknown fields).
API_VERSION = "repro.v1"

#: Reserved envelope keys; payload dictionaries must not use them.
_RESERVED = ("api", "kind")


class WireError(ValueError):
    """A malformed or protocol-incompatible wire message."""


# --------------------------------------------------------------- envelopes
def envelope(kind: str, payload: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap ``payload`` in the flat v1 envelope."""
    for key in _RESERVED:
        if key in payload:
            raise WireError(f"payload must not use the reserved key {key!r}")
    return {"api": API_VERSION, "kind": kind, **payload}


def open_envelope(
    message: Dict[str, Any], expect: Optional[str] = None
) -> Tuple[str, Dict[str, Any]]:
    """Validate an envelope and return ``(kind, message)``.

    Raises :class:`WireError` when the message is not a dict, names a
    different protocol version, lacks a kind, or (with ``expect``) carries
    the wrong kind.
    """
    if not isinstance(message, dict):
        raise WireError(f"expected a JSON object, got {type(message).__name__}")
    api = message.get("api")
    if api != API_VERSION:
        raise WireError(
            f"unsupported protocol {api!r}; this build speaks {API_VERSION!r}"
        )
    kind = message.get("kind")
    if not isinstance(kind, str):
        raise WireError("envelope has no 'kind'")
    if expect is not None and kind != expect:
        raise WireError(f"expected kind {expect!r}, got {kind!r}")
    return kind, message


# --------------------------------------------------------- wire-only shapes
@dataclass(frozen=True)
class BatchRequest:
    """The ``POST /v1/batch`` body: independent requests plus batch knobs.

    ``seed`` is the batch master seed (request ``i`` without its own seed
    counts with ``derive_seed(seed, i)``, exactly as
    :meth:`~repro.service.service.CountingService.count_batch`); ``executor``
    / ``max_workers`` override the server's execution back-end, and
    ``deadline_seconds`` stamps the whole batch.
    """

    requests: Tuple[CountRequest, ...]
    seed: Optional[int] = None
    executor: Optional[str] = None
    max_workers: Optional[int] = None
    deadline_seconds: Optional[float] = None


@dataclass(frozen=True)
class FactsUpdate:
    """The ``POST /v1/facts`` body: facts to add to / remove from the
    server's resident database (each entry is ``(relation, values)``)."""

    adds: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()
    removes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()


@dataclass(frozen=True)
class ServeError:
    """A wire-level error: HTTP status, message, optional Retry-After."""

    status: int
    error: str
    retry_after: Optional[float] = None


# ----------------------------------------------------------------- payloads
def count_request_payload(request: CountRequest) -> Dict[str, Any]:
    if request.database is not None:
        raise WireError(
            "databases do not cross the wire; the server counts against its "
            "resident database (send the request with database=None)"
        )
    return {
        "query": str(request.query),
        "epsilon": request.epsilon,
        "delta": request.delta,
        "seed": request.seed,
        "method": request.method,
        "latency_budget_seconds": request.latency_budget_seconds,
        "deadline_seconds": request.deadline_seconds,
    }


def count_request_from_payload(payload: Dict[str, Any]) -> CountRequest:
    query_text = payload.get("query")
    if not isinstance(query_text, str):
        raise WireError("count_request needs a 'query' string")
    seed = payload.get("seed")
    return CountRequest(
        query=parse_query(query_text),
        epsilon=_opt_float(payload, "epsilon"),
        delta=_opt_float(payload, "delta"),
        seed=None if seed is None else int(seed),
        method=payload.get("method"),
        latency_budget_seconds=_opt_float(payload, "latency_budget_seconds"),
        deadline_seconds=_opt_float(payload, "deadline_seconds"),
    )


def _opt_float(payload: Dict[str, Any], key: str) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise WireError(f"{key} must be a number, got {value!r}")
    return float(value)


def query_plan_payload(plan: QueryPlan) -> Dict[str, Any]:
    return plan.to_dict()


def query_plan_from_payload(payload: Dict[str, Any]) -> QueryPlan:
    return QueryPlan.from_dict(payload)


def count_result_payload(result: CountResult) -> Dict[str, Any]:
    return {
        "index": result.index,
        "estimate": result.estimate,
        "count": result.count,  # display convenience; decoders recompute it
        "scheme": result.scheme,
        "query_class": result.query_class,
        "plan": query_plan_payload(result.plan),
        "seed": result.seed,
        "epsilon": result.epsilon,
        "delta": result.delta,
        "cache": result.cache,
        "plan_seconds": result.plan_seconds,
        "execute_seconds": result.execute_seconds,
        "widths": _jsonable(result.widths),
        "shard_strategy": result.shard_strategy,
        "degradations": list(result.degradations),
        "coalesced": result.coalesced,
    }


def count_result_from_payload(payload: Dict[str, Any]) -> CountResult:
    plan_payload = payload.get("plan")
    if not isinstance(plan_payload, dict):
        raise WireError("count_result needs a 'plan' object")
    return CountResult(
        index=int(payload.get("index", 0)),
        estimate=float(payload["estimate"]),
        scheme=payload.get("scheme", ""),
        query_class=payload.get("query_class", ""),
        plan=query_plan_from_payload(plan_payload),
        seed=payload.get("seed"),
        epsilon=float(payload.get("epsilon", 0.0)),
        delta=float(payload.get("delta", 0.0)),
        cache=payload.get("cache", "miss"),
        plan_seconds=float(payload.get("plan_seconds", 0.0)),
        execute_seconds=float(payload.get("execute_seconds", 0.0)),
        widths=payload.get("widths"),
        shard_strategy=payload.get("shard_strategy"),
        degradations=tuple(payload.get("degradations", ())),
        coalesced=bool(payload.get("coalesced", False)),
    )


def batch_report_payload(report: BatchReport) -> Dict[str, Any]:
    return {
        "num_queries": len(report.results),
        "results": [count_result_payload(result) for result in report.results],
        "wall_seconds": report.wall_seconds,
        "throughput_qps": report.throughput_qps,  # display convenience
        "requested_executor": report.requested_executor,
        "executed_executor": report.executed_executor,
        "max_workers": report.max_workers,
        "cache_hits": report.cache_hits,
        "cache_misses": report.cache_misses,
        "degradations": list(report.degradations),
        "retries": report.retries,
    }


def batch_report_from_payload(payload: Dict[str, Any]) -> BatchReport:
    return BatchReport(
        results=[
            count_result_from_payload(entry)
            for entry in payload.get("results", ())
        ],
        wall_seconds=float(payload.get("wall_seconds", 0.0)),
        requested_executor=payload.get("requested_executor", ""),
        executed_executor=payload.get("executed_executor", ""),
        max_workers=int(payload.get("max_workers", 0)),
        cache_hits=int(payload.get("cache_hits", 0)),
        cache_misses=int(payload.get("cache_misses", 0)),
        degradations=list(payload.get("degradations", ())),
        retries=int(payload.get("retries", 0)),
    )


def batch_request_payload(request: BatchRequest) -> Dict[str, Any]:
    return {
        "requests": [count_request_payload(entry) for entry in request.requests],
        "seed": request.seed,
        "executor": request.executor,
        "max_workers": request.max_workers,
        "deadline_seconds": request.deadline_seconds,
    }


def batch_request_from_payload(payload: Dict[str, Any]) -> BatchRequest:
    entries = payload.get("requests")
    if not isinstance(entries, list) or not entries:
        raise WireError("batch_request needs a non-empty 'requests' list")
    seed = payload.get("seed")
    workers = payload.get("max_workers")
    return BatchRequest(
        requests=tuple(count_request_from_payload(entry) for entry in entries),
        seed=None if seed is None else int(seed),
        executor=payload.get("executor"),
        max_workers=None if workers is None else int(workers),
        deadline_seconds=_opt_float(payload, "deadline_seconds"),
    )


def live_count_payload(live: LiveCount) -> Dict[str, Any]:
    return {
        "estimate": live.estimate,
        "count": live.count,  # display convenience
        "scheme": live.scheme,
        "query_class": live.query_class,
        "fresh": live.fresh,
        "refreshed": live.refreshed,
        "mode": live.mode,
        "pending_ticks": live.pending_ticks,
        "refresh_count": live.refresh_count,
        "seed": live.seed,
        "epsilon": live.epsilon,
        "delta": live.delta,
        "degradations": list(live.degradations),
        "gap_recounts": live.gap_recounts,
        "replans": live.replans,
        "replan_events": list(live.replan_events),
    }


def live_count_from_payload(payload: Dict[str, Any]) -> LiveCount:
    return LiveCount(
        estimate=float(payload["estimate"]),
        scheme=payload.get("scheme", ""),
        query_class=payload.get("query_class", ""),
        fresh=bool(payload.get("fresh", True)),
        refreshed=bool(payload.get("refreshed", False)),
        mode=payload.get("mode", "initial"),
        pending_ticks=int(payload.get("pending_ticks", 0)),
        refresh_count=int(payload.get("refresh_count", 0)),
        seed=payload.get("seed"),
        epsilon=float(payload.get("epsilon", 0.0)),
        delta=float(payload.get("delta", 0.0)),
        degradations=tuple(payload.get("degradations", ())),
        gap_recounts=int(payload.get("gap_recounts", 0)),
        replans=int(payload.get("replans", 0)),
        replan_events=tuple(payload.get("replan_events", ())),
    )


def facts_update_payload(update: FactsUpdate) -> Dict[str, Any]:
    return {
        "adds": [[name, list(values)] for name, values in update.adds],
        "removes": [[name, list(values)] for name, values in update.removes],
    }


def facts_update_from_payload(payload: Dict[str, Any]) -> FactsUpdate:
    return FactsUpdate(
        adds=_decode_facts(payload.get("adds", ())),
        removes=_decode_facts(payload.get("removes", ())),
    )


def _decode_facts(entries: Iterable) -> Tuple[Tuple[str, Tuple[Any, ...]], ...]:
    facts = []
    for entry in entries:
        try:
            name, values = entry
        except (TypeError, ValueError):
            raise WireError(f"bad fact entry {entry!r}; expected [relation, [values]]")
        if not isinstance(name, str):
            raise WireError(f"relation name must be a string, got {name!r}")
        facts.append((name, tuple(_normalise(value) for value in values)))
    return tuple(facts)


def _normalise(value: Any) -> Any:
    """JSON turns tuples into lists; keep decoded fact values hashable."""
    if isinstance(value, list):
        return tuple(_normalise(item) for item in value)
    return value


def _jsonable(value: Any) -> Any:
    """Deep-convert tuples to lists so the payload equals its JSON round
    trip (widths dictionaries occasionally hold tuples)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    return value


def error_payload(error: ServeError) -> Dict[str, Any]:
    payload: Dict[str, Any] = {"status": error.status, "error": error.error}
    if error.retry_after is not None:
        payload["retry_after"] = error.retry_after
    return payload


def error_from_payload(payload: Dict[str, Any]) -> ServeError:
    return ServeError(
        status=int(payload.get("status", 500)),
        error=str(payload.get("error", "")),
        retry_after=_opt_float(payload, "retry_after"),
    )


# ------------------------------------------------------- one-call json API
#: kind -> (payload encoder, payload decoder); the registry behind
#: :func:`to_json` / :func:`from_json`.
_CODECS = {
    "count_request": (count_request_payload, count_request_from_payload),
    "count_result": (count_result_payload, count_result_from_payload),
    "batch_request": (batch_request_payload, batch_request_from_payload),
    "batch_report": (batch_report_payload, batch_report_from_payload),
    "query_plan": (query_plan_payload, query_plan_from_payload),
    "live_count": (live_count_payload, live_count_from_payload),
    "facts_update": (facts_update_payload, facts_update_from_payload),
    "error": (error_payload, error_from_payload),
}

_KIND_BY_TYPE = {
    CountRequest: "count_request",
    CountResult: "count_result",
    BatchRequest: "batch_request",
    BatchReport: "batch_report",
    QueryPlan: "query_plan",
    LiveCount: "live_count",
    FactsUpdate: "facts_update",
    ServeError: "error",
}


def kind_of(obj: Any) -> str:
    """The wire kind of a schema object (:class:`WireError` when the type
    is not part of the v1 contract)."""
    kind = _KIND_BY_TYPE.get(type(obj))
    if kind is None:
        raise WireError(f"{type(obj).__name__} is not a v1 wire type")
    return kind


def encode(obj: Any) -> Dict[str, Any]:
    """Envelope a schema object (dispatching on its type)."""
    kind = kind_of(obj)
    encoder, _ = _CODECS[kind]
    return envelope(kind, encoder(obj))


def decode(message: Dict[str, Any], expect: Optional[str] = None) -> Any:
    """Decode an enveloped message back into its schema object."""
    kind, payload = open_envelope(message, expect=expect)
    codec = _CODECS.get(kind)
    if codec is None:
        raise WireError(f"unknown message kind {kind!r}")
    return codec[1](payload)


def to_json(obj: Any, indent: Optional[int] = None) -> str:
    """Serialize a schema object to enveloped JSON text."""
    return json.dumps(encode(obj), indent=indent)


def from_json(text: str, expect: Optional[str] = None) -> Any:
    """Parse enveloped JSON text back into its schema object (strict
    round-trip inverse of :func:`to_json`)."""
    try:
        message = json.loads(text)
    except json.JSONDecodeError as error:
        raise WireError(f"invalid JSON: {error}")
    return decode(message, expect=expect)
