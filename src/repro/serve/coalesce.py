"""Request coalescing: identical in-flight work shares one execution.

The paper's whole economy — cheap approximate counting under the Figure-1
dichotomy — pays off at serving scale when a thundering herd of the same
query costs **one** count.  The PR-2 result cache already makes the herd
cheap *after* the first response lands; the :class:`Coalescer` closes the
window *during* it: requests that arrive while an identical count is still
running await the leader's future instead of starting their own.

Identity is the :func:`coalescing_key` — ``(canonical query form, version
fingerprint restricted to the query's relations, epsilon, delta, seed,
method, engine)``:

* the **canonical form** makes alpha-renamed queries coalesce (the same
  sharing the plan/result caches exploit);
* the **restricted fingerprint** splits the key the instant a mutation
  touches one of the query's relations, so a follower never receives a
  count of the *previous* database state;
* **seed** joins the key because two requests with different explicit seeds
  are entitled to different random estimates — sharing would be wrong, not
  just surprising.  (The issue key omits seed; correctness demands it.)

The coalescer is event-loop confined (no locks): membership checks and
future resolution all happen on the server's asyncio loop; only the counting
itself runs in a worker thread.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, Tuple

from repro.queries.canonical import query_relation_names
from repro.queries.prepared import prepare
from repro.service.service import CountingService, CountRequest


def coalescing_key(service: CountingService, request: CountRequest) -> Tuple:
    """The in-flight identity of a request (see module docstring).

    ``request.database`` must already be resolved to the server's resident
    database (the wire never carries one).
    """
    database = request.database or service.default_database
    if database is None:
        raise ValueError("coalescing needs a resident database")
    canonical = prepare(request.query).canonical_key
    fingerprint = database.version_fingerprint(
        query_relation_names(request.query)
    )
    epsilon = request.epsilon if request.epsilon is not None else service.config.epsilon
    delta = request.delta if request.delta is not None else service.config.delta
    return (
        canonical,
        fingerprint,
        epsilon,
        delta,
        request.seed,
        request.method,
        service.config.engine,
    )


class _InFlight:
    """One running count: the future followers await plus bookkeeping."""

    __slots__ = ("future", "followers")

    def __init__(self, future: "asyncio.Future[Any]") -> None:
        self.future = future
        self.followers = 0


class Coalescer:
    """Deduplicate identical in-flight awaitables by key.

    ``fetch(key, runner)`` either *leads* (runs ``runner()`` and publishes
    the outcome) or *follows* (awaits the leader's future).  Returns
    ``(result, coalesced)``.  Leader failures propagate to every follower;
    a cancelled follower never cancels the leader (the future is shielded).
    """

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, _InFlight] = {}
        self.led = 0
        self.coalesced = 0

    def in_flight(self) -> int:
        return len(self._inflight)

    async def fetch(
        self, key: Hashable, runner: Callable[[], Awaitable[Any]]
    ) -> Tuple[Any, bool]:
        entry = self._inflight.get(key)
        if entry is not None:
            entry.followers += 1
            self.coalesced += 1
            # shield: a follower timing out/disconnecting must not cancel
            # the shared execution other followers (and the leader) await.
            return await asyncio.shield(entry.future), True

        loop = asyncio.get_running_loop()
        entry = _InFlight(loop.create_future())
        self._inflight[key] = entry
        self.led += 1
        try:
            result = await runner()
        except BaseException as error:  # noqa: BLE001 - re-raised below
            self._inflight.pop(key, None)
            if entry.followers:
                entry.future.set_exception(error)
                # Mark retrieved so the loop never logs "exception was
                # never retrieved" if every follower was cancelled.
                entry.future.exception()
            else:
                entry.future.cancel()
            raise
        self._inflight.pop(key, None)
        entry.future.set_result(result)
        return result, False
