"""repro.serve — the HTTP/JSON front-end over a resident counting service.

The layer stack, bottom to top:

* :mod:`repro.serve.schema` — the versioned (v1) JSON wire schema, the one
  serializer shared by the server, the client and the CLI's ``--json``.
* :mod:`repro.serve.http` — a minimal asyncio HTTP/1.1 protocol layer.
* :mod:`repro.serve.admission` — per-tenant API keys and token-bucket quotas.
* :mod:`repro.serve.coalesce` — identical in-flight requests share one count.
* :mod:`repro.serve.server` — the asyncio server binding it all to a
  :class:`~repro.service.service.CountingService`.
* :mod:`repro.serve.client` — the blocking client (CLI, benchmarks, tests).

Quick start::

    from repro.serve import ServeConfig, ServeClient, start_in_thread
    from repro.service import CountingService

    handle = start_in_thread(CountingService(database, seed=7))
    client = ServeClient(handle.host, handle.port)
    print(client.count("Answer() :- E(x, y)").estimate)
    handle.stop()
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantSpec,
    TokenBucket,
    parse_tenants,
)
from repro.serve.client import ServeClient, ServeError
from repro.serve.coalesce import Coalescer, coalescing_key
from repro.serve.schema import (
    API_VERSION,
    BatchRequest,
    FactsUpdate,
    WireError,
    decode,
    encode,
    from_json,
    to_json,
)
from repro.serve.server import (
    CountingServer,
    ServeConfig,
    ServerHandle,
    run_server,
    start_in_thread,
)

__all__ = [
    "API_VERSION",
    "AdmissionController",
    "AdmissionDecision",
    "BatchRequest",
    "Coalescer",
    "CountingServer",
    "FactsUpdate",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerHandle",
    "TenantSpec",
    "TokenBucket",
    "WireError",
    "coalescing_key",
    "decode",
    "encode",
    "from_json",
    "parse_tenants",
    "run_server",
    "start_in_thread",
    "to_json",
]
