"""The Hamiltonian-path construction of Observation 10.

Observation 10: already for the class of hypergraphs with treewidth 1 and
arity 2 there is no FPRAS for #DCQ unless NP = RP, because the DCQ

    ``phi(x_1, ..., x_n) = ⋀_i E(x_i, x_{i+1}) ∧ ⋀_{i<j} x_i != x_j``

over the database of a graph ``G`` has exactly the Hamiltonian paths of ``G``
as its answers, and approximating the number of Hamiltonian paths (even
deciding their existence) is NP-hard.

This module builds the instance and provides an independent exact counter
(Held–Karp style dynamic programming over subsets) used to validate the
encoding and to demonstrate the exponential cost of exact counting in the
hardness bench.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import networkx as nx

from repro.core.registry import REGISTRY
from repro.queries.builders import hamiltonian_path_query
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Database


def hamiltonian_instance(graph: nx.Graph) -> Tuple[ConjunctiveQuery, Database]:
    """The (query, database) pair of Observation 10 for an undirected graph.

    Answers of the query are *directed* traversals, i.e. each undirected
    Hamiltonian path is counted once per direction — exactly as in the paper's
    one-to-one correspondence with assignments ``(x_1, ..., x_n)``.
    """
    n = graph.number_of_nodes()
    if n < 2:
        raise ValueError("the construction needs at least two vertices")
    query = hamiltonian_path_query(n)
    database = Database.from_graph_edges(graph.edges(), symmetric=True,
                                         universe=graph.nodes())
    return query, database


def count_hamiltonian_paths_via_query(
    graph: nx.Graph, engine: str = DEFAULT_ENGINE
) -> int:
    """``|Ans(phi, D)|`` of the Observation-10 instance via the registry's
    ``exact`` scheme (``engine`` selects ``"indexed"``/``"naive"``) — the
    query-side counterpart of :func:`count_hamiltonian_paths_dp`, exponential
    by design (that is the point of the hardness construction)."""
    query, database = hamiltonian_instance(graph)
    return REGISTRY.count("exact", query, database, engine=engine).count


def count_hamiltonian_paths_dp(graph: nx.Graph) -> int:
    """The number of directed Hamiltonian paths of ``graph`` (ordered vertex
    sequences covering every vertex with consecutive vertices adjacent),
    computed by Held–Karp dynamic programming in ``O(2^n n^2)``.

    This matches ``|Ans(phi, D)|`` for the Observation-10 instance.
    """
    vertices = sorted(graph.nodes(), key=repr)
    n = len(vertices)
    if n == 0:
        return 0
    if n == 1:
        return 1
    index = {v: i for i, v in enumerate(vertices)}
    adjacency: List[List[int]] = [[] for _ in range(n)]
    for u, v in graph.edges():
        adjacency[index[u]].append(index[v])
        adjacency[index[v]].append(index[u])

    # dp[mask][v] = number of paths visiting exactly the vertices in mask and
    # ending at v.
    size = 1 << n
    dp = [[0] * n for _ in range(size)]
    for v in range(n):
        dp[1 << v][v] = 1
    for mask in range(size):
        for v in range(n):
            paths = dp[mask][v]
            if paths == 0 or not mask & (1 << v):
                continue
            for w in adjacency[v]:
                if mask & (1 << w):
                    continue
                dp[mask | (1 << w)][w] += paths
    full = size - 1
    return sum(dp[full][v] for v in range(n))
