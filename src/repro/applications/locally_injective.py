"""Locally injective homomorphisms (Corollary 6).

A homomorphism ``h`` from a graph ``G`` to a graph ``G'`` is *locally
injective* if for every vertex ``v`` of ``G`` the restriction of ``h`` to the
neighbourhood ``N_G(v)`` is injective.  The paper encodes the counting problem
#LIHom as an ECQ instance: the query

    ``phi(G)(x_1, ..., x_k) = ⋀_{{i,j} ∈ E(G)} E(x_i, x_j)  ∧
                              ⋀_{(i,j) ∈ cn(G)} x_i != x_j``

(where ``cn(G)`` is the set of pairs of distinct vertices with a common
neighbour) over the database ``D(G')`` representing ``G'`` is in one-to-one
correspondence with the locally injective homomorphisms from ``G`` to ``G'``.
Corollary 6: if ``G`` has bounded treewidth, Theorem 5 gives an FPTRAS.
"""

from __future__ import annotations

import itertools
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

import networkx as nx

from repro.core.registry import REGISTRY
from repro.queries.atoms import Atom, Disequality
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Database
from repro.util.rng import RNGLike


def common_neighbour_pairs(graph: nx.Graph) -> List[Tuple[Hashable, Hashable]]:
    """``cn(G)``: pairs of distinct vertices that share at least one
    neighbour."""
    pairs = set()
    for vertex in graph.nodes():
        neighbours = sorted(graph.neighbors(vertex), key=repr)
        for first, second in itertools.combinations(neighbours, 2):
            if first != second:
                pairs.add(tuple(sorted((first, second), key=repr)))
    return sorted(pairs, key=repr)


def lihom_query_and_database(
    pattern: nx.Graph, host: nx.Graph
) -> Tuple[ConjunctiveQuery, Database]:
    """The ECQ ``phi(G)`` and database ``D(G')`` of the paper's encoding.

    The query has one free variable per pattern vertex and no existential
    variables; its hypergraph is (the arity-2 hypergraph of) the pattern, so
    its treewidth equals the pattern's treewidth.
    """
    if pattern.number_of_nodes() == 0:
        raise ValueError("the pattern graph must have at least one vertex")
    if pattern.number_of_edges() == 0:
        raise ValueError(
            "the pattern graph needs at least one edge (every query variable "
            "must occur in an atom)"
        )
    variables = {vertex: f"x_{vertex}" for vertex in pattern.nodes()}
    atoms = [Atom("E", (variables[u], variables[v])) for u, v in pattern.edges()]
    disequalities = [
        Disequality(variables[u], variables[v]) for u, v in common_neighbour_pairs(pattern)
    ]
    ordered_free = [variables[v] for v in sorted(pattern.nodes(), key=repr)]
    # Vertices with no incident edge would not occur in any atom; they were
    # excluded above by requiring at least one edge, but isolated vertices in a
    # pattern with edges still need an atom — add a self-loop-free guard by
    # rejecting them explicitly.
    isolated = [v for v in pattern.nodes() if pattern.degree(v) == 0]
    if isolated:
        raise ValueError(
            f"pattern has isolated vertices {isolated!r}; the encoding requires "
            "every pattern vertex to occur in an edge"
        )
    query = ConjunctiveQuery(
        free_variables=ordered_free, atoms=atoms, disequalities=disequalities
    )
    database = Database.from_graph_edges(host.edges(), symmetric=True,
                                         universe=host.nodes())
    return query, database


def is_locally_injective_homomorphism(
    mapping: Dict[Hashable, Hashable], pattern: nx.Graph, host: nx.Graph
) -> bool:
    """Direct check of the definition (reference semantics for tests)."""
    for u, v in pattern.edges():
        if not host.has_edge(mapping[u], mapping[v]):
            return False
    for vertex in pattern.nodes():
        neighbours = list(pattern.neighbors(vertex))
        images = [mapping[n] for n in neighbours]
        if len(set(images)) != len(images):
            return False
    return True


def count_locally_injective_homomorphisms_exact(
    pattern: nx.Graph, host: nx.Graph
) -> int:
    """Exact #LIHom(G, G') by brute-force enumeration of all vertex maps
    (ground truth; exponential in |V(G)|)."""
    pattern_vertices = sorted(pattern.nodes(), key=repr)
    host_vertices = sorted(host.nodes(), key=repr)
    count = 0
    for images in itertools.product(host_vertices, repeat=len(pattern_vertices)):
        mapping = dict(zip(pattern_vertices, images))
        if is_locally_injective_homomorphism(mapping, pattern, host):
            count += 1
    return count


def count_locally_injective_homomorphisms_approx(
    pattern: nx.Graph,
    host: nx.Graph,
    epsilon: float = 0.2,
    delta: float = 0.05,
    rng: RNGLike = None,
    oracle_mode: str = "auto",
    engine: str = DEFAULT_ENGINE,
) -> float:
    """Corollary 6: approximate #LIHom(G, G') with the Theorem-5 FPTRAS on the
    ECQ encoding, dispatched through the unified scheme registry.  ``engine``
    selects the CSP engine backing the Hom oracle."""
    query, database = lihom_query_and_database(pattern, host)
    return REGISTRY.count(
        "fptras_ecq", query, database, epsilon=epsilon, delta=delta, rng=rng,
        oracle_mode=oracle_mode, engine=engine,
    ).estimate
