"""Applications of the counting machinery discussed in the paper:

* locally injective homomorphisms (Corollary 6),
* the Hamiltonian-path encoding behind the no-FPRAS result (Observation 10),
* the star / common-neighbour query family of footnote 4.
"""

from repro.applications.locally_injective import (
    count_locally_injective_homomorphisms_approx,
    count_locally_injective_homomorphisms_exact,
    is_locally_injective_homomorphism,
    lihom_query_and_database,
)
from repro.applications.hamiltonian import (
    count_hamiltonian_paths_dp,
    count_hamiltonian_paths_via_query,
    hamiltonian_instance,
)
from repro.applications.star_queries import (
    count_star_answers_centre_free_closed_form,
    count_star_answers_exact,
    star_instance,
)

__all__ = [
    "lihom_query_and_database",
    "is_locally_injective_homomorphism",
    "count_locally_injective_homomorphisms_exact",
    "count_locally_injective_homomorphisms_approx",
    "hamiltonian_instance",
    "count_hamiltonian_paths_dp",
    "count_hamiltonian_paths_via_query",
    "star_instance",
    "count_star_answers_exact",
    "count_star_answers_centre_free_closed_form",
]
