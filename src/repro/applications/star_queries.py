"""The star / common-neighbour query family of footnote 4.

The query ``phi(x_1, ..., x_k) = ∃y ⋀_i E(y, x_i)`` asks for tuples of
vertices with a common neighbour.  The paper uses it to illustrate the
technical difficulty of quantified variables:

* *deciding* whether an answer exists is trivial (any graph with one edge),
* *exactly counting* answers cannot beat brute force under SETH [16],
* *approximately counting* is easy: Arenas et al. give an FPRAS, and
  Theorem 5 gives an FPTRAS even with added pairwise disequalities,
* making ``y`` free makes even exact counting easy (treewidth-1 homomorphism
  counting): the count is ``Σ_y deg(y)^k``.

This module packages the instances and the closed form for the easy variant.
"""

from __future__ import annotations

from typing import Tuple

import networkx as nx

from repro.core.registry import REGISTRY
from repro.queries.builders import star_query
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Database


def star_instance(
    graph: nx.Graph,
    k: int,
    centre_free: bool = False,
    with_disequalities: bool = False,
) -> Tuple[ConjunctiveQuery, Database]:
    """The footnote-4 instance: the star query with ``k`` leaves over the
    database of ``graph``."""
    query = star_query(k, centre_free=centre_free, with_disequalities=with_disequalities)
    database = Database.from_graph_edges(graph.edges(), symmetric=True,
                                         universe=graph.nodes())
    return query, database


def count_star_answers_exact(
    graph: nx.Graph,
    k: int,
    centre_free: bool = False,
    with_disequalities: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> int:
    """Exact answer count of the footnote-4 instance via the registry's
    ``exact`` scheme (CSP-backed); ``engine`` selects the CSP engine
    (``"indexed"``/``"naive"``).

    For the centre-free variant this matches
    :func:`count_star_answers_centre_free_closed_form` (cross-checked in the
    tests), at exponential-in-``k`` cost instead of the closed form.
    """
    query, database = star_instance(
        graph, k, centre_free=centre_free, with_disequalities=with_disequalities
    )
    return REGISTRY.count("exact", query, database, engine=engine).count


def count_star_answers_centre_free_closed_form(graph: nx.Graph, k: int) -> int:
    """Exact answer count for the *centre-free* variant
    ``phi'(x_1, ..., x_k, y) = ⋀_i E(y, x_i)``: every answer fixes ``y`` and
    independently chooses each ``x_i`` among ``y``'s neighbours, so the count
    is ``Σ_y deg(y)^k`` (the footnote's "easy" case)."""
    if k <= 0:
        raise ValueError("k must be positive")
    return sum(graph.degree(v) ** k for v in graph.nodes())
