"""Streaming workload driver: interleaved insert/delete/query schedules.

The batch workload (:mod:`repro.service.workload`) models a fixed database
hit by a burst of queries; this module models the *streaming* regime — a
database mutating continuously while subscribed queries are read between
mutations.  It produces randomized schedules over the existing synthetic
generators and replays them against ``CountingService.subscribe`` —
:func:`run_stream` is the ``python -m repro stream`` CLI backend, and
:func:`stream_schedule` (restricted to pure mutation events) drives the
``benchmarks/record_perf.py --suite stream`` measurement loop.

A schedule is a list of :class:`StreamEvent`\\ s:

* ``insert`` — add a random fact to a relation (mostly within the existing
  universe; occasionally a fresh vertex, exercising universe growth),
* ``delete`` — remove a random currently-present fact,
* ``query`` — read one of the subscriptions.

Determinism: schedules are generated from a seed, and replaying the same
schedule with the same seeds yields identical exact counts (the differential
tests additionally verify each exact read against a from-scratch recount).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Database, Fact
from repro.service.service import CountingService
from repro.util.rng import RNGLike, as_generator

#: Relative frequencies of the event kinds in a default mixed schedule.
DEFAULT_MIX = {"insert": 0.25, "delete": 0.15, "query": 0.6}


@dataclass(frozen=True)
class StreamEvent:
    """One step of a streaming schedule."""

    kind: str  # "insert" | "delete" | "query"
    relation: Optional[str] = None
    fact: Optional[Fact] = None
    query_index: Optional[int] = None


def stream_schedule(
    num_events: int,
    database: Database,
    num_queries: int,
    rng: RNGLike = None,
    mix: Optional[Dict[str, float]] = None,
    relations: Optional[Sequence[str]] = None,
    fresh_vertex_probability: float = 0.05,
) -> List[StreamEvent]:
    """A randomized interleaving of ``num_events`` inserts, deletes and query
    reads over ``database``'s relations.

    Inserts draw uniform pairs over the universe (or, with
    ``fresh_vertex_probability``, introduce a new vertex); deletes pick a
    random present fact and are skipped for empty relations (an insert is
    scheduled instead).  ``relations`` defaults to every declared relation.
    The database is **not** mutated — the schedule is replayed later by
    :func:`run_stream`.
    """
    if num_events <= 0:
        raise ValueError("num_events must be positive")
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    generator = as_generator(rng)
    mix = dict(DEFAULT_MIX if mix is None else mix)
    kinds = sorted(mix)
    weights = [mix[kind] for kind in kinds]
    total = sum(weights)
    if total <= 0:
        raise ValueError("mix weights must have a positive sum")
    probabilities = [weight / total for weight in weights]
    names = list(relations) if relations is not None else database.signature.names()
    if not names:
        raise ValueError("database declares no relations to mutate")
    arities = {name: database.signature[name].arity for name in names}

    # Track the evolving relation contents and universe while scheduling, so
    # deletes always name a fact that will be present at replay time.
    contents: Dict[str, set] = {name: set(database.relation(name)) for name in names}
    universe = list(database.canonical_universe())
    next_fresh = 0

    def fresh_vertex():
        nonlocal next_fresh
        while f"v{next_fresh}" in database.universe:
            next_fresh += 1
        name = f"v{next_fresh}"
        next_fresh += 1
        return name

    events: List[StreamEvent] = []
    for _ in range(num_events):
        kind = kinds[int(generator.choice(len(kinds), p=probabilities))]
        if kind == "query":
            events.append(
                StreamEvent(
                    kind="query",
                    query_index=int(generator.integers(0, num_queries)),
                )
            )
            continue
        relation = names[int(generator.integers(0, len(names)))]
        if kind == "delete" and contents[relation]:
            facts = sorted(contents[relation], key=repr)
            fact = facts[int(generator.integers(0, len(facts)))]
            contents[relation].discard(fact)
            events.append(StreamEvent(kind="delete", relation=relation, fact=fact))
            continue
        # Insert (also the fallback when a delete found the relation empty).
        arity = arities[relation]
        fact = None
        for _attempt in range(8):
            values = []
            for _position in range(arity):
                if universe and generator.random() >= fresh_vertex_probability:
                    values.append(universe[int(generator.integers(0, len(universe)))])
                else:
                    vertex = fresh_vertex()
                    universe.append(vertex)
                    values.append(vertex)
            candidate = tuple(values)
            if candidate not in contents[relation]:
                fact = candidate
                break
        if fact is None:
            # Near-saturated relation: force a genuinely new fact through a
            # fresh vertex rather than replaying a no-op insert.
            vertex = fresh_vertex()
            universe.append(vertex)
            fact = (vertex,) * arity
        contents[relation].add(fact)
        events.append(StreamEvent(kind="insert", relation=relation, fact=fact))
    return events


@dataclass
class StreamReport:
    """What a :func:`run_stream` replay did and how fast."""

    num_events: int
    inserts: int
    deletes: int
    reads: int
    refreshes: int
    #: Reads served without a refresh because the query's relations were
    #: untouched since the stored value.
    fresh_serves: int
    #: Reads that served a stale value (policy deferred the refresh).
    stale_serves: int
    #: Refresh modes observed, e.g. ``{"delta": 12, "reestimate": 3}``.
    modes: Dict[str, int]
    wall_seconds: float
    #: Wall-clock seconds the subscriptions spent inside refreshes (summed
    #: ``CountSubscription.spent_seconds`` — the refresh-timing share of
    #: ``wall_seconds``).
    refresh_seconds: float = 0.0
    #: Final per-subscription estimates, by query index.
    final_estimates: List[float] = field(default_factory=list)
    verified_reads: int = 0

    @property
    def events_per_second(self) -> float:
        return self.num_events / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_events": self.num_events,
            "inserts": self.inserts,
            "deletes": self.deletes,
            "reads": self.reads,
            "refreshes": self.refreshes,
            "fresh_serves": self.fresh_serves,
            "stale_serves": self.stale_serves,
            "modes": dict(self.modes),
            "wall_seconds": round(self.wall_seconds, 6),
            "refresh_seconds": round(self.refresh_seconds, 6),
            "events_per_second": round(self.events_per_second, 2),
            "final_estimates": list(self.final_estimates),
            "verified_reads": self.verified_reads,
        }


def run_stream(
    service: CountingService,
    queries: Sequence[ConjunctiveQuery],
    database: Database,
    schedule: Sequence[StreamEvent],
    refresh: str = "eager",
    debounce_ticks: int = 4,
    budget_seconds: float = 1.0,
    seed: Optional[int] = None,
    verify: bool = False,
) -> Tuple[StreamReport, List]:
    """Replay ``schedule`` against live subscriptions on ``queries``.

    One subscription per query is opened up front (seeded
    ``derive_seed(seed, i)``-style via the request seed), mutation events are
    applied to ``database``, and query events read the addressed
    subscription.  With ``verify=True`` every read of an exact-scheme
    subscription is checked against a from-scratch recount (slow; used by the
    differential tests and the bench's verification pass).

    Returns ``(report, subscriptions)``; the subscriptions are left open so
    callers can keep reading, and should be ``close()``\\ d when done.
    """
    from repro.core.exact import count_answers_exact
    from repro.stream.live import EXACT_SCHEMES
    from repro.util.rng import derive_seed

    subscriptions = []
    for index, query in enumerate(queries):
        from repro.service.service import CountRequest

        request = CountRequest(
            query=query,
            database=database,
            seed=None if seed is None else derive_seed(seed, index),
        )
        subscriptions.append(
            service.subscribe(
                request,
                refresh=refresh,
                debounce_ticks=debounce_ticks,
                budget_seconds=budget_seconds,
            )
        )

    inserts = deletes = reads = refreshes = fresh_serves = stale_serves = 0
    verified = 0
    modes: Dict[str, int] = {}
    started = time.perf_counter()
    for event in schedule:
        if event.kind == "insert":
            database.add_fact(event.relation, event.fact)
            inserts += 1
        elif event.kind == "delete":
            database.remove_fact(event.relation, event.fact)
            deletes += 1
        elif event.kind == "query":
            subscription = subscriptions[event.query_index % len(subscriptions)]
            live = subscription.read()
            reads += 1
            if live.refreshed:
                refreshes += 1
                modes[live.mode] = modes.get(live.mode, 0) + 1
            elif live.fresh:
                fresh_serves += 1
            else:
                stale_serves += 1
            if verify and live.fresh and subscription.scheme in EXACT_SCHEMES:
                expected = count_answers_exact(subscription.query, database)
                if live.estimate != expected:
                    raise AssertionError(
                        f"incremental count diverged: query "
                        f"{event.query_index} live={live.estimate} "
                        f"recount={expected}"
                    )
                verified += 1
        else:
            raise ValueError(f"unknown stream event kind {event.kind!r}")
    wall = time.perf_counter() - started

    # The final forced reads happen before the report so their refresh time
    # is included in ``refresh_seconds``.
    final_estimates = [sub.read(force=True).estimate for sub in subscriptions]
    report = StreamReport(
        num_events=len(schedule),
        inserts=inserts,
        deletes=deletes,
        reads=reads,
        refreshes=refreshes,
        fresh_serves=fresh_serves,
        stale_serves=stale_serves,
        modes=modes,
        wall_seconds=wall,
        refresh_seconds=sum(sub.spent_seconds for sub in subscriptions),
        final_estimates=final_estimates,
        verified_reads=verified,
    )
    return report, subscriptions


__all__ = [
    "StreamEvent",
    "StreamReport",
    "stream_schedule",
    "run_stream",
    "DEFAULT_MIX",
]
