"""Live count handles: subscriptions that stay (approximately) current.

``CountingService.subscribe(request)`` returns a :class:`CountSubscription` —
a long-lived handle on one ``(query, database)`` pair whose value survives
database mutations.  Every :meth:`~CountSubscription.read` returns a
:class:`LiveCount` carrying the estimate *and* its staleness metadata, and
decides — according to the subscription's refresh policy — whether to fold
the pending mutations in first:

* **Untouched-relation updates are free.**  The subscription stores the
  database fingerprint restricted to the query's relations (the same
  restriction the service result cache keys on), so mutations elsewhere do
  not even make the handle stale.  Universe growth is likewise ignored when
  every query variable occurs in a positive atom (then new elements cannot
  carry new answers without a touched fact).
* **Touched-relation updates on exact schemes delta-patch.**  The database's
  shared :class:`~repro.relational.changelog.ChangeLog` yields the net delta
  since the stored fingerprint; :func:`repro.stream.delta.delta_count_exact`
  turns it into ``new - old`` and the stored value is patched — bit-identical
  to a from-scratch recount, at delta cost.  When the log has a gap or the
  delta argument is inapplicable (see
  :func:`~repro.stream.delta.delta_applicable`), the subscription falls back
  to a full recount through the service (plan pinned at subscribe time).
* **Touched-relation updates on approximate schemes re-estimate** through the
  scheme registry with a deterministically derived seed
  (``derive_seed(base_seed, refresh_index)``), so a refreshed read equals the
  direct registry call with the same seed.  Results land in the service
  result cache under the current fingerprint, and refreshes check that cache
  first — concurrent subscriptions on the same shape share work.

Refresh policies (``refresh=``):

``"eager"``
    Every read of a stale handle refreshes before returning.
``"debounced"``
    Refresh only once at least ``debounce_ticks`` mutation ticks (version
    bumps of the query's relations) have accumulated; earlier reads serve
    the stale value, marked as such.
``"budget"``
    Refresh while the accumulated refresh cost stays under
    ``budget_seconds``; once exhausted, reads serve stale values until
    :meth:`~CountSubscription.add_budget` tops the account up.

``read(force=True)`` (or :meth:`~CountSubscription.refresh`) overrides any
policy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.obs.profile import fingerprint_class
from repro.obs.trace import activate, span
from repro.queries.canonical import query_relation_names
from repro.relational.changelog import ChangeLog, ChangeLogGap, rewind
from repro.resilience.retry import RetriesExhausted, run_with_retry
from repro.stream.delta import delta_applicable, delta_count_exact
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from repro.relational.structure import Structure
    from repro.service.service import CountingService, CountRequest

#: Registered schemes whose estimates are error-free integers; only these can
#: be delta-patched (an approximation's estimate is a random variable, not a
#: count one can add a delta to).
EXACT_SCHEMES = frozenset({"exact", "oracle_exact"})

REFRESH_POLICIES = ("eager", "debounced", "budget")

#: Drift re-planning knobs: a refresh first re-plans when the database has
#: crossed a fingerprint (log2 size) class since the plan was made, or when
#: the rolling mean of the last ``REPLAN_ERROR_WINDOW`` predicted-vs-actual
#: latency ratios exceeds ``REPLAN_ERROR_THRESHOLD`` — the "cheap-exact at
#: 1k facts isn't cheap at 10M" case.  Re-plans that change the scheme (or
#: engine) show up as ``stream.replan`` span events, a ``stream.replans``
#: counter increment, and provenance on the next :class:`LiveCount`.
REPLAN_ERROR_WINDOW = 4
REPLAN_ERROR_THRESHOLD = 4.0


@dataclass(frozen=True)
class LiveCount:
    """One read of a subscription: the estimate plus staleness metadata."""

    estimate: float
    scheme: str
    query_class: str
    #: ``True`` when the value reflects the database contents at read time.
    fresh: bool
    #: Whether *this* read performed a refresh.
    refreshed: bool
    #: How the served value was (last) computed: ``"initial"`` | ``"delta"``
    #: | ``"recount"`` | ``"reestimate"`` | ``"cached"``.
    mode: str
    #: Version bumps of the query's relations not yet folded into the value
    #: (0 when fresh).
    pending_ticks: int
    #: Refreshes performed over the subscription's lifetime (initial compute
    #: excluded).
    refresh_count: int
    #: The seed the served value was computed with (``None`` for exact
    #: schemes); a direct registry call with this seed reproduces it.
    seed: Optional[int]
    epsilon: float
    delta: float
    #: Resilience provenance of the last refresh attempt: injected faults
    #: absorbed by retries, or the stale-serve note when retries ran out.
    degradations: Tuple[str, ...] = ()
    #: Change-log gaps survived so far: each one forced a full recount, after
    #: which the fingerprint re-anchors so later refreshes delta-patch again.
    gap_recounts: int = 0
    #: Drift re-plans that changed the scheme/engine over the subscription's
    #: lifetime, and one provenance note per re-plan (what crossed, old ->
    #: new scheme).
    replans: int = 0
    replan_events: Tuple[str, ...] = ()

    @property
    def count(self) -> int:
        """The estimate rounded to the nearest integer."""
        return int(round(self.estimate))


class _StreamState:
    """Per-database streaming state the service keeps: one shared change log
    plus the live subscriptions reading it.

    The log only records relations some live subscription watches (refcounted
    via :meth:`watch`/part of :meth:`discard`), so heavy churn on unwatched
    relations — the advertised "free" path — cannot grow it."""

    def __init__(self, database: "Structure") -> None:
        self.database = database
        self._watched: Dict[str, int] = {}
        self.changelog = ChangeLog(
            database, relation_filter=self._watched.__contains__
        )
        self.subscriptions: List["CountSubscription"] = []

    def watch(self, relation_names) -> None:
        """Start recording ``relation_names`` (called before the watching
        subscription takes its first fingerprint)."""
        for name in relation_names:
            count = self._watched.get(name, 0)
            if count == 0:
                # The unrecorded window ends here; covers() must know.
                self.changelog.mark_floor(name)
            self._watched[name] = count + 1

    def unwatch(self, relation_names) -> None:
        for name in relation_names:
            count = self._watched.get(name, 0) - 1
            if count <= 0:
                self._watched.pop(name, None)
            else:
                self._watched[name] = count

    def discard(self, subscription: "CountSubscription") -> bool:
        """Remove a subscription; returns ``True`` when none remain (the
        caller then detaches the change log and drops this state)."""
        try:
            self.subscriptions.remove(subscription)
            self.unwatch(subscription._relations)
        except ValueError:
            pass
        if not self.subscriptions:
            self.changelog.detach()
            return True
        self.trim()
        return False

    def trim(self) -> None:
        """Drop change-log events no live subscription can still ask about:
        per relation, everything at or before the minimum subscribed
        fingerprint version (relations no subscription watches are trimmed
        to the present)."""
        floors: Dict[str, int] = {}
        for subscription in self.subscriptions:
            _, relation_versions = subscription._fingerprint
            for name, version in relation_versions:
                floors[name] = min(floors.get(name, version), version)
        current = self.database._relation_versions
        entries = tuple(
            (name, floors.get(name, current.get(name, 0)))
            for name in self.changelog.recorded_relations()
        )
        if entries:
            self.changelog.trim((0, entries))


class CountSubscription:
    """A live handle on one ``(query, database)`` count.

    Created by :meth:`repro.service.service.CountingService.subscribe`; not
    instantiated directly.  The plan (scheme, engine) is pinned at subscribe
    time so refreshes never silently hop between schemes as the database
    grows.
    """

    def __init__(
        self,
        service: "CountingService",
        request: "CountRequest",
        state: _StreamState,
        refresh: str = "eager",
        debounce_ticks: int = 4,
        budget_seconds: float = 1.0,
    ) -> None:
        if refresh not in REFRESH_POLICIES:
            raise ValueError(
                f"unknown refresh policy {refresh!r}; expected one of "
                f"{REFRESH_POLICIES}"
            )
        if debounce_ticks < 1:
            raise ValueError("debounce_ticks must be at least 1")
        self._service = service
        self._request = request
        self._state = state
        self._database = request.database
        self._policy = refresh
        self._debounce_ticks = int(debounce_ticks)
        self._budget_seconds = float(budget_seconds)
        self._spent_seconds = 0.0
        self._closed = False

        self.query = request.query
        self.epsilon = (
            request.epsilon if request.epsilon is not None else service.config.epsilon
        )
        self.delta = (
            request.delta if request.delta is not None else service.config.delta
        )
        self._base_seed = request.seed
        self._relations = query_relation_names(request.query)
        from repro.queries.prepared import prepare

        # The query never changes; compute its canonical key once instead of
        # re-canonicalising on every refresh's cache lookup.
        self._canonical_key = prepare(request.query).canonical_key
        # Universe growth can only matter when some variable ranges outside
        # the positive atoms (see delta_applicable); otherwise ignore it.
        self._universe_sensitive = not delta_applicable(request.query, True)
        self.plan = service.planner.plan(
            request.query,
            self._database,
            override=request.method,
            latency_budget_seconds=service._resolve_budget(
                request.latency_budget_seconds
            ),
        )
        self.scheme = self.plan.scheme
        self.query_class = self.plan.query_class
        #: Drift tracking: the fingerprint class the current plan was made
        #: at, the rolling predicted-vs-actual ratios of recent refreshes,
        #: and the re-plan provenance served on every LiveCount.
        self._planned_class = fingerprint_class(self._database.size())
        self._error_ratios: List[float] = []
        self._replans = 0
        self._replan_events: Tuple[str, ...] = ()
        self._force_recount = False

        # Initial compute, through the service (plans, caches, registry).
        self._refresh_count = 0
        #: Position among the state's subscriptions at creation — the stable
        #: half of this subscription's ``stream.refresh`` fault key.
        self._ordinal = len(state.subscriptions)
        self._degradations: Tuple[str, ...] = ()
        self._gap_recounts = 0
        self._gap_note: Optional[str] = None
        self._last_seed = self._seed_for(0)
        result = service.submit(
            request.query,
            self._database,
            epsilon=self.epsilon,
            delta=self.delta,
            seed=self._last_seed,
            method=self.scheme,
        )
        self._estimate = result.estimate
        self._mode = "initial"
        self._fingerprint = self._current_fingerprint()

    # -------------------------------------------------------------- internals
    def _seed_for(self, refresh_index: int) -> Optional[int]:
        if self.scheme in EXACT_SCHEMES:
            # Exact schemes ignore randomness; a stable None seed makes their
            # result-cache entries shareable across refreshes and callers.
            return None
        if self._base_seed is None:
            return None
        return derive_seed(self._base_seed, refresh_index)

    def _current_fingerprint(self) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        return self._database.version_fingerprint(self._relations)

    def pending_ticks(self) -> int:
        """Version bumps of the query's relations (plus universe growth, when
        this query is sensitive to it) since the stored value."""
        old_universe, old_relations = self._fingerprint
        new_universe, new_relations = self._current_fingerprint()
        ticks = sum(
            new_version - old_version
            for (_, old_version), (_, new_version) in zip(old_relations, new_relations)
        )
        if self._universe_sensitive:
            ticks += new_universe - old_universe
        return ticks

    def _should_refresh(self, ticks: int) -> bool:
        if ticks <= 0:
            return False
        if self._policy == "eager":
            return True
        if self._policy == "debounced":
            return ticks >= self._debounce_ticks
        return self._spent_seconds < self._budget_seconds

    def _result_cache_key(self, seed: Optional[int]):
        return self._service._result_key(
            self._canonical_key, self._request, self.plan,
            self.epsilon, self.delta, seed,
        )

    def _refresh(self) -> None:
        """Fold pending mutations in, under the service's failure model.

        The refresh body is one retryable operation at the
        ``stream.refresh`` fault site (key = subscription ordinal + refresh
        index); a retried refresh re-runs with the same derived seed, so
        recovery is bit-identical.  When retries run out the subscription
        *serves stale*: the stored value, fingerprint, and refresh index all
        stay put, so the next read simply tries this refresh again.

        Telemetry: each refresh records a ``stream.refresh`` span on the
        service's tracer (a nested ``submit`` nests under it thanks to
        tracer re-activation being a no-op), a per-mode refresh counter and
        a refresh-latency histogram on the service's metrics registry."""
        spent_before = self._spent_seconds
        refreshes_before = self._refresh_count
        with activate(self._service.tracer):
            with span(
                "stream.refresh",
                ordinal=self._ordinal,
                refresh_index=self._refresh_count + 1,
                scheme=self.scheme,
            ) as refresh_span:
                self._maybe_replan(refresh_span)
                self._refresh_inner()
                # A refresh that did not advance the counter exhausted its
                # retries and the subscription is serving stale.
                mode = self._mode if self._refresh_count > refreshes_before else "stale"
                refresh_span.set(mode=mode)
                for note in self._degradations:
                    refresh_span.event(note)
        metrics = self._service.metrics
        metrics.counter("stream.refreshes", mode=mode).inc()
        metrics.histogram("stream.refresh_seconds").observe(
            self._spent_seconds - spent_before
        )

    def _maybe_replan(self, refresh_span) -> None:
        """Drift detection, run before every refresh folds mutations in (so
        a re-planned refresh never misses an update): re-plan when the
        database crossed a fingerprint class since planning, or when the
        rolling predicted-vs-actual latency error of the pinned scheme
        exceeds the threshold.  A ``method=``-forced subscription re-plans
        too (size-dependent engine upgrades still apply) but can never hop
        schemes — the override wins inside the planner."""
        current_class = fingerprint_class(self._database.size())
        reason = None
        if current_class != self._planned_class:
            reason = (
                f"size bucket crossed: 2^{self._planned_class} -> "
                f"2^{current_class}"
            )
        elif len(self._error_ratios) >= REPLAN_ERROR_WINDOW:
            mean_ratio = sum(self._error_ratios) / len(self._error_ratios)
            if mean_ratio > REPLAN_ERROR_THRESHOLD:
                reason = (
                    f"rolling prediction error {mean_ratio:.2f}x exceeds "
                    f"threshold {REPLAN_ERROR_THRESHOLD}x"
                )
        if reason is None:
            return
        fresh = self._service.planner.plan(
            self.query,
            self._database,
            override=self._request.method,
            latency_budget_seconds=self._service._resolve_budget(
                self._request.latency_budget_seconds
            ),
        )
        self._planned_class = current_class
        self._error_ratios = []
        changed = (fresh.scheme, fresh.engine) != (self.plan.scheme, self.plan.engine)
        old_scheme = self.scheme
        self.plan = fresh
        self.scheme = fresh.scheme
        self.query_class = fresh.query_class
        if not changed:
            return
        # The stored estimate came from the old scheme; delta-patching it
        # under the new plan would corrupt the stream, so the next refresh
        # recounts from scratch (the result cache stays safe — its keys
        # carry the scheme).
        self._force_recount = True
        self._replans += 1
        note = (
            f"stream.replan[{self._ordinal}]: {reason}; "
            f"{old_scheme} -> {self.scheme}"
        )
        self._replan_events = self._replan_events + (note,)
        refresh_span.event(
            "stream.replan",
            reason=reason,
            old_scheme=old_scheme,
            new_scheme=self.scheme,
        )
        refresh_span.set(scheme=self.scheme)
        self._service.metrics.counter("stream.replans").inc()

    def _note_prediction_error(self, seconds: float) -> None:
        """Feed the rolling drift window with one refresh's actual latency
        against the cost model's current prediction for the pinned scheme
        (skipped while the sketch is cold — no prediction to be wrong)."""
        prediction = self._service.cost_model.predict(
            self._canonical_key,
            self._database.size(),
            self.scheme,
            self.plan.engine,
        )
        if prediction.cold or not prediction.seconds:
            return
        self._error_ratios.append(seconds / prediction.seconds)
        del self._error_ratios[:-REPLAN_ERROR_WINDOW]

    def _refresh_inner(self) -> None:
        started = time.perf_counter()
        seed = self._seed_for(self._refresh_count + 1)
        self._gap_note = None

        def work() -> None:
            key = self._result_cache_key(seed)
            cached = self._service.result_cache.get(key)
            if cached is not None:
                self._estimate = cached
                self._mode = "cached"
            elif (
                not self._force_recount
                and self.scheme in EXACT_SCHEMES
                and self._try_delta_patch()
            ):
                self._service.result_cache.put(key, self._estimate)
            else:
                result = self._service.submit(
                    self.query,
                    self._database,
                    epsilon=self.epsilon,
                    delta=self.delta,
                    seed=seed,
                    method=self.scheme,
                )
                self._estimate = result.estimate
                self._mode = (
                    "recount" if self.scheme in EXACT_SCHEMES else "reestimate"
                )
                self._note_prediction_error(result.execute_seconds)

        site_key = (self._ordinal, self._refresh_count + 1)
        try:
            _, trace = run_with_retry(
                work,
                sites=(("stream.refresh", site_key),),
                policy=self._service.config.retry,
                plan=self._service.config.fault_plan,
            )
        except RetriesExhausted as error:
            self._degradations = (
                f"stream.refresh{list(site_key)}: retries exhausted; "
                f"serving stale value ({error})",
            )
            self._spent_seconds += time.perf_counter() - started
            return
        notes = list(trace.notes)
        if self._gap_note is not None:
            self._gap_recounts += 1
            notes.append(self._gap_note)
        self._degradations = tuple(notes)
        self._refresh_count += 1
        self._force_recount = False
        self._last_seed = seed
        # Re-anchor: the new fingerprint is taken *after* the refresh folded
        # everything in, and trim() below floors the shared log at the
        # subscriptions' new minima — so even a gap-forced recount leaves the
        # log able to delta-patch the next refresh.
        self._fingerprint = self._current_fingerprint()
        self._spent_seconds += time.perf_counter() - started
        self._state.trim()

    def _try_delta_patch(self) -> bool:
        """Patch the stored exact count from the change log's net delta;
        ``False`` when the log has a gap or the delta argument is unsound
        here (the caller then recounts)."""
        old_universe, _ = self._fingerprint
        universe_changed = self._database._universe_version != old_universe
        if not delta_applicable(self.query, universe_changed):
            return False
        changelog = self._state.changelog
        try:
            delta = changelog.delta_since(self._fingerprint)
        except ChangeLogGap as gap:
            self._gap_note = (
                f"stream.refresh[{self._ordinal}]: change-log gap ({gap}); "
                "full recount, fingerprint re-anchored"
            )
            return False
        if delta:
            old_database = rewind(self._database, delta)
            report = delta_count_exact(
                self.query, old_database, self._database, delta,
                engine=self.plan.engine,
            )
            self._estimate = self._estimate + report.delta
        self._mode = "delta"
        return True

    # ----------------------------------------------------------------- public
    def read(self, force: bool = False) -> LiveCount:
        """The current value, refreshed first when the policy (or ``force``)
        says so.  Always cheap when the query's relations are untouched."""
        if self._closed:
            raise RuntimeError("subscription is closed")
        ticks = self.pending_ticks()
        refreshed = False
        if force and ticks > 0 or not force and self._should_refresh(ticks):
            self._refresh()
            # A refresh that exhausted its retries serves stale: the
            # fingerprint did not advance, so the ticks stay pending.
            ticks = self.pending_ticks()
            refreshed = ticks == 0
        return LiveCount(
            estimate=self._estimate,
            scheme=self.scheme,
            query_class=self.query_class,
            fresh=ticks == 0,
            refreshed=refreshed,
            mode=self._mode,
            pending_ticks=ticks,
            refresh_count=self._refresh_count,
            seed=self._last_seed,
            epsilon=self.epsilon,
            delta=self.delta,
            degradations=self._degradations,
            gap_recounts=self._gap_recounts,
            replans=self._replans,
            replan_events=self._replan_events,
        )

    def refresh(self) -> LiveCount:
        """Fold every pending mutation in now, regardless of policy."""
        return self.read(force=True)

    def add_budget(self, seconds: float) -> None:
        """Top up a ``refresh="budget"`` subscription's refresh account."""
        self._budget_seconds += float(seconds)

    @property
    def spent_seconds(self) -> float:
        """Total wall-clock seconds spent refreshing (budget accounting)."""
        return self._spent_seconds

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the subscription (idempotent).  The database's change log
        is detached when its last subscription closes."""
        if not self._closed:
            self._closed = True
            self._service._drop_subscription(self)

    def __enter__(self) -> "CountSubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"CountSubscription(scheme={self.scheme!r}, policy={self._policy!r}, "
            f"estimate={self._estimate}, refreshes={self._refresh_count})"
        )


__all__ = [
    "LiveCount",
    "CountSubscription",
    "REFRESH_POLICIES",
    "EXACT_SCHEMES",
]
