"""Exact delta counting: maintain ``|Ans(phi, D)|`` under fact mutations.

Given the net :class:`~repro.relational.changelog.RelationDelta`s between an
old database state and the current one, this module computes

    ``delta = |Ans(phi, D_new)| - |Ans(phi, D_old)|``

without recounting either side from scratch.  The key observation: a
solution that exists on one side but not the other must map some *touched
atom* onto a *delta fact* —

* a solution of ``D_new`` that is not a solution of ``D_old`` maps a positive
  atom onto an **inserted** fact or a negated atom onto a **deleted** fact;
* a solution of ``D_old`` that is not a solution of ``D_new`` maps a positive
  atom onto a **deleted** fact or a negated atom onto an **inserted** fact.

So all the work concentrates on the (typically tiny) delta, and the existing
indexed CSP/join engine does the counting with delta facts *pinned* in.  Two
strategies, both verified bit-identical to a from-scratch recount by the
differential tests:

``inclusion_exclusion`` (quantifier-free queries)
    With no existential variables, distinct solutions project to distinct
    answers, so ``|Ans| = |Sol|`` and the delta is a difference of *solution*
    counts.  "Solutions touching the delta" is counted by
    inclusion–exclusion over the touched atom occurrences: for every
    non-empty subset, constrain each chosen atom to its delta facts (an extra
    table constraint whose allowed set is the delta — GAC propagation then
    collapses the search space around those few facts) and count.

``candidates`` (general case)
    With existential variables, projections collide, so the delta enumerates
    **candidate answers** instead: project the pinned solutions on each side
    onto the free variables, then confirm each candidate by a satisfiability
    probe on the *other* side — a gained answer is a candidate of the new
    side that was not an answer of the old side, and vice versa for lost
    answers.  Candidates appearing on both sides cancel automatically (they
    are answers on both sides).

Soundness requires the assignment space itself not to have drifted: when the
universe grew between the two states, variables that occur only in
disequalities or negated atoms range over elements no delta fact mentions.
:func:`delta_applicable` detects that situation; callers fall back to a full
recount (the :class:`~repro.stream.live.CountSubscription` refresh loop does
this automatically).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.queries.query import ConjunctiveQuery
from repro.relational.changelog import StructureDelta
from repro.relational.csp import (
    DEFAULT_ENGINE,
    Constraint,
    CSPInstance,
    NotEqualConstraint,
    NotInRelationConstraint,
)
from repro.relational.structure import Structure

Element = Hashable
AnswerTuple = Tuple[Element, ...]

#: Above this many touched atom occurrences the ``2^k - 1`` terms of
#: inclusion–exclusion stop being worth it and the candidate strategy is used
#: instead.
INCLUSION_EXCLUSION_LIMIT = 4


@dataclass(frozen=True)
class DeltaCountReport:
    """The outcome of one incremental recount step."""

    #: ``|Ans(new)| - |Ans(old)|``.
    delta: int
    #: ``"inclusion_exclusion"`` | ``"candidates"`` | ``"noop"``.
    strategy: str
    #: Candidate answers confirmed against the other side ("candidates")
    #: or inclusion–exclusion terms evaluated ("inclusion_exclusion").
    work_units: int


def delta_applicable(query: ConjunctiveQuery, universe_changed: bool) -> bool:
    """Whether the touched-atom delta argument is sound for ``query``.

    Always sound while the universe is unchanged.  After universe growth it
    remains sound iff every variable occurs in a positive atom: then every
    solution maps each variable into some fact, new elements only occur in
    inserted facts, and the pinning argument goes through.  (The universe
    never shrinks — :meth:`Structure.remove_fact` keeps elements.)
    """
    if not universe_changed:
        return True
    covered: Set[str] = set()
    for atom in query.atoms:
        covered.update(atom.args)
    return covered >= set(query.variables)


# --------------------------------------------------------------- CSP plumbing
def _base_constraints(query: ConjunctiveQuery, database: Structure) -> List[object]:
    """The constraints of ``Sol(phi, D)`` — the same construction as
    :func:`repro.core.exact._solution_csp`, shared indexes included."""
    constraints: List[object] = []
    for atom in query.atoms:
        constraints.append(
            Constraint.trusted(atom.args, index=database.relation_index(atom.relation))
        )
    for atom in query.negated_atoms:
        forbidden = (
            database.relation(atom.relation)
            if atom.relation in database.signature
            else frozenset()
        )
        constraints.append(
            NotInRelationConstraint(scope=atom.args, forbidden=frozenset(forbidden))
        )
    for disequality in query.disequalities:
        constraints.append(NotEqualConstraint(disequality.left, disequality.right))
    return constraints


def _instance(
    query: ConjunctiveQuery,
    database: Structure,
    engine: str,
    extra_constraints: Sequence[object] = (),
    restrict: Optional[Dict[str, Set[Element]]] = None,
    search_order: Optional[Sequence[str]] = None,
) -> Optional[CSPInstance]:
    """A ``Sol(phi, D)`` instance with optional extra table constraints and
    restricted (e.g. pinned singleton) variable domains; ``None`` when a
    restriction has no value inside the universe (no solutions).

    ``search_order`` lets one refresh share a single min-fill computation
    across its many small pinned instances (the variable set never changes).
    """
    universe = database.canonical_universe()
    universe_set = database.universe
    domains: Dict[str, Set[Element]] = {}
    for variable in query.variables:
        if restrict is not None and variable in restrict:
            values = {
                value for value in restrict[variable] if value in universe_set
            }
            if not values:
                return None
            domains[variable] = values
        else:
            domains[variable] = set(universe)
    constraints = _base_constraints(query, database)
    constraints.extend(extra_constraints)
    return CSPInstance(
        domains, constraints, engine=engine, search_order=search_order
    )


def _pin_atom(scope: Sequence[str], fact: AnswerTuple) -> Optional[Dict[str, Element]]:
    """Map an atom's argument variables onto a fact's values; ``None`` when a
    repeated variable would need two different values."""
    pin: Dict[str, Element] = {}
    for variable, value in zip(scope, fact):
        if pin.setdefault(variable, value) != value:
            return None
    return pin


# --------------------------------------------------- touched-atom bookkeeping
def _touched_events(
    query: ConjunctiveQuery, delta: StructureDelta, side: str
) -> List[Tuple[Tuple[str, ...], FrozenSet[AnswerTuple]]]:
    """The ``(atom scope, delta facts)`` pairs whose pinning characterises the
    solutions present only on ``side`` (``"new"`` or ``"old"``).

    New-only solutions pin positive atoms to inserted facts or negated atoms
    to deleted facts; old-only solutions the other way around.
    """
    events: List[Tuple[Tuple[str, ...], FrozenSet[AnswerTuple]]] = []
    for atom in query.atoms:
        relation_delta = delta.get(atom.relation)
        if relation_delta is None:
            continue
        facts = relation_delta.added if side == "new" else relation_delta.removed
        if facts:
            events.append((atom.args, facts))
    for atom in query.negated_atoms:
        relation_delta = delta.get(atom.relation)
        if relation_delta is None:
            continue
        facts = relation_delta.removed if side == "new" else relation_delta.added
        if facts:
            events.append((atom.args, facts))
    return events


# --------------------------------------------------- strategy: incl-exclusion
def _count_touching(
    query: ConjunctiveQuery,
    database: Structure,
    events: Sequence[Tuple[Tuple[str, ...], FrozenSet[AnswerTuple]]],
    engine: str,
    search_order: Optional[Sequence[str]] = None,
) -> Tuple[int, int]:
    """``(count, terms)``: the number of solutions of ``phi`` over
    ``database`` whose assignment satisfies at least one event (maps the
    event's scope onto one of its delta facts), by inclusion–exclusion over
    the non-empty event subsets."""
    total = 0
    terms = 0
    for size in range(1, len(events) + 1):
        sign = 1 if size % 2 else -1
        for subset in itertools.combinations(events, size):
            extra = [
                Constraint.trusted(scope, allowed=facts) for scope, facts in subset
            ]
            instance = _instance(
                query, database, engine,
                extra_constraints=extra, search_order=search_order,
            )
            terms += 1
            if instance is not None:
                total += sign * instance.count_solutions()
    return total, terms


# ------------------------------------------------------- strategy: candidates
def _pinned_projections(
    query: ConjunctiveQuery,
    database: Structure,
    events: Sequence[Tuple[Tuple[str, ...], FrozenSet[AnswerTuple]]],
    engine: str,
    search_order: Optional[Sequence[str]] = None,
) -> Set[AnswerTuple]:
    """Projections onto the free variables of every solution of ``phi`` over
    ``database`` that maps some event's scope onto one of its delta facts."""
    free = query.free_variables
    projections: Set[AnswerTuple] = set()
    for scope, facts in events:
        for fact in facts:
            pin = _pin_atom(scope, fact)
            if pin is None:
                continue
            instance = _instance(
                query, database, engine,
                restrict={variable: {value} for variable, value in pin.items()},
                search_order=search_order,
            )
            if instance is None:
                continue
            for solution in instance._iter_assignments(None):
                projections.add(tuple(solution[v] for v in free))
    return projections


def _answers_among(
    query: ConjunctiveQuery,
    database: Structure,
    candidates: Set[AnswerTuple],
    engine: str,
    search_order: Optional[Sequence[str]] = None,
) -> Set[AnswerTuple]:
    """The subset of ``candidates`` that are answers of ``phi`` over
    ``database`` — one batched enumeration (free domains restricted to the
    candidates' values plus a table constraint over the free tuple) instead
    of a satisfiability probe per candidate, so the propagation set-up cost
    is paid once per side, not once per candidate."""
    if not candidates:
        return set()
    free = query.free_variables
    if not free:
        # Boolean query: the only possible candidate is the empty tuple.
        instance = _instance(query, database, engine, search_order=search_order)
        return set(candidates) if instance.is_satisfiable() else set()
    restrict = {
        variable: {candidate[position] for candidate in candidates}
        for position, variable in enumerate(free)
    }
    instance = _instance(
        query, database, engine,
        extra_constraints=(Constraint.trusted(free, allowed=frozenset(candidates)),),
        restrict=restrict,
        search_order=search_order,
    )
    if instance is None:
        return set()
    found: Set[AnswerTuple] = set()
    for solution in instance._iter_assignments(None):
        found.add(tuple(solution[v] for v in free))
        if len(found) == len(candidates):
            break
    return found


def is_answer(
    query: ConjunctiveQuery,
    database: Structure,
    candidate: AnswerTuple,
    engine: str = DEFAULT_ENGINE,
) -> bool:
    """Whether ``candidate`` is an answer of ``phi`` over ``database`` —
    a satisfiability probe with the free variables pinned (the CSP-engine
    analogue of :meth:`ConjunctiveQuery.is_answer`, usable on large
    databases)."""
    instance = _instance(
        query,
        database,
        engine,
        restrict={
            variable: {value}
            for variable, value in zip(query.free_variables, candidate)
        },
    )
    return instance is not None and instance.is_satisfiable()


# ----------------------------------------------------------------- entry point
def delta_count_exact(
    query: ConjunctiveQuery,
    old_database: Structure,
    new_database: Structure,
    delta: StructureDelta,
    engine: str = DEFAULT_ENGINE,
    strategy: str = "auto",
) -> DeltaCountReport:
    """Compute ``|Ans(phi, new)| - |Ans(phi, old)|`` from the net delta.

    ``old_database`` is typically :func:`repro.relational.changelog.rewind`
    applied to ``new_database``; both sides must genuinely differ by exactly
    ``delta`` on the query's relations.  ``strategy`` is ``"auto"``
    (inclusion–exclusion for quantifier-free queries with few touched atom
    occurrences, candidates otherwise) or one of the two names; requesting
    ``"inclusion_exclusion"`` for a quantified query raises, since solution
    deltas do not equal answer deltas under projection.

    The caller is responsible for :func:`delta_applicable` (the refresh loop
    in :mod:`repro.stream.live` checks it and falls back to a recount).
    """
    query._check_signature_compatibility(new_database)
    relevant = {
        name
        for name in delta
        if not delta[name].is_empty()
        and any(
            atom.relation == name
            for atom in itertools.chain(query.atoms, query.negated_atoms)
        )
    }
    if not relevant:
        return DeltaCountReport(delta=0, strategy="noop", work_units=0)
    restricted = {name: delta[name] for name in relevant}

    new_events = _touched_events(query, restricted, "new")
    old_events = _touched_events(query, restricted, "old")

    if strategy == "auto":
        use_ie = (
            query.is_quantifier_free()
            and max(len(new_events), len(old_events)) <= INCLUSION_EXCLUSION_LIMIT
        )
        strategy = "inclusion_exclusion" if use_ie else "candidates"
    # One min-fill computation serves every small pinned instance of this
    # refresh — the variable set never changes.
    order = _instance(query, new_database, engine).search_order()

    if strategy == "inclusion_exclusion":
        if not query.is_quantifier_free():
            raise ValueError(
                "inclusion_exclusion maintains solution counts; with "
                "existential variables projections collide — use "
                "strategy='candidates' (or 'auto')"
            )
        gained, terms_new = _count_touching(
            query, new_database, new_events, engine, order
        )
        lost, terms_old = _count_touching(
            query, old_database, old_events, engine, order
        )
        return DeltaCountReport(
            delta=gained - lost,
            strategy="inclusion_exclusion",
            work_units=terms_new + terms_old,
        )
    if strategy != "candidates":
        raise ValueError(
            f"unknown strategy {strategy!r}; expected 'auto', "
            "'inclusion_exclusion' or 'candidates'"
        )

    new_candidates = _pinned_projections(
        query, new_database, new_events, engine, order
    )
    old_candidates = _pinned_projections(
        query, old_database, old_events, engine, order
    )
    gained = len(new_candidates) - len(
        _answers_among(query, old_database, new_candidates, engine, order)
    )
    lost = len(old_candidates) - len(
        _answers_among(query, new_database, old_candidates, engine, order)
    )
    return DeltaCountReport(
        delta=gained - lost,
        strategy="candidates",
        work_units=len(new_candidates) + len(old_candidates),
    )


__all__ = [
    "DeltaCountReport",
    "delta_applicable",
    "delta_count_exact",
    "is_answer",
    "INCLUSION_EXCLUSION_LIMIT",
]
