"""``repro.stream``: incremental maintenance of counts under live updates.

The paper treats the database as fixed; this subsystem keeps answer counts
*live* while facts are inserted and deleted, instead of recounting from
scratch after every mutation.  It builds on three pieces of earlier
infrastructure: the relational layer's per-relation version counters and
:meth:`~repro.relational.structure.Structure.remove_fact` /
:class:`~repro.relational.changelog.ChangeLog` change capture, the
prepare-once/count-many compilation layer, and the service's
fingerprint-keyed result cache.

* :mod:`repro.stream.delta` — exact delta counting: turn the net fact delta
  between two database states into ``count(new) - count(old)`` by pinning
  delta facts into the CSP/join engine (inclusion–exclusion over touched
  atoms for quantifier-free queries, candidate-projection + membership
  probes in general).
* :mod:`repro.stream.live` — :class:`~repro.stream.live.CountSubscription` /
  :class:`~repro.stream.live.LiveCount`: the handles
  ``CountingService.subscribe`` returns, with eager / debounced / budget
  refresh policies and staleness metadata on every read.
* :mod:`repro.stream.workload` — randomized interleaved
  insert/delete/query schedules and the replay driver behind
  ``python -m repro stream`` and ``record_perf.py --suite stream``.

See DESIGN.md ("The streaming layer") for the architecture.
"""

from repro.stream.delta import (
    DeltaCountReport,
    delta_applicable,
    delta_count_exact,
    is_answer,
)
from repro.stream.live import (
    EXACT_SCHEMES,
    REFRESH_POLICIES,
    CountSubscription,
    LiveCount,
)
from repro.stream.workload import (
    DEFAULT_MIX,
    StreamEvent,
    StreamReport,
    run_stream,
    stream_schedule,
)

__all__ = [
    "DeltaCountReport",
    "delta_applicable",
    "delta_count_exact",
    "is_answer",
    "CountSubscription",
    "LiveCount",
    "REFRESH_POLICIES",
    "EXACT_SCHEMES",
    "StreamEvent",
    "StreamReport",
    "stream_schedule",
    "run_stream",
    "DEFAULT_MIX",
]
