"""The :class:`ShardExecutor`: run a :class:`ShardCountPlan` and combine.

Single/local plans become :class:`~repro.service.executor.CountTask`s over
the per-shard structures and fan out across the serial / thread / process
back-ends of :func:`repro.service.executor.run_tasks` — the same pool
machinery (databases shipped once per worker, keyed by structure token) the
batch service uses, so shard structures ride the existing infrastructure
unchanged.  Union plans run the Section-6 machinery over the tagged database
(exactly via :func:`repro.unions.karp_luby.exact_count_union`, approximately
via the registry's ``union_karp_luby`` scheme); merged plans count the
reassembled monolith.

Seeds: a single-strategy plan passes the request seed through (bit-identical
to the unsharded run); local tasks get ``derive_seed(seed, shard, component)``
so the fan-out is reproducible regardless of back-end or completion order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.trace import attach, span, tracing_active
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import RetryPolicy, run_with_retry
from repro.service.executor import CountTask, TaskOutcome, execute_scheme_result, run_tasks
from repro.shard.plan import ShardCountPlan, ShardTask, plan_sharded_count
from repro.shard.sharded import ShardedStructure
from repro.util.rng import derive_seed

#: Schemes whose results are error-free integer counts; products of these are
#: bit-identical to the unsharded count.
EXACT_SCHEMES = frozenset({"exact", "oracle_exact"})


def shard_task_seed(seed: Optional[int], task: ShardTask) -> Optional[int]:
    """The deterministic seed of one shard task (``None`` stays ``None``)."""
    if seed is None or task.seed_path is None:
        return seed
    return derive_seed(seed, *task.seed_path)


@dataclass(frozen=True)
class ShardCountResult:
    """A sharded count with its provenance."""

    estimate: float
    scheme: str
    strategy: str
    num_components: int
    num_tasks: int
    shards_involved: Tuple[int, ...]
    executed_mode: str
    wall_seconds: float
    #: Per-task ``(shard, component, estimate, seconds)`` rows (single/local).
    task_rows: Tuple[Tuple[int, int, float, float], ...] = ()
    trace: Tuple[str, ...] = field(default_factory=tuple)
    #: Resilience provenance: injected faults absorbed by retries, executor
    #: rungs degraded, shard tasks recounted on the merged view.
    degradations: Tuple[str, ...] = ()
    retries: int = 0

    @property
    def count(self) -> int:
        return int(round(self.estimate))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "estimate": self.estimate,
            "count": self.count,
            "scheme": self.scheme,
            "strategy": self.strategy,
            "num_components": self.num_components,
            "num_tasks": self.num_tasks,
            "shards_involved": list(self.shards_involved),
            "executed_mode": self.executed_mode,
            "wall_seconds": round(self.wall_seconds, 6),
            "trace": list(self.trace),
            "degradations": list(self.degradations),
            "retries": self.retries,
        }


def combine_local_estimates(estimates: List[float]) -> float:
    """Product of per-component counts (components share no variables, so
    answer tuples factor; integer inputs keep an exact integer product)."""
    product: float = 1
    for estimate in estimates:
        product = product * estimate
    return product


def shard_fallback_outcome(
    shard_task: ShardTask,
    failed: TaskOutcome,
    sharded: ShardedStructure,
    scheme: str,
    engine: str,
    epsilon: float,
    delta: float,
    seed: Optional[int],
) -> Tuple[TaskOutcome, str]:
    """Recount one failed shard task's component on the ``merged()`` view.

    The degradation of last resort: a shard task that exhausted its retries
    (its shard is "down") re-runs against the reassembled monolith with the
    *same* derived seed.  Shards keep the full universe and whole relations
    of their components, so the component's query sees identical relation
    contents on the merged view — the recount is bit-identical to the
    healthy shard's answer, just not shard-parallel.  Returns the repaired
    outcome and a provenance note."""
    started = time.perf_counter()
    result = execute_scheme_result(
        scheme,
        shard_task.query,
        sharded.merged(),
        epsilon=epsilon,
        delta=delta,
        seed=shard_task_seed(seed, shard_task),
        engine=engine,
    )
    note = (
        f"shard.count[{shard_task.shard}, {shard_task.component}]: "
        f"retries exhausted ({failed.error}); recounted component on merged view"
    )
    return (
        TaskOutcome(
            index=failed.index,
            estimate=result.estimate,
            seconds=time.perf_counter() - started,
            widths=result.widths,
            attempts=failed.attempts,
            degradations=failed.degradations + (note,),
        ),
        note,
    )


class ShardExecutor:
    """Plan and execute sharded counts over one :class:`ShardedStructure`."""

    def __init__(
        self,
        mode: str = "process",
        max_workers: Optional[int] = None,
        union_exact_components: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ) -> None:
        self.mode = mode
        self.max_workers = max_workers
        #: The failure model (usually handed down by the service): injected
        #: faults, the retry budget, and the shared executor circuit breaker.
        self.fault_plan = fault_plan
        self.retry = retry
        self.breaker = breaker
        #: Approximate union plans run Karp–Luby with exact per-restriction
        #: counts and exactly uniform samples by default (the estimator's
        #: only error is sampling error; each restriction is one shard's
        #: slice, so exact per-component evaluation is cheap).  Set ``False``
        #: to count the restrictions with the paper's FPTRAS/FPRAS schemes
        #: at the tightened per-component ``(epsilon/3, delta/3m)`` — the
        #: Section-6 construction verbatim, far slower.
        self.union_exact_components = union_exact_components

    def count(
        self,
        query: ConjunctiveQuery,
        sharded: ShardedStructure,
        scheme: str = "exact",
        epsilon: float = 0.2,
        delta: float = 0.05,
        seed: Optional[int] = None,
        engine: str = DEFAULT_ENGINE,
        plan: Optional[ShardCountPlan] = None,
        deadline_at: Optional[float] = None,
    ) -> ShardCountResult:
        """Count ``|Ans(query, sharded)|`` with the given scheme.

        ``plan`` may be passed in when the caller already planned (the
        service does); otherwise :func:`plan_sharded_count` runs here.
        ``deadline_at`` (absolute monotonic) rides into every shard task.

        With tracing active the fan-out records a ``shard.count`` span:
        strategy, per-task spans shipped home from pool workers, and one
        event per degradation (retry absorbed, merged-view recount).
        """
        with span("shard.count", scheme=scheme) as shard_span:
            result = self._count_inner(
                query, sharded, scheme, epsilon, delta, seed, engine, plan, deadline_at
            )
            shard_span.set(
                strategy=result.strategy,
                components=result.num_components,
                tasks=result.num_tasks,
                executed_mode=result.executed_mode,
                retries=result.retries,
            )
            for note in result.degradations:
                shard_span.event(note)
        return result

    def _count_inner(
        self,
        query: ConjunctiveQuery,
        sharded: ShardedStructure,
        scheme: str,
        epsilon: float,
        delta: float,
        seed: Optional[int],
        engine: str,
        plan: Optional[ShardCountPlan],
        deadline_at: Optional[float],
    ) -> ShardCountResult:
        started = time.perf_counter()
        if plan is None:
            plan = plan_sharded_count(query, sharded)

        if plan.strategy in ("single", "local"):
            tasks: List[CountTask] = []
            databases: Dict[int, Structure] = {}
            for index, shard_task in enumerate(plan.tasks):
                shard_structure = sharded.shards[shard_task.shard]
                databases[shard_structure.structure_token] = shard_structure
                tasks.append(
                    CountTask(
                        index=index,
                        query=shard_task.query,
                        scheme=scheme,
                        engine=engine,
                        epsilon=epsilon,
                        delta=delta,
                        seed=shard_task_seed(seed, shard_task),
                        database_token=shard_structure.structure_token,
                        fault_sites=(
                            ("shard.count", (shard_task.shard, shard_task.component)),
                        ),
                        fault_plan=self.fault_plan,
                        retry=self.retry,
                        deadline_at=deadline_at,
                        traced=tracing_active(),
                    )
                )
            report = run_tasks(
                tasks,
                databases,
                mode=self.mode,
                max_workers=self.max_workers,
                breaker=self.breaker,
            )
            degradations: List[str] = list(report.degradations)
            outcomes: List[TaskOutcome] = []
            for shard_task, outcome in zip(plan.tasks, report.outcomes):
                # Reattach the worker's task span under the open shard span.
                attach(outcome.span)
                if outcome.failed:
                    outcome, note = shard_fallback_outcome(
                        shard_task, outcome, sharded, scheme, engine, epsilon, delta, seed
                    )
                    degradations.append(note)
                else:
                    degradations.extend(outcome.degradations)
                outcomes.append(outcome)
            estimate = combine_local_estimates([outcome.estimate for outcome in outcomes])
            rows = tuple(
                (shard_task.shard, shard_task.component, outcome.estimate, outcome.seconds)
                for shard_task, outcome in zip(plan.tasks, outcomes)
            )
            return ShardCountResult(
                estimate=estimate,
                scheme=scheme,
                strategy=plan.strategy,
                num_components=plan.num_components,
                num_tasks=len(tasks),
                shards_involved=plan.shards_involved,
                executed_mode=report.executed_mode,
                wall_seconds=time.perf_counter() - started,
                task_rows=rows,
                trace=plan.trace,
                degradations=tuple(degradations),
                retries=report.retries,
            )

        if plan.strategy == "union":
            estimate, trace = run_with_retry(
                lambda: self._count_union(
                    plan,
                    scheme,
                    epsilon=epsilon,
                    delta=delta,
                    seed=seed,
                    engine=engine,
                    exact_components=self.union_exact_components,
                ),
                sites=(("shard.count", ("union",)),),
                policy=self.retry,
                plan=self.fault_plan,
            )
            return ShardCountResult(
                estimate=estimate,
                scheme=scheme,
                strategy="union",
                num_components=plan.num_components,
                num_tasks=len(plan.union.queries),
                shards_involved=tuple(range(sharded.num_shards)),
                executed_mode="union-inline",
                wall_seconds=time.perf_counter() - started,
                trace=plan.trace,
                degradations=tuple(trace.notes),
                retries=trace.attempts - 1,
            )

        # Merged fallback: correct on any input, not shard-parallel.
        from repro.core.registry import REGISTRY

        estimate, trace = run_with_retry(
            lambda: REGISTRY.count(
                scheme, query, sharded.merged(),
                epsilon=epsilon, delta=delta, rng=seed, engine=engine,
            ).estimate,
            sites=(("shard.count", ("merged",)),),
            policy=self.retry,
            plan=self.fault_plan,
        )
        return ShardCountResult(
            estimate=estimate,
            scheme=scheme,
            strategy="merged",
            num_components=plan.num_components,
            num_tasks=1,
            shards_involved=tuple(range(sharded.num_shards)),
            executed_mode="merged-inline",
            wall_seconds=time.perf_counter() - started,
            trace=plan.trace,
            degradations=tuple(trace.notes),
            retries=trace.attempts - 1,
        )

    @staticmethod
    def _count_union(
        plan: ShardCountPlan,
        scheme: str,
        epsilon: float,
        delta: float,
        seed: Optional[int],
        engine: str,
        exact_components: bool,
    ) -> float:
        decomposition = plan.union
        if not decomposition.queries:
            # Some positive atom's relation is empty everywhere: no answers.
            return 0 if scheme in EXACT_SCHEMES else 0.0
        if scheme in EXACT_SCHEMES:
            from repro.unions.karp_luby import exact_count_union

            return exact_count_union(decomposition.queries, decomposition.tagged, engine=engine)
        from repro.core.registry import REGISTRY

        return REGISTRY.count_union(
            decomposition.queries,
            decomposition.tagged,
            epsilon=epsilon,
            delta=delta,
            rng=seed,
            engine=engine,
            exact_components=exact_components,
        ).estimate
