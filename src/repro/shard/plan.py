"""Shard-aware count planning: decompose ``|Ans(phi, D)|`` over shards.

Three strategies, tried in order:

**single** — every connected component of the query localises to one common
shard (with by-relation partitioning this covers every query whose relations
all live together).  The whole query is routed to that shard unchanged, with
the caller's seed passed through untouched: the shard carries the full
universe and the full content of every relation the query mentions, so the
scheme run is *bit-identical* to the unsharded one — exact counts and
approximate estimates alike.

**local** — components localise, but to different shards.  Because distinct
connected components share no variables, ``Ans(phi, D)`` factorises as the
product of the per-component answer sets (a component without free variables
contributes factor 1 or 0 — its boolean satisfiability); each component is
counted on its owning shard as an independent task, fanned across the
service executor's back-ends with deterministic ``derive_seed(seed, shard,
component)`` seeds.  Exact per-component counts make the product bit-identical
to the unsharded count; approximate products are reproducible from the seed
(per-component ``(epsilon, delta)`` guarantees compound to ``(1+epsilon)^c``
over ``c`` components).

**union** — some component's relations are split across shards (the normal
state under hash-by-tuple partitioning).  Shards partition facts, so every
*solution* assigns each positive atom's fact to exactly one shard: writing
``R@s`` for shard ``s``'s slice of ``R``,

    ``Ans(phi, D)  =  ⋃_f Ans(phi_f, D')``

where ``f`` ranges over assignments of positive atoms to (fact-bearing)
shards, ``phi_f`` rewrites each positive atom ``R(x̄)`` to ``R@f(atom)(x̄)``,
and the tagged database ``D'`` holds every slice plus the **full** content of
each negated relation (negation must see the whole relation).  This is
exactly the union-of-CQs setting of Section 6: exact counts come from
:func:`repro.unions.karp_luby.exact_count_union` (bit-identical by the
identity above), estimates from the registry's ``union_karp_luby`` scheme.
Past :data:`MAX_UNION_COMPONENTS` the plan degrades to **merged** (count the
reassembled monolith — correct, just not shard-parallel).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.queries.atoms import Atom
from repro.queries.query import ConjunctiveQuery
from repro.relational.signature import RelationSymbol
from repro.relational.structure import Structure
from repro.shard.sharded import ShardedStructure

#: Union decompositions larger than this degrade to the merged fallback
#: (``shards ** atoms`` grows fast; the cap keeps planning predictable).
MAX_UNION_COMPONENTS = 256


# ------------------------------------------------------------------ components
def query_components(query: ConjunctiveQuery) -> List[ConjunctiveQuery]:
    """Split a query into its connected components.

    Connectivity is over *all* couplings — positive atoms, negated atoms,
    **and disequalities** (a disequality ties its two variables even though
    ``H(phi)`` gives it no hyperedge: components joined by a disequality are
    not independent and must not be counted separately).  Free variables keep
    their original relative order inside each component, and components are
    ordered by their earliest variable in the query's canonical variable
    order, so the decomposition — and hence per-component seed derivation —
    is deterministic.
    """
    position = {
        v: i
        for i, v in enumerate(
            list(query.free_variables) + sorted(query.existential_variables, key=str)
        )
    }
    parent: Dict[str, str] = {v: v for v in query.variables}

    def find(v: str) -> str:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    def join(a: str, b: str) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_a] = root_b

    for atom in itertools.chain(query.atoms, query.negated_atoms):
        first = atom.args[0]
        for other in atom.args[1:]:
            join(first, other)
    for disequality in query.disequalities:
        join(disequality.left, disequality.right)

    groups: Dict[str, Set[str]] = {}
    for v in query.variables:
        groups.setdefault(find(v), set()).add(v)
    if len(groups) <= 1:
        return [query]

    ordered = sorted(groups.values(), key=lambda members: min(position[v] for v in members))
    components = []
    for members in ordered:
        components.append(
            ConjunctiveQuery(
                free_variables=[v for v in query.free_variables if v in members],
                atoms=[a for a in query.atoms if set(a.args) <= members],
                negated_atoms=[a for a in query.negated_atoms if set(a.args) <= members],
                disequalities=[
                    d for d in query.disequalities if {d.left, d.right} <= members
                ],
                existential_variables=query.existential_variables & frozenset(members),
            )
        )
    return components


def component_relation_names(component: ConjunctiveQuery) -> Tuple[str, ...]:
    """Every relation whose *content* the component's answers depend on
    (positive and negated atoms alike — negation reads the full relation)."""
    names = {atom.relation for atom in component.atoms}
    names |= {atom.relation for atom in component.negated_atoms}
    return tuple(sorted(names))


# ----------------------------------------------------------------------- plans
@dataclass(frozen=True)
class ShardTask:
    """One per-shard unit of work of a ``local`` (or ``single``) plan."""

    shard: int
    component: int
    query: ConjunctiveQuery
    #: Seed derivation relative to the request seed: ``None`` passes the
    #: request seed through unchanged (single-strategy plans); ``(shard,
    #: component)`` derives a child seed via ``derive_seed``.
    seed_path: Optional[Tuple[int, int]]


@dataclass(frozen=True)
class UnionDecomposition:
    """The tagged database and per-shard-restriction queries of a union plan.

    An empty ``queries`` tuple means some positive atom's relation holds no
    facts anywhere — the count is zero without running anything.
    """

    tagged: Structure
    queries: Tuple[ConjunctiveQuery, ...]


@dataclass(frozen=True)
class ShardCountPlan:
    """How a sharded count will be computed.

    ``strategy`` is ``"single"`` | ``"local"`` | ``"union"`` | ``"merged"``.
    ``tasks`` is populated for single/local (single has exactly one task
    covering the whole query), ``union`` for union plans; merged plans carry
    neither (the executor counts ``sharded.merged()``).
    """

    strategy: str
    num_components: int
    tasks: Tuple[ShardTask, ...] = ()
    union: Optional[UnionDecomposition] = None
    trace: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def shards_involved(self) -> Tuple[int, ...]:
        return tuple(sorted({task.shard for task in self.tasks}))


def _tagged_relation_name(relation: str, shard: int) -> str:
    # "@" cannot occur in parsed relation names, so slice names never collide
    # with user relations.
    return f"{relation}@s{shard}"


def build_union_decomposition(
    query: ConjunctiveQuery, sharded: ShardedStructure
) -> Optional[UnionDecomposition]:
    """The union-of-CQs rewriting of ``query`` over ``sharded`` (see module
    docstring), or ``None`` when it would exceed :data:`MAX_UNION_COMPONENTS`."""
    atom_choices: List[List[int]] = []
    for atom in query.atoms:
        counts = sharded.relation_shard_counts(atom.relation)
        bearing = [index for index, count in enumerate(counts) if count > 0]
        if not bearing:
            return UnionDecomposition(tagged=Structure(), queries=())
        atom_choices.append(bearing)

    total = 1
    for choices in atom_choices:
        total *= len(choices)
        if total > MAX_UNION_COMPONENTS:
            return None

    tagged = Structure(universe=sharded.universe)
    for name in sorted({atom.relation for atom in query.atoms}):
        arity = sharded.signature.get(name).arity
        for shard_index, shard in enumerate(sharded.shards):
            slice_name = _tagged_relation_name(name, shard_index)
            tagged.add_relation(RelationSymbol(slice_name, arity))
            for fact in shard.relation(name):
                tagged.add_fact(slice_name, fact)
    for name in sorted({atom.relation for atom in query.negated_atoms}):
        # Negated atoms read the full relation: ship it whole, under its own
        # name (a relation may appear both positively and negated; the slices
        # above and the full copy here coexist under different names).
        tagged.add_relation(sharded.signature.get(name))
        for fact in sharded.relation(name):
            tagged.add_fact(name, fact)

    queries = []
    for assignment in itertools.product(*atom_choices):
        atoms = [
            Atom(_tagged_relation_name(atom.relation, shard), atom.args)
            for atom, shard in zip(query.atoms, assignment)
        ]
        queries.append(
            ConjunctiveQuery(
                free_variables=query.free_variables,
                atoms=atoms,
                negated_atoms=query.negated_atoms,
                disequalities=query.disequalities,
                existential_variables=query.existential_variables,
            )
        )
    return UnionDecomposition(tagged=tagged, queries=tuple(queries))


def plan_sharded_count(query: ConjunctiveQuery, sharded: ShardedStructure) -> ShardCountPlan:
    """Choose the sharded counting strategy for ``query`` over ``sharded``."""
    components = query_components(query)
    owners = [sharded.owner_shards(component_relation_names(component)) for component in components]

    if all(owners):
        common = frozenset(range(sharded.num_shards))
        for owner_set in owners:
            common &= owner_set
        if common:
            shard = min(common)
            return ShardCountPlan(
                strategy="single",
                num_components=len(components),
                tasks=(ShardTask(shard=shard, component=0, query=query, seed_path=None),),
                trace=(
                    f"{len(components)} component(s), all localising to shard "
                    f"{shard}: whole query routed there (seed passed through; "
                    "bit-identical to the unsharded run)",
                ),
            )
        tasks = tuple(
            ShardTask(
                shard=min(owner_set),
                component=index,
                query=component,
                seed_path=(min(owner_set), index),
            )
            for index, (component, owner_set) in enumerate(zip(components, owners))
        )
        return ShardCountPlan(
            strategy="local",
            num_components=len(components),
            tasks=tasks,
            trace=(
                f"{len(components)} components localise to shards "
                f"{tuple(sorted({t.shard for t in tasks}))}: independent "
                "per-shard counts combined by product",
            ),
        )

    union = build_union_decomposition(query, sharded)
    if union is not None:
        return ShardCountPlan(
            strategy="union",
            num_components=len(components),
            union=union,
            trace=(
                "answers span shards: per-shard restrictions form a union of "
                f"{len(union.queries)} CQs over the tagged database "
                "(Section-6 Karp–Luby machinery)",
            ),
        )
    return ShardCountPlan(
        strategy="merged",
        num_components=len(components),
        trace=(
            f"union decomposition exceeds {MAX_UNION_COMPONENTS} components; "
            "falling back to a count over the reassembled monolith",
        ),
    )
