"""`repro.shard`: horizontally sharded databases with shard-parallel counting.

The package partitions a database's facts across ``N`` shards and counts
query answers against the shards instead of a monolith:

* :mod:`~repro.shard.partition` — deterministic fact placement
  (:class:`HashTuplePartitioner` spreads tuples, :class:`ByRelationPartitioner`
  keeps relations whole);
* :class:`~repro.shard.sharded.ShardedStructure` — one logical database over
  ``N`` physical :class:`~repro.relational.structure.Structure` shards, with
  the monolith's mutation API and cache-key semantics
  (``structure_token`` / ``version_fingerprint``);
* :mod:`~repro.shard.plan` — the count decomposition: route localising
  queries to their owning shard (bit-identical, seed passed through), combine
  per-shard component counts by product, or rewrite shard-spanning queries as
  a union of CQs for the Section-6 Karp–Luby machinery;
* :class:`~repro.shard.executor.ShardExecutor` — fan per-shard tasks across
  the service's serial / thread / process back-ends with deterministic
  per-shard seeds;
* :class:`~repro.shard.subscription.ShardSubscription` — live counts whose
  stream deltas route to the owning shard, so only touched shards recount.

``CountingService`` accepts a ``ShardedStructure`` anywhere a database goes;
the CLI's ``shard`` subcommand and ``benchmarks/record_perf.py --suite
shard`` drive the layer end-to-end.  See DESIGN.md ("The shard layer").
"""

from repro.shard.executor import ShardCountResult, ShardExecutor, shard_task_seed
from repro.shard.partition import (
    PARTITIONER_KINDS,
    ByRelationPartitioner,
    HashTuplePartitioner,
    Partitioner,
    make_partitioner,
    stable_hash,
)
from repro.shard.plan import (
    MAX_UNION_COMPONENTS,
    ShardCountPlan,
    ShardTask,
    UnionDecomposition,
    build_union_decomposition,
    component_relation_names,
    plan_sharded_count,
    query_components,
)
from repro.shard.sharded import ShardedStructure


def __getattr__(name: str):
    # Lazy: repro.shard.subscription pulls in repro.stream, whose package
    # __init__ imports the service layer — which itself imports this package
    # at module load.  Deferring the subscription import keeps the cycle
    # open (``from repro.shard import ShardSubscription`` still works).
    if name == "ShardSubscription":
        from repro.shard.subscription import ShardSubscription

        return ShardSubscription
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "ShardedStructure",
    "Partitioner",
    "HashTuplePartitioner",
    "ByRelationPartitioner",
    "make_partitioner",
    "stable_hash",
    "PARTITIONER_KINDS",
    "ShardCountPlan",
    "ShardTask",
    "UnionDecomposition",
    "plan_sharded_count",
    "query_components",
    "component_relation_names",
    "build_union_decomposition",
    "MAX_UNION_COMPONENTS",
    "ShardExecutor",
    "ShardCountResult",
    "shard_task_seed",
    "ShardSubscription",
]
