"""Live counts over sharded databases: delta routing to the owning shard.

``CountingService.subscribe`` on a :class:`ShardedStructure` returns a
:class:`ShardSubscription` instead of the monolithic
:class:`~repro.stream.live.CountSubscription`.  The subscription decomposes
the query once (the same :func:`~repro.shard.plan.plan_sharded_count` the
counting path uses) and then keeps **one fingerprint per component,
restricted to the component's relations** (aggregated over all shards, so a
fact landing on a shard that did not previously own the component is still
seen):

* a mutation routed to shard ``s`` bumps only shard ``s``'s counters for the
  touched relation, so a read after it re-counts exactly the components
  mentioning that relation — the others serve their cached counts for free;
* mutations of relations no component mentions don't even make the handle
  stale (the restriction the monolithic subscription also enjoys);
* universe growth is folded in only for components with a variable outside
  the positive atoms (the :func:`repro.stream.delta.delta_applicable`
  criterion, per component);
* stale reads **re-plan before recounting**: hash-by-tuple placement can
  move a relation's owning shard, so recounts follow the fresh plan — and
  when the decomposition stops localising entirely, the subscription
  degrades to always-correct whole-query recomputes.

Union/merged-strategy queries (answers span shards) have no per-shard
locality to exploit: the subscription keeps one aggregate fingerprint and
recomputes through the :class:`~repro.shard.executor.ShardExecutor` when it
goes stale.

Refresh policies (``eager`` / ``debounced`` / ``budget``) and the
:class:`~repro.stream.live.LiveCount` read envelope match the monolithic
subscription; ``mode`` is ``"initial"``, ``"shard-partial"`` (only touched
shards recounted), ``"shard-recount"`` (every component), or ``"recount"``
(union/merged recompute).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.obs.profile import fingerprint_class
from repro.obs.trace import activate, span
from repro.queries.query import ConjunctiveQuery
from repro.shard.executor import EXACT_SCHEMES, ShardExecutor, combine_local_estimates
from repro.shard.plan import (
    ShardCountPlan,
    component_relation_names,
    plan_sharded_count,
)
from repro.shard.sharded import ShardedStructure
from repro.stream.delta import delta_applicable
from repro.stream.live import REFRESH_POLICIES, LiveCount
from repro.util.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (service imports us)
    from repro.service.service import CountingService, CountRequest


@dataclass
class _ComponentState:
    """One component's cached count and the fingerprint backing it.

    The fingerprint is the **aggregate** (all-shard) fingerprint restricted
    to the component's relations: a fact of a watched relation landing on a
    shard that did not previously own the component still makes the
    component stale (hash-by-tuple routing can move a relation's ownership),
    while mutations of other relations stay invisible — the restriction that
    makes untouched-shard reads free.  ``shard`` is the owning shard of the
    *current* plan; refreshes re-plan before recounting, so it tracks
    ownership migrations.
    """

    shard: int
    component: int
    query: ConjunctiveQuery
    relations: Tuple[str, ...]
    universe_sensitive: bool
    fingerprint: Tuple[int, Tuple[Tuple[str, int], ...]]
    estimate: float
    refreshes: int = 0

    def pending_ticks(self, sharded: ShardedStructure) -> int:
        old_universe, old_relations = self.fingerprint
        new_universe, new_relations = sharded.version_fingerprint(self.relations)
        ticks = sum(
            new_version - old_version
            for (_, old_version), (_, new_version) in zip(old_relations, new_relations)
        )
        if self.universe_sensitive:
            ticks += new_universe - old_universe
        return ticks


class ShardSubscription:
    """A live handle on one ``(query, sharded database)`` count.

    Created by :meth:`repro.service.service.CountingService.subscribe`; not
    instantiated directly.  The counting scheme and the shard decomposition
    are pinned at subscribe time.
    """

    def __init__(
        self,
        service: "CountingService",
        request: "CountRequest",
        refresh: str = "eager",
        debounce_ticks: int = 4,
        budget_seconds: float = 1.0,
    ) -> None:
        if refresh not in REFRESH_POLICIES:
            raise ValueError(
                f"unknown refresh policy {refresh!r}; expected one of "
                f"{REFRESH_POLICIES}"
            )
        if debounce_ticks < 1:
            raise ValueError("debounce_ticks must be at least 1")
        self._service = service
        self._request = request
        self._policy = refresh
        self._debounce_ticks = int(debounce_ticks)
        self._budget_seconds = float(budget_seconds)
        self._spent_seconds = 0.0
        self._closed = False

        self.query = request.query
        self.sharded: ShardedStructure = request.database
        self.epsilon = request.epsilon if request.epsilon is not None else service.config.epsilon
        self.delta = request.delta if request.delta is not None else service.config.delta
        self._base_seed = request.seed

        self.plan = service.planner.plan(
            request.query,
            self.sharded,
            override=request.method,
            latency_budget_seconds=service._resolve_budget(
                request.latency_budget_seconds
            ),
        )
        self.scheme = self.plan.scheme
        self.query_class = self.plan.query_class
        #: Drift tracking (see repro.stream.live): the fingerprint class the
        #: scheme was planned at, plus re-plan provenance for LiveCount.
        self._planned_class = fingerprint_class(self.sharded.size())
        self._replans = 0
        self._replan_events: Tuple[str, ...] = ()
        self._force_full = False
        self.shard_plan: ShardCountPlan = plan_sharded_count(request.query, self.sharded)
        self._executor = ShardExecutor(mode="serial")

        self._refresh_count = 0
        self._last_seed: Optional[int] = None
        self._components: List[_ComponentState] = []
        if self.shard_plan.strategy in ("single", "local"):
            for task in self.shard_plan.tasks:
                relations = component_relation_names(task.query)
                state = _ComponentState(
                    shard=task.shard,
                    component=task.component,
                    query=task.query,
                    relations=relations,
                    universe_sensitive=not delta_applicable(task.query, True),
                    fingerprint=(0, ()),
                    estimate=0.0,
                )
                self._recount_component(state, refresh_index=0)
                self._components.append(state)
            self._estimate = self._combined()
        else:
            relations = component_relation_names(request.query)
            self._union_relations = relations
            self._union_universe_sensitive = not delta_applicable(request.query, True)
            self._union_fingerprint = self.sharded.version_fingerprint(relations)
            self._estimate = self._recompute_union(refresh_index=0)
        self._mode = "initial"

    # -------------------------------------------------------------- internals
    def _seed_for(self, refresh_index: int, component: int) -> Optional[int]:
        if self.scheme in EXACT_SCHEMES or self._base_seed is None:
            return None
        return derive_seed(self._base_seed, refresh_index, component)

    def _recount_component(self, state: _ComponentState, refresh_index: int) -> None:
        from repro.core.registry import REGISTRY

        shard = self.sharded.shards[state.shard]
        seed = self._seed_for(refresh_index, state.component)
        state.estimate = REGISTRY.count(
            self.scheme,
            state.query,
            shard,
            epsilon=self.epsilon,
            delta=self.delta,
            rng=seed,
            engine=self.plan.engine,
        ).estimate
        state.fingerprint = self.sharded.version_fingerprint(state.relations)
        if refresh_index > 0:
            state.refreshes += 1
        self._last_seed = seed

    def _recompute_union(self, refresh_index: int) -> float:
        seed = self._seed_for(refresh_index, 0)
        result = self._executor.count(
            self.query,
            self.sharded,
            scheme=self.scheme,
            epsilon=self.epsilon,
            delta=self.delta,
            seed=seed,
            engine=self.plan.engine,
        )
        self._union_fingerprint = self.sharded.version_fingerprint(self._union_relations)
        self._last_seed = seed
        return result.estimate

    def _combined(self) -> float:
        return combine_local_estimates([state.estimate for state in self._components])

    def pending_ticks(self) -> int:
        """Version bumps not yet folded into the served value — only bumps on
        the owning shard of some component (or, for union plans, on any
        shard) count."""
        if self._components:
            return sum(state.pending_ticks(self.sharded) for state in self._components)
        old_universe, old_relations = self._union_fingerprint
        new_universe, new_relations = self.sharded.version_fingerprint(self._union_relations)
        ticks = sum(
            new_version - old_version
            for (_, old_version), (_, new_version) in zip(old_relations, new_relations)
        )
        if self._union_universe_sensitive:
            ticks += new_universe - old_universe
        return ticks

    def _should_refresh(self, ticks: int) -> bool:
        if ticks <= 0:
            return False
        if self._policy == "eager":
            return True
        if self._policy == "debounced":
            return ticks >= self._debounce_ticks
        return self._spent_seconds < self._budget_seconds

    def _refresh(self) -> None:
        started = time.perf_counter()
        refresh_index = self._refresh_count + 1
        with activate(self._service.tracer):
            with span(
                "stream.refresh",
                refresh_index=refresh_index,
                scheme=self.scheme,
                sharded=True,
            ) as refresh_span:
                self._maybe_replan(refresh_span)
                self._refresh_work(refresh_index)
                refresh_span.set(mode=self._mode)
        self._refresh_count = refresh_index
        self._spent_seconds += time.perf_counter() - started

    def _maybe_replan(self, refresh_span) -> None:
        """Drift detection before the refresh recounts: re-plan the *scheme*
        when the sharded database crossed a fingerprint class since it was
        planned (the shard decomposition already re-plans on every refresh —
        see :meth:`_replan`).  A scheme change recounts every component
        under the new plan, so no update is lost to stale cached counts."""
        current_class = fingerprint_class(self.sharded.size())
        if current_class == self._planned_class:
            return
        reason = (
            f"size bucket crossed: 2^{self._planned_class} -> 2^{current_class}"
        )
        fresh = self._service.planner.plan(
            self.query,
            self.sharded,
            override=self._request.method,
            latency_budget_seconds=self._service._resolve_budget(
                self._request.latency_budget_seconds
            ),
        )
        self._planned_class = current_class
        changed = (fresh.scheme, fresh.engine) != (self.plan.scheme, self.plan.engine)
        old_scheme = self.scheme
        self.plan = fresh
        self.scheme = fresh.scheme
        self.query_class = fresh.query_class
        if not changed:
            return
        # Cached per-component estimates came from the old scheme; recount
        # everything under the new one on this refresh.
        self._force_full = True
        self._replans += 1
        note = f"stream.replan[shard]: {reason}; {old_scheme} -> {self.scheme}"
        self._replan_events = self._replan_events + (note,)
        refresh_span.event(
            "stream.replan",
            reason=reason,
            old_scheme=old_scheme,
            new_scheme=self.scheme,
        )
        refresh_span.set(scheme=self.scheme)
        self._service.metrics.counter("stream.replans").inc()

    def _refresh_work(self, refresh_index: int) -> None:
        if self._components:
            if self._force_full:
                stale = list(self._components)
                self._force_full = False
            else:
                stale = [
                    state
                    for state in self._components
                    if state.pending_ticks(self.sharded) > 0
                ]
            if stale and not self._replan(stale, refresh_index):
                # Ownership migrated beyond the pinned decomposition (e.g. a
                # hash-by-tuple relation stopped localising): degrade to
                # whole-query recomputes on an aggregate fingerprint —
                # always correct, no per-shard routing anymore.
                self._components = []
                self._union_relations = component_relation_names(self.query)
                self._union_universe_sensitive = not delta_applicable(self.query, True)
                self._estimate = self._recompute_union(refresh_index)
                self._mode = "recount"
            else:
                self._estimate = self._combined()
                self._mode = (
                    "shard-recount" if len(stale) == len(self._components) else "shard-partial"
                )
        else:
            self._estimate = self._recompute_union(refresh_index)
            self._mode = "recount"

    def _replan(self, stale, refresh_index: int) -> bool:
        """Re-plan before recounting stale components: mutations can move a
        relation's owning shard (hash-by-tuple placement).  Returns ``False``
        when the fresh plan no longer matches the pinned decomposition (the
        caller then degrades to whole-query recomputes); otherwise updates
        each component's owning shard and recounts the stale ones."""
        fresh = plan_sharded_count(self.query, self.sharded)
        self.shard_plan = fresh
        if fresh.strategy not in ("single", "local"):
            return False
        if len(fresh.tasks) != len(self._components):
            return False
        for state, task in zip(self._components, fresh.tasks):
            state.shard = task.shard
        for state in stale:
            self._recount_component(state, refresh_index)
        return True

    # ----------------------------------------------------------------- public
    @property
    def strategy(self) -> str:
        return self.shard_plan.strategy

    @property
    def component_refreshes(self) -> Tuple[int, ...]:
        """Per-component refresh counters, in component order (empty for
        union/merged plans) — the observable behind "only touched shards
        recount"."""
        return tuple(state.refreshes for state in self._components)

    def read(self, force: bool = False) -> LiveCount:
        """The current value, refreshed first when the policy (or ``force``)
        says so.  Reads after mutations on shards owning no component of this
        query are served from the cached counts for free."""
        if self._closed:
            raise RuntimeError("subscription is closed")
        ticks = self.pending_ticks()
        refreshed = False
        if force and ticks > 0 or not force and self._should_refresh(ticks):
            self._refresh()
            refreshed = True
            ticks = 0
        return LiveCount(
            estimate=self._estimate,
            scheme=self.scheme,
            query_class=self.query_class,
            fresh=ticks == 0,
            refreshed=refreshed,
            mode=self._mode,
            pending_ticks=ticks,
            refresh_count=self._refresh_count,
            seed=self._last_seed,
            epsilon=self.epsilon,
            delta=self.delta,
            replans=self._replans,
            replan_events=self._replan_events,
        )

    def refresh(self) -> LiveCount:
        """Fold every pending mutation in now, regardless of policy."""
        return self.read(force=True)

    def add_budget(self, seconds: float) -> None:
        """Top up a ``refresh="budget"`` subscription's refresh account."""
        self._budget_seconds += float(seconds)

    @property
    def spent_seconds(self) -> float:
        return self._spent_seconds

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the subscription (idempotent)."""
        if not self._closed:
            self._closed = True
            self._service._drop_shard_subscription(self)

    def __enter__(self) -> "ShardSubscription":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"ShardSubscription(strategy={self.strategy!r}, scheme={self.scheme!r}, "
            f"estimate={self._estimate}, refreshes={self._refresh_count})"
        )
