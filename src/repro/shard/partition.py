"""Fact partitioners: deciding which shard owns which fact.

A partitioner is a pure, deterministic function from ``(relation name, fact
tuple)`` to a shard index in ``range(num_shards)``.  Determinism across
*processes* matters — shard routing happens in the service front-end while
counting may run in pool workers, and a re-built ``ShardedStructure`` must
place every fact exactly where the original did — so the hash partitioners
are built on :func:`stable_hash` (BLAKE2 over a ``repr`` serialisation)
rather than Python's per-process-salted ``hash``.

Two placement policies:

* :class:`HashTuplePartitioner` spreads each relation's facts uniformly
  across all shards (hash of relation name + tuple).  Best balance; queries
  generally do not localise, so counts go through the union decomposition of
  :mod:`repro.shard.plan`.
* :class:`ByRelationPartitioner` keeps every relation whole on one shard
  (explicit assignment, or hash of the relation name).  Queries whose
  connected components each touch a single shard's relations localise and
  decompose into exact per-shard counts.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.util.hashing import stable_hash

Fact = Tuple[Hashable, ...]


class Partitioner:
    """Base partitioner: maps facts to shards, deterministically."""

    #: Short policy name, used by the CLI and the benches.
    kind: str = "abstract"

    def __init__(self, num_shards: int) -> None:
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        self.num_shards = int(num_shards)

    def shard_of(self, name: str, fact: Sequence[Hashable]) -> int:
        """The shard index owning ``(name, fact)``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(num_shards={self.num_shards})"


class HashTuplePartitioner(Partitioner):
    """Hash-by-tuple placement: shard = ``stable_hash(name, fact) % N``.

    Spreads every relation across all shards (good balance under skew);
    queries over such shards are counted through the union decomposition.
    """

    kind = "tuple"

    def shard_of(self, name: str, fact: Sequence[Hashable]) -> int:
        return stable_hash(name, tuple(fact)) % self.num_shards


class ByRelationPartitioner(Partitioner):
    """By-relation placement: every fact of a relation lands on one shard.

    The assignment is either explicit (``{relation name: shard index}``;
    unknown relations fall back to the hash rule) or ``stable_hash(name) %
    N``.  Whole relations per shard make single-relation queries — and more
    generally queries whose connected components stay within one shard's
    relations — localise, so they are counted exactly on their owning shard.
    """

    kind = "relation"

    def __init__(
        self,
        num_shards: int,
        assignment: Optional[Mapping[str, int]] = None,
    ) -> None:
        super().__init__(num_shards)
        self.assignment: Dict[str, int] = dict(assignment or {})
        for name, shard in self.assignment.items():
            if not 0 <= shard < self.num_shards:
                raise ValueError(
                    f"relation {name!r} assigned to shard {shard}, but there "
                    f"are only {self.num_shards} shards"
                )

    def shard_of_relation(self, name: str) -> int:
        shard = self.assignment.get(name)
        if shard is None:
            shard = stable_hash(name) % self.num_shards
        return shard

    def shard_of(self, name: str, fact: Sequence[Hashable]) -> int:
        return self.shard_of_relation(name)


#: Registered placement policies, by ``kind`` (the CLI's ``--partitioner``).
PARTITIONER_KINDS = ("tuple", "relation")


def make_partitioner(
    kind: str,
    num_shards: int,
    assignment: Optional[Mapping[str, int]] = None,
) -> Partitioner:
    """Build a partitioner by policy name (``"tuple"`` or ``"relation"``)."""
    if kind == "tuple":
        if assignment:
            raise ValueError("the tuple partitioner takes no relation assignment")
        return HashTuplePartitioner(num_shards)
    if kind == "relation":
        return ByRelationPartitioner(num_shards, assignment=assignment)
    raise ValueError(f"unknown partitioner kind {kind!r}; expected one of {PARTITIONER_KINDS}")
