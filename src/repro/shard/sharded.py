"""The :class:`ShardedStructure`: one logical database, ``N`` physical shards.

Each shard is a full :class:`~repro.relational.structure.Structure` carrying
the **complete signature and universe** but only the facts the partitioner
routes to it.  Keeping the full universe on every shard is load-bearing:
variables that occur only in negated atoms or disequalities range over the
whole universe, so a per-shard count over a shrunken universe would be wrong.

The sharded structure mirrors enough of the ``Structure`` read/mutation API
(duck-typed, not subclassed) for the service layer to accept it wherever a
database goes:

* mutations (:meth:`add_fact` / :meth:`remove_fact`) route to the owning
  shard — bumping only *that* shard's version counters — and keep every
  shard's universe in sync;
* :attr:`structure_token` / :meth:`version_fingerprint` preserve the cache-key
  semantics of the monolithic structure: the token identifies the sharded
  database as a whole, and the fingerprint aggregates the per-shard counters
  (monotone, and restricted fingerprints stay insensitive to mutations of
  unmentioned relations) so the service result cache invalidates exactly as
  it would unsharded;
* :meth:`owner_shards` answers the planner's localisation question: which
  shards hold *every* fact of a given relation set.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.relational.signature import RelationSymbol, Signature
from repro.relational.structure import _STRUCTURE_TOKENS, Fact, Structure
from repro.shard.partition import Partitioner

Element = Hashable


class ShardedStructure:
    """A horizontally sharded relational database.

    Build one with :meth:`from_structure` (partitioning an existing database)
    or incrementally via :meth:`add_fact`.  The per-shard structures are
    exposed through :attr:`shards` — they are real ``Structure`` objects and
    flow unchanged into the CSP engine, the scheme registry, and the process
    pool of the service executor.
    """

    def __init__(
        self,
        partitioner: Partitioner,
        signature: Optional[Signature] = None,
        universe: Iterable[Element] = (),
    ) -> None:
        self.partitioner = partitioner
        self.num_shards = partitioner.num_shards
        self.shards: Tuple[Structure, ...] = tuple(
            Structure(signature=signature, universe=universe)
            for _ in range(self.num_shards)
        )
        self._structure_token: int = next(_STRUCTURE_TOKENS)

    # --------------------------------------------------------------- building
    @classmethod
    def from_structure(cls, database: Structure, partitioner: Partitioner) -> "ShardedStructure":
        """Partition ``database``'s facts across shards; the signature and the
        universe (including elements no fact mentions) are replicated."""
        sharded = cls(
            partitioner,
            signature=database.signature,
            universe=database.universe,
        )
        for name, fact in database.facts():
            sharded.shards[partitioner.shard_of(name, fact)].add_fact(name, fact)
        return sharded

    # -------------------------------------------------------------- mutations
    def add_element(self, element: Element) -> None:
        """Add a universe element to every shard (universes stay in sync)."""
        for shard in self.shards:
            shard.add_element(element)

    def add_relation(self, symbol: RelationSymbol) -> None:
        """Declare a relation symbol on every shard."""
        for shard in self.shards:
            shard.add_relation(symbol)

    def add_fact(self, name: str, fact: Sequence[Element]) -> Fact:
        """Route a fact to its owning shard; other shards only grow their
        universe (and, on first use of ``name``, their signature)."""
        fact = tuple(fact)
        owner = self.partitioner.shard_of(name, fact)
        added = self.shards[owner].add_fact(name, fact)
        symbol = self.shards[owner].signature.get(name)
        for index, shard in enumerate(self.shards):
            if index == owner:
                continue
            if name not in shard.signature and symbol is not None:
                shard.add_relation(symbol)
            for element in fact:
                shard.add_element(element)
        return added

    def remove_fact(self, name: str, fact: Sequence[Element]) -> Fact:
        """Remove a fact from its owning shard (``KeyError`` when absent,
        exactly like :meth:`Structure.remove_fact`; universes never shrink)."""
        fact = tuple(fact)
        owner = self.partitioner.shard_of(name, fact)
        return self.shards[owner].remove_fact(name, fact)

    # ----------------------------------------------------------------- access
    @property
    def signature(self) -> Signature:
        return self.shards[0].signature

    @property
    def universe(self) -> FrozenSet[Element]:
        return self.shards[0].universe

    def canonical_universe(self) -> Tuple[Element, ...]:
        return self.shards[0].canonical_universe()

    def relation(self, name: str) -> FrozenSet[Fact]:
        """The *logical* relation: the union of the shards' slices."""
        merged: Set[Fact] = set()
        for shard in self.shards:
            merged |= shard.relation(name)
        return frozenset(merged)

    def relations(self) -> Dict[str, FrozenSet[Fact]]:
        return {symbol.name: self.relation(symbol.name) for symbol in self.signature}

    def has_fact(self, name: str, fact: Sequence[Element]) -> bool:
        fact = tuple(fact)
        return self.shards[self.partitioner.shard_of(name, fact)].has_fact(name, fact)

    def facts(self) -> Iterator[Tuple[str, Fact]]:
        """All (relation name, tuple) facts, in the canonical order of
        :meth:`Structure.facts` (shard boundaries are invisible)."""
        for name in sorted(symbol.name for symbol in self.signature):
            merged: Set[Fact] = set()
            for shard in self.shards:
                merged |= shard.relation(name)
            for fact in sorted(merged, key=repr):
                yield name, fact

    def num_facts(self) -> int:
        return sum(shard.num_facts() for shard in self.shards)

    def arity(self) -> int:
        return self.signature.arity()

    def size(self) -> int:
        """``||D||`` of the *logical* database (shards replicate the universe
        and signature, so summing shard sizes would overcount)."""
        relation_mass = sum(
            len(self.relation(symbol.name)) * symbol.arity for symbol in self.signature
        )
        return len(self.signature) + len(self.universe) + relation_mass

    # ------------------------------------------------------- identity / caching
    @property
    def structure_token(self) -> int:
        """One token for the sharded database as a whole — the service result
        cache keys on it, exactly as with a monolithic structure."""
        return self._structure_token

    def version_fingerprint(
        self, relation_names: Optional[Iterable[str]] = None
    ) -> Tuple[int, Tuple[Tuple[str, int], ...]]:
        """Aggregate of the per-shard fingerprints, in the monolithic shape
        ``(universe_version, ((name, relation_version), ...))``.

        Versions are summed across shards: every shard counter is monotone,
        so the aggregate changes whenever any shard's does, and restricting
        to a query's relations keeps the key insensitive to mutations of
        unrelated relations — the invariants the service cache relies on.
        """
        if relation_names is None:
            names = sorted(symbol.name for symbol in self.signature)
        else:
            names = sorted(set(relation_names))
        fingerprints = [shard.version_fingerprint(names) for shard in self.shards]
        universe_version = sum(fp[0] for fp in fingerprints)
        relation_versions = tuple(
            (name, sum(fp[1][i][1] for fp in fingerprints))
            for i, name in enumerate(names)
        )
        return (universe_version, relation_versions)

    # ------------------------------------------------------------ shard queries
    def shard_fact_counts(self) -> List[int]:
        """Facts per shard (balance diagnostics for the CLI and benches)."""
        return [shard.num_facts() for shard in self.shards]

    def relation_shard_counts(self, name: str) -> List[int]:
        """Per-shard fact counts of one relation."""
        if name not in self.signature:
            raise KeyError(f"unknown relation symbol {name!r}")
        return [len(shard.relation(name)) for shard in self.shards]

    def owner_shards(self, relation_names: Iterable[str]) -> FrozenSet[int]:
        """The shards holding **every** fact of **every** named relation.

        An empty relation is held by every shard; a relation split across
        shards by nobody.  The planner localises a query component to a shard
        in this set (and falls back to the union decomposition when the set
        is empty).  Unknown relation names raise ``KeyError``.
        """
        owners: Set[int] = set(range(self.num_shards))
        for name in relation_names:
            counts = self.relation_shard_counts(name)
            total = sum(counts)
            if total == 0:
                continue
            owners &= {index for index, count in enumerate(counts) if count == total}
            if not owners:
                break
        return frozenset(owners)

    def merged(self) -> Structure:
        """Rebuild the monolithic structure (verification and the union
        planner's escape hatch; counts over it are by definition unsharded)."""
        merged = Structure(signature=self.signature, universe=self.universe)
        for name, fact in self.facts():
            merged.add_fact(name, fact)
        return merged

    # ----------------------------------------------------------------- dunder
    def __repr__(self) -> str:
        return (
            f"ShardedStructure(shards={self.num_shards}, "
            f"partitioner={self.partitioner.kind!r}, |U|={len(self.universe)}, "
            f"facts={self.shard_fact_counts()})"
        )
