"""The query planner: choose a counting scheme, explainably.

Given a query and a database, :class:`Planner` produces a :class:`QueryPlan`
naming one of the registered counting schemes together with the decision
trace that led there.  The decision table (see DESIGN.md):

1. A user override (``method=``) wins, after validation against the query
   class through :data:`repro.core.registry.REGISTRY` (e.g. Theorem 16's
   FPRAS is only sound for plain CQs).
2. Small instances (database ``size()`` and query variable count under the
   configured thresholds) use the **exact** CSP-backtracking counter: it is
   error-free and, on small inputs, faster than setting up an approximation
   scheme.
3. Otherwise the Figure-1 dichotomy picks the scheme by query class, exactly
   as :func:`repro.core.classify_query` recommends: plain CQs get the
   Theorem-16 FPRAS, DCQs the Theorem-13 FPTRAS, ECQs the Theorem-5 FPTRAS.

Width artifacts come from the **prepared query**
(:func:`repro.queries.prepared.prepare`): they are computed at most once per
canonical query shape per process and shared with the scheme run itself.
Widths are pulled **per width, lazily** — an exact plan computes none, a
Theorem-5 override computes only treewidth/arity, a Theorem-13/16 override
only the fhw-based widths, and only the dichotomy path (which must discuss
the whole Figure-1 profile) computes the full profile.  ``QueryPlan.explain``
prints whichever widths the plan actually computed and the trace warns when a
width exceeds its configured alarm threshold (the scheme still runs, merely
without its fixed-parameter efficiency).

Plans are cached on the canonical query form plus the decision inputs, so
repeated queries skip even the per-width lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.registry import REGISTRY
from repro.queries.prepared import PreparedQuery, prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.columnar import columnar_available
from repro.relational.csp import DEFAULT_ENGINE, ENGINES
from repro.relational.structure import Structure
from repro.service.cache import LRUCache

#: The built-in single-query counting schemes (an import-time snapshot of the
#: registry's non-union schemes, kept for display/introspection; validation
#: reads the registry live so later registrations are planable too).
SCHEMES = REGISTRY.names(include_unions=False)


@dataclass(frozen=True)
class PlannerConfig:
    """Thresholds of the planner's decision table."""

    #: Databases with ``size()`` at most this use the exact counter ...
    exact_size_threshold: int = 800
    #: ... provided the query has at most this many variables.
    exact_variable_limit: int = 10
    #: Widths above these alarms add a warning to the decision trace (the
    #: scheme still runs; it is correct for every instance, merely not
    #: fixed-parameter efficient outside the bounded regime).
    treewidth_alarm: int = 4
    fhw_alarm: float = 3.0
    #: Databases with ``size()`` at least this run the chosen scheme on the
    #: vectorized columnar CSP engine when the planner's default engine is
    #: ``"indexed"`` and NumPy is available (estimates are bit-identical
    #: across engines, so the upgrade only changes speed).  ``None`` disables
    #: the upgrade; an explicit planner engine always wins.
    columnar_size_threshold: Optional[int] = 5000

    def fingerprint(self) -> Tuple:
        return (
            self.exact_size_threshold,
            self.exact_variable_limit,
            self.treewidth_alarm,
            self.fhw_alarm,
            self.columnar_size_threshold,
        )


@dataclass(frozen=True)
class QueryPlan:
    """An explainable counting plan for one (query, database-size) input.

    Width fields are ``None`` when the decision did not need them (widths are
    exponential in the query size, so the planner computes each one lazily
    and only when the chosen scheme's guarantees refer to it).
    """

    scheme: str
    query_class: str
    engine: str
    database_size: int
    size_class: str  # "small" | "large"
    treewidth: Optional[int]
    fractional_hypertreewidth: Optional[float]
    adaptive_width_upper: Optional[float]
    arity: Optional[int]
    reference: str
    override: Optional[str]
    trace: Tuple[str, ...] = field(default_factory=tuple)
    #: Observed per-scheme cost summaries for this canonical form in this
    #: database-size bucket — ``ProfileStore.summary()`` output, attached by
    #: the service *after* the plan-cache fetch (so cached plans never carry
    #: stale observations).  ``None`` when nothing was observed yet.
    observed: Optional[Dict[str, Any]] = None

    def explain(self) -> str:
        """Human-readable plan summary (one decision per line).  Each width
        is printed only if the plan computed it — any subset may be absent."""
        lines = [
            f"scheme:      {self.scheme}",
            f"reference:   {self.reference}",
            f"query class: {self.query_class}",
            f"engine:      {self.engine}",
            f"database:    size={self.database_size} ({self.size_class})",
        ]
        width_parts = []
        if self.treewidth is not None:
            width_parts.append(f"tw={self.treewidth}")
        if self.fractional_hypertreewidth is not None:
            width_parts.append(f"fhw={self.fractional_hypertreewidth:.2f}")
        if self.adaptive_width_upper is not None:
            width_parts.append(f"aw<={self.adaptive_width_upper:.2f}")
        if self.arity is not None:
            width_parts.append(f"arity={self.arity}")
        if width_parts:
            lines.append("widths:      " + " ".join(width_parts))
        lines.append("decision:")
        lines.extend(f"  - {step}" for step in self.trace)
        if self.observed and self.observed.get("schemes"):
            lines.append(
                "observed:    (recorded costs, size bucket "
                f"2^{self.observed.get('fingerprint_class', '?')})"
            )
            for scheme, summary in self.observed["schemes"].items():
                # Multi-engine summaries key entries as "scheme@engine".
                marker = "*" if scheme.split("@", 1)[0] == self.scheme else "-"
                lines.append(
                    f"  {marker} {scheme}: runs={summary['runs']} "
                    f"p50={summary['p50_seconds']:.6f}s "
                    f"p95={summary['p95_seconds']:.6f}s "
                    f"mean={summary['mean_seconds']:.6f}s"
                )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "reference": self.reference,
            "query_class": self.query_class,
            "engine": self.engine,
            "database_size": self.database_size,
            "size_class": self.size_class,
            "treewidth": self.treewidth,
            "fractional_hypertreewidth": self.fractional_hypertreewidth,
            "adaptive_width_upper": self.adaptive_width_upper,
            "arity": self.arity,
            "override": self.override,
            "trace": list(self.trace),
            "observed": self.observed,
        }


def validate_scheme(scheme: str, query_class: QueryClass) -> None:
    """Reject scheme overrides that are unsound for the query's class
    (delegates to the scheme registry's applicability table).  The name check
    reads the registry live, so schemes registered after import are planable
    without touching this module."""
    names = REGISTRY.names(include_unions=False)
    if scheme not in names:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {names}")
    REGISTRY.validate(scheme, query_class)


class Planner:
    """Plans queries against the decision table, with a plan cache keyed on
    the canonical query form + the decision inputs (size class, override,
    engine, thresholds) — repeated queries skip even the lazy width
    lookups."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        engine: str = DEFAULT_ENGINE,
        cache_size: int = 256,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.config = config or PlannerConfig()
        self.engine = engine
        self.cache = LRUCache(cache_size)

    def plan(
        self,
        query: ConjunctiveQuery,
        database: Structure,
        override: Optional[str] = None,
        query_key: Optional[str] = None,
        prepared: Optional[PreparedQuery] = None,
    ) -> QueryPlan:
        """Produce (or fetch from cache) the plan for ``query`` over
        ``database``.  ``prepared`` (or the legacy ``query_key``) may be
        passed in when the caller already compiled the query."""
        config = self.config
        database_size = database.size()
        small = (
            database_size <= config.exact_size_threshold
            and len(query.variables) <= config.exact_variable_limit
        )
        size_class = "small" if small else "large"
        if query_key is None:
            if prepared is None:
                prepared = prepare(query)
            query_key = prepared.canonical_key
        threshold = config.columnar_size_threshold
        columnar_upgrade = (
            self.engine == "indexed"
            and threshold is not None
            and database_size >= threshold
            and columnar_available()
        )
        cache_key = (
            query_key,
            size_class,
            override,
            self.engine,
            columnar_upgrade,
            config.fingerprint(),
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            # A cached plan's database_size (and its trace) reflect the size
            # at planning time; the decision is the same within a size class
            # (and within the columnar-upgrade bucket, part of the key).
            return cached
        if prepared is None:
            prepared = prepare(query)
        plan = self._plan_uncached(
            query, prepared, database_size, size_class, override, columnar_upgrade
        )
        self.cache.put(cache_key, plan)
        return plan

    def _plan_uncached(
        self,
        query: ConjunctiveQuery,
        prepared: PreparedQuery,
        database_size: int,
        size_class: str,
        override: Optional[str],
        columnar_upgrade: bool = False,
    ) -> QueryPlan:
        config = self.config
        query_class = query.query_class()
        trace = [f"classified as {query_class.value}"]
        # Each width is pulled lazily from the shared prepared query, and only
        # when the decision (or the chosen scheme's guarantee) refers to it.
        treewidth: Optional[int] = None
        fhw: Optional[float] = None
        aw_upper: Optional[float] = None
        arity: Optional[int] = None

        if override is not None:
            validate_scheme(override, query_class)
            scheme = override
            trace.append(f"user override: scheme forced to {scheme!r}")
        elif size_class == "small":
            scheme = "exact"
            trace.append(
                f"small instance (database size {database_size} <= "
                f"{config.exact_size_threshold}, |vars| "
                f"{len(query.variables)} <= {config.exact_variable_limit}): "
                "exact CSP count is error-free and fast here"
            )
        else:
            # The dichotomy path discusses the whole Figure-1 profile, so it
            # is the one place the full width profile is (shared-ly) computed.
            report = prepared.classification()
            widths = report.widths
            treewidth = widths.treewidth
            fhw = widths.fractional_hypertreewidth
            aw_upper = widths.adaptive_width.upper_bound
            arity = widths.arity
            trace.append(
                f"width profile: tw={treewidth} "
                f"fhw={fhw:.2f} "
                f"aw<={aw_upper:.2f} "
                f"arity={arity}"
            )
            scheme = {
                QueryClass.CQ: "fpras_cq",
                QueryClass.DCQ: "fptras_dcq",
                QueryClass.ECQ: "fptras_ecq",
            }[query_class]
            trace.append(
                f"large instance: Figure-1 dichotomy recommends "
                f"{report.recommended_algorithm} — {report.recommendation_reason}"
            )

        if scheme == "fptras_ecq":
            if treewidth is None:
                treewidth = prepared.treewidth()
                arity = prepared.hypergraph_arity()
                trace.append(
                    f"lazy widths for Theorem 5: tw={treewidth} arity={arity} "
                    "(fhw not needed)"
                )
            if treewidth > config.treewidth_alarm:
                trace.append(
                    f"warning: treewidth {treewidth} exceeds the alarm "
                    f"threshold {config.treewidth_alarm}; Theorem 5's FPTRAS still "
                    "runs but is not fixed-parameter efficient here"
                )
        if scheme in ("fpras_cq", "fptras_dcq"):
            if fhw is None:
                fhw = prepared.fractional_hypertreewidth()[0]
                aw_upper = fhw  # Lemma 12: aw <= fhw.
                trace.append(
                    f"lazy widths for {scheme}: fhw={fhw:.2f} aw<={aw_upper:.2f} "
                    "(treewidth not needed)"
                )
            if fhw > config.fhw_alarm:
                trace.append(
                    f"warning: fhw {fhw:.2f} exceeds "
                    f"the alarm threshold {config.fhw_alarm}; the scheme still runs "
                    "but without its efficiency guarantee"
                )

        engine = self.engine
        if columnar_upgrade:
            engine = "columnar"
            trace.append(
                f"database size {database_size} >= columnar threshold "
                f"{config.columnar_size_threshold}: upgrading to the "
                "vectorized columnar engine (bit-identical estimates)"
            )

        return QueryPlan(
            scheme=scheme,
            query_class=query_class.value,
            engine=engine,
            database_size=database_size,
            size_class=size_class,
            treewidth=treewidth,
            fractional_hypertreewidth=fhw,
            adaptive_width_upper=aw_upper,
            arity=arity,
            reference=REGISTRY.reference(scheme),
            override=override,
            trace=tuple(trace),
        )
