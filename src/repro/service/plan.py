"""The query planner: choose a counting scheme, explainably.

Given a query and a database, :class:`Planner` produces a :class:`QueryPlan`
naming one of the package's counting schemes together with the decision trace
that led there.  The decision table (see DESIGN.md):

1. A user override (``method=``) wins, after validation against the query
   class (e.g. Theorem 16's FPRAS is only sound for plain CQs).
2. Small instances (database ``size()`` and query variable count under the
   configured thresholds) use the **exact** CSP-backtracking counter: it is
   error-free and, on small inputs, faster than setting up an approximation
   scheme.
3. Otherwise the Figure-1 dichotomy picks the scheme by query class, exactly
   as :func:`repro.core.classify_query` recommends: plain CQs get the
   Theorem-16 FPRAS, DCQs the Theorem-13 FPTRAS, ECQs the Theorem-5 FPTRAS.

Whenever an approximation scheme is chosen the plan records the query's width
profile (treewidth, fhw, adaptive-width bounds, arity) so callers can see
*why* the scheme's preconditions hold — and the trace warns when a width
exceeds its configured alarm threshold, meaning the scheme still runs but
without its fixed-parameter efficiency.  The width computations are
exponential in the query size, so plans that do not need them (the exact
scheme, whether by small-instance rule or override) skip them entirely and
report ``None`` widths.

Plans are cached on the canonical query form plus the decision inputs, so
repeated queries skip the (exponential-in-query-size) width computations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.dichotomy import classify_query
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.csp import DEFAULT_ENGINE, ENGINES
from repro.relational.structure import Structure
from repro.service.cache import LRUCache
from repro.service.keys import canonical_query_key

#: The counting schemes the planner can choose among.
SCHEMES = ("exact", "fpras_cq", "fptras_dcq", "fptras_ecq", "oracle_exact")

#: Which query classes each scheme is sound for.
_SCHEME_CLASSES = {
    "exact": (QueryClass.CQ, QueryClass.DCQ, QueryClass.ECQ),
    "oracle_exact": (QueryClass.CQ, QueryClass.DCQ, QueryClass.ECQ),
    "fpras_cq": (QueryClass.CQ,),
    "fptras_dcq": (QueryClass.CQ, QueryClass.DCQ),
    "fptras_ecq": (QueryClass.CQ, QueryClass.DCQ, QueryClass.ECQ),
}

_SCHEME_REFERENCES = {
    "exact": "CSP backtracking baseline (Section 1.1)",
    "oracle_exact": "exact counting via EdgeFree oracle splitting (Lemma 22 plumbing)",
    "fpras_cq": "Theorem 16 (FPRAS, bounded fractional hypertreewidth)",
    "fptras_dcq": "Theorem 13 (FPTRAS, bounded adaptive width)",
    "fptras_ecq": "Theorem 5 (FPTRAS, bounded treewidth and arity)",
}


@dataclass(frozen=True)
class PlannerConfig:
    """Thresholds of the planner's decision table."""

    #: Databases with ``size()`` at most this use the exact counter ...
    exact_size_threshold: int = 800
    #: ... provided the query has at most this many variables.
    exact_variable_limit: int = 10
    #: Widths above these alarms add a warning to the decision trace (the
    #: scheme still runs; it is correct for every instance, merely not
    #: fixed-parameter efficient outside the bounded regime).
    treewidth_alarm: int = 4
    fhw_alarm: float = 3.0

    def fingerprint(self) -> Tuple:
        return (
            self.exact_size_threshold,
            self.exact_variable_limit,
            self.treewidth_alarm,
            self.fhw_alarm,
        )


@dataclass(frozen=True)
class QueryPlan:
    """An explainable counting plan for one (query, database-size) input."""

    scheme: str
    query_class: str
    engine: str
    database_size: int
    size_class: str  # "small" | "large"
    treewidth: Optional[int]
    fractional_hypertreewidth: Optional[float]
    adaptive_width_upper: Optional[float]
    arity: Optional[int]
    reference: str
    override: Optional[str]
    trace: Tuple[str, ...] = field(default_factory=tuple)

    def explain(self) -> str:
        """Human-readable plan summary (one decision per line)."""
        lines = [
            f"scheme:      {self.scheme}",
            f"reference:   {self.reference}",
            f"query class: {self.query_class}",
            f"engine:      {self.engine}",
            f"database:    size={self.database_size} ({self.size_class})",
        ]
        if self.treewidth is not None:
            lines.append(
                "widths:      "
                f"tw={self.treewidth} fhw={self.fractional_hypertreewidth:.2f} "
                f"aw<={self.adaptive_width_upper:.2f} arity={self.arity}"
            )
        lines.append("decision:")
        lines.extend(f"  - {step}" for step in self.trace)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "reference": self.reference,
            "query_class": self.query_class,
            "engine": self.engine,
            "database_size": self.database_size,
            "size_class": self.size_class,
            "treewidth": self.treewidth,
            "fractional_hypertreewidth": self.fractional_hypertreewidth,
            "adaptive_width_upper": self.adaptive_width_upper,
            "arity": self.arity,
            "override": self.override,
            "trace": list(self.trace),
        }


def validate_scheme(scheme: str, query_class: QueryClass) -> None:
    """Reject scheme overrides that are unsound for the query's class."""
    if scheme not in _SCHEME_CLASSES:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {SCHEMES}")
    if query_class not in _SCHEME_CLASSES[scheme]:
        raise ValueError(
            f"scheme {scheme!r} does not apply to {query_class.value} queries "
            f"({_SCHEME_REFERENCES[scheme]})"
        )


class Planner:
    """Plans queries against the decision table, with a plan cache keyed on
    the canonical query form + the decision inputs (size class, override,
    engine, thresholds) — repeated queries skip the width computations."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        engine: str = DEFAULT_ENGINE,
        cache_size: int = 256,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.config = config or PlannerConfig()
        self.engine = engine
        self.cache = LRUCache(cache_size)

    def plan(
        self,
        query: ConjunctiveQuery,
        database: Structure,
        override: Optional[str] = None,
        query_key: Optional[str] = None,
    ) -> QueryPlan:
        """Produce (or fetch from cache) the plan for ``query`` over
        ``database``.  ``query_key`` may be passed in when the caller already
        computed the canonical form."""
        config = self.config
        database_size = database.size()
        small = (
            database_size <= config.exact_size_threshold
            and len(query.variables) <= config.exact_variable_limit
        )
        size_class = "small" if small else "large"
        if query_key is None:
            query_key = canonical_query_key(query)
        cache_key = (query_key, size_class, override, self.engine, config.fingerprint())
        cached = self.cache.get(cache_key)
        if cached is not None:
            # A cached plan's database_size (and its trace) reflect the size
            # at planning time; the decision is the same within a size class.
            return cached
        plan = self._plan_uncached(query, database_size, size_class, override)
        self.cache.put(cache_key, plan)
        return plan

    def _plan_uncached(
        self,
        query: ConjunctiveQuery,
        database_size: int,
        size_class: str,
        override: Optional[str],
    ) -> QueryPlan:
        config = self.config
        query_class = query.query_class()
        trace = [f"classified as {query_class.value}"]
        # The width computations are exponential in the query size; compute
        # them only when the decision or an alarm actually needs them.
        report = None
        widths = None

        def ensure_widths():
            nonlocal report, widths
            if report is None:
                report = classify_query(query)
                widths = report.widths
                trace.append(
                    f"width profile: tw={widths.treewidth} "
                    f"fhw={widths.fractional_hypertreewidth:.2f} "
                    f"aw<={widths.adaptive_width.upper_bound:.2f} "
                    f"arity={widths.arity}"
                )
            return report

        if override is not None:
            validate_scheme(override, query_class)
            scheme = override
            trace.append(f"user override: scheme forced to {scheme!r}")
        elif size_class == "small":
            scheme = "exact"
            trace.append(
                f"small instance (database size {database_size} <= "
                f"{config.exact_size_threshold}, |vars| "
                f"{len(query.variables)} <= {config.exact_variable_limit}): "
                "exact CSP count is error-free and fast here"
            )
        else:
            ensure_widths()
            scheme = {
                QueryClass.CQ: "fpras_cq",
                QueryClass.DCQ: "fptras_dcq",
                QueryClass.ECQ: "fptras_ecq",
            }[query_class]
            trace.append(
                f"large instance: Figure-1 dichotomy recommends "
                f"{report.recommended_algorithm} — {report.recommendation_reason}"
            )

        if scheme in ("fpras_cq", "fptras_dcq", "fptras_ecq"):
            ensure_widths()
            if scheme == "fptras_ecq" and widths.treewidth > config.treewidth_alarm:
                trace.append(
                    f"warning: treewidth {widths.treewidth} exceeds the alarm "
                    f"threshold {config.treewidth_alarm}; Theorem 5's FPTRAS still "
                    "runs but is not fixed-parameter efficient here"
                )
            if scheme in ("fpras_cq", "fptras_dcq") and (
                widths.fractional_hypertreewidth > config.fhw_alarm
            ):
                trace.append(
                    f"warning: fhw {widths.fractional_hypertreewidth:.2f} exceeds "
                    f"the alarm threshold {config.fhw_alarm}; the scheme still runs "
                    "but without its efficiency guarantee"
                )

        return QueryPlan(
            scheme=scheme,
            query_class=query_class.value,
            engine=self.engine,
            database_size=database_size,
            size_class=size_class,
            treewidth=widths.treewidth if widths is not None else None,
            fractional_hypertreewidth=(
                widths.fractional_hypertreewidth if widths is not None else None
            ),
            adaptive_width_upper=(
                widths.adaptive_width.upper_bound if widths is not None else None
            ),
            arity=widths.arity if widths is not None else None,
            reference=_SCHEME_REFERENCES[scheme],
            override=override,
            trace=tuple(trace),
        )
