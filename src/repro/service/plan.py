"""The query planner: choose a counting scheme, explainably.

Given a query and a database, :class:`Planner` produces a :class:`QueryPlan`
naming one of the registered counting schemes together with the decision
trace that led there.  The decision table (see DESIGN.md):

1. A user override (``method=``) wins, after validation against the query
   class through :data:`repro.core.registry.REGISTRY` (e.g. Theorem 16's
   FPRAS is only sound for plain CQs).
2. Small instances (database ``size()`` and query variable count under the
   configured thresholds) use the **exact** CSP-backtracking counter: it is
   error-free and, on small inputs, faster than setting up an approximation
   scheme.
2. With ``adaptive=True`` and a :class:`~repro.service.cost.CostModel`
   attached, the planner overlays **observed costs** on the static table: it
   predicts every sound scheme's latency (p95 of the recorded sketch for
   this canonical form in this database-size bucket) and picks the cheapest
   one under the request's ``latency_budget_seconds``.  Schemes whose
   sketches are *cold* (fewer than ``min_observations`` recorded runs) are
   never chosen adaptively, and when **every** candidate is cold the plan
   falls through to the static rules below, byte-identical to a
   non-adaptive plan — the cold-start contract.
3. Small instances (database ``size()`` and query variable count under the
   configured thresholds) use the **exact** CSP-backtracking counter: it is
   error-free and, on small inputs, faster than setting up an approximation
   scheme.
4. Otherwise the Figure-1 dichotomy picks the scheme by query class, exactly
   as :func:`repro.core.classify_query` recommends: plain CQs get the
   Theorem-16 FPRAS, DCQs the Theorem-13 FPTRAS, ECQs the Theorem-5 FPTRAS.

Adaptive choice never touches *how* a scheme runs — estimates stay
bit-identical to a direct registry call under equal seeds; only *which*
scheme runs changes.  Determinism: the plan is a pure function of
(request, profile snapshot, config) — the profile store's monotone version
joins the plan-cache key, so a cached plan is never served across snapshot
changes.

Width artifacts come from the **prepared query**
(:func:`repro.queries.prepared.prepare`): they are computed at most once per
canonical query shape per process and shared with the scheme run itself.
Widths are pulled **per width, lazily** — an exact plan computes none, a
Theorem-5 override computes only treewidth/arity, a Theorem-13/16 override
only the fhw-based widths, and only the dichotomy path (which must discuss
the whole Figure-1 profile) computes the full profile.  ``QueryPlan.explain``
prints whichever widths the plan actually computed and the trace warns when a
width exceeds its configured alarm threshold (the scheme still runs, merely
without its fixed-parameter efficiency).

Plans are cached on the canonical query form plus the decision inputs, so
repeated queries skip even the per-width lookups.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.registry import REGISTRY
from repro.obs.profile import fingerprint_class
from repro.queries.prepared import PreparedQuery, prepare
from repro.queries.query import ConjunctiveQuery, QueryClass
from repro.relational.columnar import columnar_available
from repro.relational.csp import DEFAULT_ENGINE, ENGINES
from repro.relational.structure import Structure
from repro.service.cache import LRUCache
from repro.service.cost import PREDICTION_BASIS, CostModel

#: The built-in single-query counting schemes (an import-time snapshot of the
#: registry's non-union schemes, kept for display/introspection; validation
#: reads the registry live so later registrations are planable too).
SCHEMES = REGISTRY.names(include_unions=False)


@dataclass(frozen=True)
class PlannerConfig:
    """Thresholds of the planner's decision table."""

    #: Databases with ``size()`` at most this use the exact counter ...
    exact_size_threshold: int = 800
    #: ... provided the query has at most this many variables.
    exact_variable_limit: int = 10
    #: Widths above these alarms add a warning to the decision trace (the
    #: scheme still runs; it is correct for every instance, merely not
    #: fixed-parameter efficient outside the bounded regime).
    treewidth_alarm: int = 4
    fhw_alarm: float = 3.0
    #: Databases with ``size()`` at least this run the chosen scheme on the
    #: vectorized columnar CSP engine when the planner's default engine is
    #: ``"indexed"`` and NumPy is available (estimates are bit-identical
    #: across engines, so the upgrade only changes speed).  ``None`` disables
    #: the upgrade; an explicit planner engine always wins.
    columnar_size_threshold: Optional[int] = 5000
    #: When ``True`` (and the planner holds a :class:`CostModel`), overlay
    #: observed per-scheme costs on the static decision table: pick the
    #: cheapest sound scheme whose predicted p95 fits the request's latency
    #: budget.  Off by default — the static Figure-1 table is the paper's
    #: contract and the adaptive overlay is strictly opt-in.
    adaptive: bool = False
    #: A (form, bucket, scheme, engine) sketch with fewer recorded runs than
    #: this is *cold*: the adaptive overlay refuses to trust it and falls
    #: back to the dichotomy when every candidate is cold.
    min_observations: int = 3

    def fingerprint(self) -> Tuple:
        return (
            self.exact_size_threshold,
            self.exact_variable_limit,
            self.treewidth_alarm,
            self.fhw_alarm,
            self.columnar_size_threshold,
            self.adaptive,
            self.min_observations,
        )


@dataclass(frozen=True)
class QueryPlan:
    """An explainable counting plan for one (query, database-size) input.

    Width fields are ``None`` when the decision did not need them (widths are
    exponential in the query size, so the planner computes each one lazily
    and only when the chosen scheme's guarantees refer to it).
    """

    scheme: str
    query_class: str
    engine: str
    database_size: int
    size_class: str  # "small" | "large"
    treewidth: Optional[int]
    fractional_hypertreewidth: Optional[float]
    adaptive_width_upper: Optional[float]
    arity: Optional[int]
    reference: str
    override: Optional[str]
    trace: Tuple[str, ...] = field(default_factory=tuple)
    #: Observed per-scheme cost summaries for this canonical form in this
    #: database-size bucket — ``ProfileStore.summary()`` output, attached by
    #: the service *after* the plan-cache fetch (so cached plans never carry
    #: stale observations).  ``None`` when nothing was observed yet.
    observed: Optional[Dict[str, Any]] = None
    #: The adaptive overlay's prediction record: basis, budget, profile
    #: snapshot version, and every candidate's predicted cost plus the
    #: verdict that chose or rejected it.  After execution the service
    #: re-attaches the plan with ``actual_seconds`` / ``error_ratio`` /
    #: ``outcome`` folded in (predicted-vs-actual accounting).  ``None``
    #: when the overlay did not run (adaptive off, override, or every
    #: candidate cold — the cold-start fallback leaves the plan untouched).
    predicted: Optional[Dict[str, Any]] = None

    def explain(self) -> str:
        """Human-readable plan summary (one decision per line).  Each width
        is printed only if the plan computed it — any subset may be absent."""
        lines = [
            f"scheme:      {self.scheme}",
            f"reference:   {self.reference}",
            f"query class: {self.query_class}",
            f"engine:      {self.engine}",
            f"database:    size={self.database_size} ({self.size_class})",
        ]
        width_parts = []
        if self.treewidth is not None:
            width_parts.append(f"tw={self.treewidth}")
        if self.fractional_hypertreewidth is not None:
            width_parts.append(f"fhw={self.fractional_hypertreewidth:.2f}")
        if self.adaptive_width_upper is not None:
            width_parts.append(f"aw<={self.adaptive_width_upper:.2f}")
        if self.arity is not None:
            width_parts.append(f"arity={self.arity}")
        if width_parts:
            lines.append("widths:      " + " ".join(width_parts))
        lines.append("decision:")
        lines.extend(f"  - {step}" for step in self.trace)
        if self.predicted:
            budget = self.predicted.get("budget_seconds")
            budget_text = "none" if budget is None else f"{budget:.6f}s"
            lines.append(
                f"predicted:   (basis {self.predicted.get('basis', '?')}, "
                f"budget {budget_text}, profile snapshot "
                f"v{self.predicted.get('snapshot_version', '?')})"
            )
            for name, entry in self.predicted.get("candidates", {}).items():
                marker = "*" if name == self.predicted.get("chosen") else "-"
                seconds = entry.get("seconds")
                cost = "cold" if seconds is None else f"{seconds:.6f}s"
                lines.append(
                    f"  {marker} {name}: {cost} runs={entry.get('runs', 0)} "
                    f"({entry.get('verdict', '?')})"
                )
            actual = self.predicted.get("actual_seconds")
            if actual is not None:
                chosen = self.predicted.get("candidates", {}).get(
                    self.predicted.get("chosen"), {}
                )
                expected = chosen.get("seconds")
                ratio = self.predicted.get("error_ratio")
                lines.append(
                    "  predicted-vs-actual: "
                    + (
                        f"predicted={expected:.6f}s "
                        if expected is not None
                        else "predicted=cold "
                    )
                    + f"actual={actual:.6f}s"
                    + (f" ratio={ratio:.3f}" if ratio is not None else "")
                    + f" outcome={self.predicted.get('outcome', '?')}"
                )
        if self.observed and self.observed.get("schemes"):
            lines.append(
                "observed:    (recorded costs, size bucket "
                f"2^{self.observed.get('fingerprint_class', '?')})"
            )
            for scheme, summary in self.observed["schemes"].items():
                # Multi-engine summaries key entries as "scheme@engine".
                marker = "*" if scheme.split("@", 1)[0] == self.scheme else "-"
                lines.append(
                    f"  {marker} {scheme}: runs={summary['runs']} "
                    f"p50={summary['p50_seconds']:.6f}s "
                    f"p95={summary['p95_seconds']:.6f}s "
                    f"mean={summary['mean_seconds']:.6f}s"
                )
        return "\n".join(lines)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QueryPlan":
        """Rebuild a plan from :meth:`to_dict` output (the wire API's
        ``query_plan`` payload).  Unknown keys are ignored, so newer
        producers round-trip through older consumers."""
        return cls(
            scheme=data.get("scheme", ""),
            query_class=data.get("query_class", ""),
            engine=data.get("engine", DEFAULT_ENGINE),
            database_size=int(data.get("database_size", 0)),
            size_class=data.get("size_class", "large"),
            treewidth=data.get("treewidth"),
            fractional_hypertreewidth=data.get("fractional_hypertreewidth"),
            adaptive_width_upper=data.get("adaptive_width_upper"),
            arity=data.get("arity"),
            reference=data.get("reference", ""),
            override=data.get("override"),
            trace=tuple(data.get("trace", ())),
            observed=data.get("observed"),
            predicted=data.get("predicted"),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "reference": self.reference,
            "query_class": self.query_class,
            "engine": self.engine,
            "database_size": self.database_size,
            "size_class": self.size_class,
            "treewidth": self.treewidth,
            "fractional_hypertreewidth": self.fractional_hypertreewidth,
            "adaptive_width_upper": self.adaptive_width_upper,
            "arity": self.arity,
            "override": self.override,
            "trace": list(self.trace),
            "observed": self.observed,
            "predicted": self.predicted,
        }


def validate_scheme(scheme: str, query_class: QueryClass) -> None:
    """Reject scheme overrides that are unsound for the query's class
    (delegates to the scheme registry's applicability table).  The name check
    reads the registry live, so schemes registered after import are planable
    without touching this module."""
    names = REGISTRY.names(include_unions=False)
    if scheme not in names:
        raise ValueError(f"unknown scheme {scheme!r}; expected one of {names}")
    REGISTRY.validate(scheme, query_class)


class Planner:
    """Plans queries against the decision table, with a plan cache keyed on
    the canonical query form + the decision inputs (size class, override,
    engine, thresholds) — repeated queries skip even the lazy width
    lookups."""

    def __init__(
        self,
        config: Optional[PlannerConfig] = None,
        engine: str = DEFAULT_ENGINE,
        cache_size: int = 256,
        cost_model: Optional[CostModel] = None,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.config = config or PlannerConfig()
        self.engine = engine
        self.cache = LRUCache(cache_size)
        self.cost_model = cost_model

    def plan(
        self,
        query: ConjunctiveQuery,
        database: Structure,
        override: Optional[str] = None,
        query_key: Optional[str] = None,
        prepared: Optional[PreparedQuery] = None,
        latency_budget_seconds: Optional[float] = None,
    ) -> QueryPlan:
        """Produce (or fetch from cache) the plan for ``query`` over
        ``database``.  ``prepared`` (or the legacy ``query_key``) may be
        passed in when the caller already compiled the query.
        ``latency_budget_seconds`` only matters under the adaptive overlay
        (the static table has no notion of cost)."""
        config = self.config
        database_size = database.size()
        small = (
            database_size <= config.exact_size_threshold
            and len(query.variables) <= config.exact_variable_limit
        )
        size_class = "small" if small else "large"
        if query_key is None:
            if prepared is None:
                prepared = prepare(query)
            query_key = prepared.canonical_key
        threshold = config.columnar_size_threshold
        columnar_upgrade = (
            self.engine == "indexed"
            and threshold is not None
            and database_size >= threshold
            and columnar_available()
        )
        adaptive = config.adaptive and self.cost_model is not None
        if adaptive:
            # The adaptive decision reads (budget, profile snapshot, size
            # bucket); all three join the cache key so a plan is a pure
            # function of (request, profile snapshot, config) and a cached
            # plan is never served across snapshot changes.
            adaptive_key: Optional[Tuple] = (
                latency_budget_seconds,
                self.cost_model.snapshot_token,
                fingerprint_class(database_size),
            )
        else:
            adaptive_key = None
        cache_key = (
            query_key,
            size_class,
            override,
            self.engine,
            columnar_upgrade,
            config.fingerprint(),
            adaptive_key,
        )
        cached = self.cache.get(cache_key)
        if cached is not None:
            # A cached plan's database_size (and its trace) reflect the size
            # at planning time; the decision is the same within a size class
            # (and within the columnar-upgrade bucket, part of the key).
            return cached
        if prepared is None:
            prepared = prepare(query)
        plan = self._plan_uncached(
            query,
            prepared,
            database_size,
            size_class,
            override,
            columnar_upgrade,
            adaptive=adaptive,
            latency_budget_seconds=latency_budget_seconds,
        )
        self.cache.put(cache_key, plan)
        return plan

    def _plan_uncached(
        self,
        query: ConjunctiveQuery,
        prepared: PreparedQuery,
        database_size: int,
        size_class: str,
        override: Optional[str],
        columnar_upgrade: bool = False,
        adaptive: bool = False,
        latency_budget_seconds: Optional[float] = None,
    ) -> QueryPlan:
        config = self.config
        query_class = query.query_class()
        trace = [f"classified as {query_class.value}"]
        # Each width is pulled lazily from the shared prepared query, and only
        # when the decision (or the chosen scheme's guarantee) refers to it.
        treewidth: Optional[int] = None
        fhw: Optional[float] = None
        aw_upper: Optional[float] = None
        arity: Optional[int] = None

        if override is not None:
            validate_scheme(override, query_class)
            scheme = override
            trace.append(f"user override: scheme forced to {scheme!r}")
        elif size_class == "small":
            scheme = "exact"
            trace.append(
                f"small instance (database size {database_size} <= "
                f"{config.exact_size_threshold}, |vars| "
                f"{len(query.variables)} <= {config.exact_variable_limit}): "
                "exact CSP count is error-free and fast here"
            )
        else:
            # The dichotomy path discusses the whole Figure-1 profile, so it
            # is the one place the full width profile is (shared-ly) computed.
            report = prepared.classification()
            widths = report.widths
            treewidth = widths.treewidth
            fhw = widths.fractional_hypertreewidth
            aw_upper = widths.adaptive_width.upper_bound
            arity = widths.arity
            trace.append(
                f"width profile: tw={treewidth} "
                f"fhw={fhw:.2f} "
                f"aw<={aw_upper:.2f} "
                f"arity={arity}"
            )
            scheme = {
                QueryClass.CQ: "fpras_cq",
                QueryClass.DCQ: "fptras_dcq",
                QueryClass.ECQ: "fptras_ecq",
            }[query_class]
            trace.append(
                f"large instance: Figure-1 dichotomy recommends "
                f"{report.recommended_algorithm} — {report.recommendation_reason}"
            )

        predicted: Optional[Dict[str, Any]] = None
        if adaptive and override is None and self.cost_model is not None:
            scheme, predicted = self._adaptive_overlay(
                prepared,
                database_size,
                query_class,
                scheme,
                columnar_upgrade,
                latency_budget_seconds,
                trace,
            )

        if scheme == "fptras_ecq":
            if treewidth is None:
                treewidth = prepared.treewidth()
                arity = prepared.hypergraph_arity()
                trace.append(
                    f"lazy widths for Theorem 5: tw={treewidth} arity={arity} "
                    "(fhw not needed)"
                )
            if treewidth > config.treewidth_alarm:
                trace.append(
                    f"warning: treewidth {treewidth} exceeds the alarm "
                    f"threshold {config.treewidth_alarm}; Theorem 5's FPTRAS still "
                    "runs but is not fixed-parameter efficient here"
                )
        if scheme in ("fpras_cq", "fptras_dcq"):
            if fhw is None:
                fhw = prepared.fractional_hypertreewidth()[0]
                aw_upper = fhw  # Lemma 12: aw <= fhw.
                trace.append(
                    f"lazy widths for {scheme}: fhw={fhw:.2f} aw<={aw_upper:.2f} "
                    "(treewidth not needed)"
                )
            if fhw > config.fhw_alarm:
                trace.append(
                    f"warning: fhw {fhw:.2f} exceeds "
                    f"the alarm threshold {config.fhw_alarm}; the scheme still runs "
                    "but without its efficiency guarantee"
                )

        engine = self.engine
        if columnar_upgrade:
            engine = "columnar"
            trace.append(
                f"database size {database_size} >= columnar threshold "
                f"{config.columnar_size_threshold}: upgrading to the "
                "vectorized columnar engine (bit-identical estimates)"
            )

        return QueryPlan(
            scheme=scheme,
            query_class=query_class.value,
            engine=engine,
            database_size=database_size,
            size_class=size_class,
            treewidth=treewidth,
            fractional_hypertreewidth=fhw,
            adaptive_width_upper=aw_upper,
            arity=arity,
            reference=REGISTRY.reference(scheme),
            override=override,
            trace=tuple(trace),
            predicted=predicted,
        )

    def _adaptive_overlay(
        self,
        prepared: PreparedQuery,
        database_size: int,
        query_class: QueryClass,
        baseline_scheme: str,
        columnar_upgrade: bool,
        latency_budget_seconds: Optional[float],
        trace: list,
    ) -> Tuple[str, Optional[Dict[str, Any]]]:
        """Overlay observed costs on the static decision: predict every
        sound scheme's p95 latency for this (form, size-bucket, engine) and
        pick the cheapest warm one under the budget.  Returns the (possibly
        unchanged) scheme and the prediction record.  When **every**
        candidate is cold, returns the baseline untouched with no trace
        lines and no record — the cold-start contract keeps cold-store
        plans byte-identical to non-adaptive ones."""
        model = self.cost_model
        assert model is not None
        run_engine = "columnar" if columnar_upgrade else self.engine
        candidates = [
            name
            for name in REGISTRY.names(include_unions=False)
            if query_class in REGISTRY.get(name).query_classes
        ]
        predictions = model.predict_schemes(
            prepared.canonical_key, database_size, candidates, run_engine
        )
        warm = {name: p for name, p in predictions.items() if not p.cold}
        if not warm:
            return baseline_scheme, None

        budget = latency_budget_seconds
        fitting = {
            name: p
            for name, p in warm.items()
            if budget is None or p.seconds <= budget
        }
        # Cheapest fitting scheme; registry order breaks exact ties so the
        # choice is deterministic.  When nothing fits the budget, the
        # cheapest warm scheme is still the best effort on offer.
        order = {name: index for index, name in enumerate(candidates)}
        pool = fitting or warm
        chosen = min(pool.values(), key=lambda p: (p.seconds, order[p.scheme]))

        budget_text = "none" if budget is None else f"{budget:.6f}s"
        trace.append(
            f"adaptive overlay: {PREDICTION_BASIS} predictions from profile "
            f"snapshot v{model.snapshot_token} "
            f"(engine {run_engine}, size bucket 2^{fingerprint_class(database_size)}, "
            f"budget {budget_text})"
        )
        entries: Dict[str, Dict[str, Any]] = {}
        for name in candidates:
            p = predictions[name]
            if p.cold:
                verdict = (
                    f"cold: {p.runs} runs < min_observations "
                    f"{model.min_observations}"
                )
            elif name == chosen.scheme:
                verdict = (
                    "chosen: cheapest warm scheme under budget"
                    if name in fitting
                    else "chosen: no warm scheme fits the budget; "
                    "cheapest warm is the best effort"
                )
            elif name not in fitting:
                verdict = f"rejected: predicted {p.seconds:.6f}s over budget"
            else:
                verdict = (
                    f"rejected: predicted {p.seconds:.6f}s slower than "
                    f"{chosen.scheme} ({chosen.seconds:.6f}s)"
                )
            entries[name] = {
                "seconds": p.seconds,
                "runs": p.runs,
                "verdict": verdict,
            }
            cost = "cold" if p.cold else f"{p.seconds:.6f}s"
            trace.append(f"candidate {name}: {cost} — {verdict}")
        if chosen.scheme == baseline_scheme:
            trace.append(
                f"adaptive choice agrees with the static pick {baseline_scheme!r}"
            )
        else:
            trace.append(
                f"adaptive choice replaces the static pick {baseline_scheme!r} "
                f"with {chosen.scheme!r} (estimates are scheme-exact; only "
                "which scheme runs changes)"
            )
        predicted = {
            "basis": PREDICTION_BASIS,
            "min_observations": model.min_observations,
            "snapshot_version": model.snapshot_token,
            "budget_seconds": budget,
            "fingerprint_class": fingerprint_class(database_size),
            "engine": run_engine,
            "baseline": baseline_scheme,
            "chosen": chosen.scheme,
            "candidates": entries,
        }
        return chosen.scheme, predicted
