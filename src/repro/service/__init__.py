"""`repro.service`: planning, caching, and parallel batch execution for
query counting.

The library's counting schemes (exact baselines, the Theorem-5/13 FPTRASes,
the Theorem-16 FPRAS, oracle counting) are one-shot calls; this package turns
them into a serving layer:

* :class:`~repro.service.plan.Planner` / :class:`~repro.service.plan.QueryPlan`
  — explainable scheme selection via the Figure-1 dichotomy, width measures
  and database-size heuristics, with user overrides;
* :class:`~repro.service.cost.CostModel` — observed-cost latency predictions
  from the service's profile store; with ``PlannerConfig(adaptive=True)`` the
  planner picks the cheapest sound scheme under a per-request latency budget
  (override > budget-adaptive > dichotomy, cold-start falls back to the
  dichotomy);
* :class:`~repro.service.cache.LRUCache` — plan and result caches keyed on
  canonical query forms and the databases' per-relation version counters;
* :class:`~repro.service.service.CountingService` — ``submit()`` /
  ``count_batch()`` front-end with serial / thread / process-pool execution
  and deterministic per-task seeding;
* :mod:`~repro.service.workload` — drives the :mod:`repro.workloads`
  generators through the service end-to-end.

See DESIGN.md ("The service layer") for the architecture.
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.cost import CostModel, CostPrediction
from repro.service.executor import EXECUTOR_MODES, execute_scheme, execute_scheme_result
from repro.service.keys import (
    canonical_query_key,
    canonical_variable_renaming,
    database_cache_key,
)
from repro.service.plan import SCHEMES, Planner, PlannerConfig, QueryPlan
from repro.service.service import (
    BatchReport,
    CountingService,
    CountRequest,
    CountResult,
    ServiceConfig,
)
from repro.service.workload import (
    WorkloadReport,
    mixed_query_workload,
    run_workload,
    workload_database,
)

__all__ = [
    "CountingService",
    "ServiceConfig",
    "CountRequest",
    "CountResult",
    "BatchReport",
    "Planner",
    "PlannerConfig",
    "QueryPlan",
    "CostModel",
    "CostPrediction",
    "SCHEMES",
    "LRUCache",
    "CacheStats",
    "EXECUTOR_MODES",
    "execute_scheme",
    "execute_scheme_result",
    "canonical_query_key",
    "canonical_variable_renaming",
    "database_cache_key",
    "mixed_query_workload",
    "workload_database",
    "run_workload",
    "WorkloadReport",
]
