"""The :class:`CountingService` front-end: plan, cache, execute.

The service ties the subsystem together::

    service = CountingService(database, ServiceConfig(executor="process"))
    result = service.submit(query, seed=7)            # one query
    report = service.count_batch(queries, seed=7)     # many, in parallel

Every call goes through four stages:

1. **Prepare** — :func:`repro.queries.prepared.prepare` compiles the query
   (canonical form, hypergraph, lazy widths/decompositions), shared
   process-wide across alpha-renamed shapes.
2. **Plan** — the :class:`~repro.service.plan.Planner` chooses the scheme
   (plan cache: canonical query form + decision inputs), reading the
   prepared widths.
3. **Result cache** — the (canonical query form, database token + version
   fingerprint, scheme, engine, epsilon, delta, seed) key is looked up;
   a hit returns the cached estimate without counting.  Mutating a database
   relation bumps its version counter, which changes the key of every query
   mentioning that relation — stale entries are never served and age out via
   LRU.
4. **Execute** — cache misses become :class:`CountTask`s and run on the
   configured back-end (process pool by default) through the unified
   :data:`repro.core.registry.REGISTRY`; each task's estimate is
   deterministic in its seed alone, so a batch seeded with ``seed=s`` gives
   task ``i`` the seed ``derive_seed(s, i)`` and reproduces the exact
   estimates of serial direct library calls with those seeds.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import ProfileStore
from repro.obs.trace import Tracer, activate, span, tracing_active
from repro.queries.prepared import prepare
from repro.queries.query import ConjunctiveQuery
from repro.relational.csp import DEFAULT_ENGINE, ENGINES
from repro.relational.structure import Structure
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultError, FaultPlan
from repro.resilience.retry import Deadline, RetryPolicy
from repro.service.cache import LRUCache

# Imported as a submodule (not the repro.shard package __init__) to stay
# cycle-safe: repro.shard.executor imports repro.service.executor.
from repro.shard.sharded import ShardedStructure
from repro.service.executor import (
    EXECUTOR_MODES,
    CountTask,
    run_tasks,
)
from repro.service.cost import CostModel
from repro.service.keys import database_cache_key
from repro.service.plan import Planner, PlannerConfig, QueryPlan
from repro.util.rng import derive_seed
from repro.util.validation import check_epsilon_delta

#: Ratio buckets for ``planner.prediction_error_ratio`` (actual/predicted —
#: 1.0 means the p95 prediction matched the executed latency exactly).
_RATIO_BUCKETS: Tuple[float, ...] = (0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0, 10.0)


@dataclass(frozen=True)
class ServiceConfig:
    """Service-wide defaults; per-request values override epsilon/delta/seed."""

    epsilon: float = 0.2
    delta: float = 0.05
    engine: str = DEFAULT_ENGINE
    executor: str = "process"
    max_workers: Optional[int] = None  # default: cpu count (min 2)
    plan_cache_size: int = 256
    result_cache_size: int = 4096
    planner: PlannerConfig = field(default_factory=PlannerConfig)
    #: The failure model (all optional): a deterministic chaos schedule to
    #: inject, the retry budget tasks run under, and a wall-clock budget
    #: (seconds) every batch's tasks must finish within.
    fault_plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    deadline_seconds: Optional[float] = None
    #: Telemetry (both optional and both zero-RNG — estimates are
    #: bit-identical with telemetry on or off): a tracer to record span trees
    #: onto (None = tracing off, the no-op fast path), and a shared metrics
    #: registry (None = the service creates a private one, isolating tests
    #: and twin services; pass ``repro.obs.METRICS`` to aggregate).
    tracer: Optional[Tracer] = None
    metrics: Optional[MetricsRegistry] = None
    #: Default per-request latency budget (seconds) for the adaptive planner
    #: (``planner.adaptive=True``); ``None`` means unbounded.  Individual
    #: requests override it via ``CountRequest.latency_budget_seconds``.
    latency_budget_seconds: Optional[float] = None
    #: When set, the service loads (merges) the profile snapshot at this
    #: path on construction and :meth:`CountingService.close` saves the
    #: warmed store back — observations survive restarts.  Use the service
    #: as a context manager to get save-on-close for free.
    profile_path: Optional[str] = None

    def __post_init__(self) -> None:
        check_epsilon_delta(self.epsilon, self.delta)
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}; expected one of {ENGINES}")
        if self.executor not in EXECUTOR_MODES:
            raise ValueError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTOR_MODES}"
            )

    def resolved_workers(self) -> int:
        if self.max_workers:
            return max(1, int(self.max_workers))
        return max(2, os.cpu_count() or 2)


@dataclass(frozen=True)
class CountRequest:
    """One query to count — the primary public request shape.

    ``database``/``epsilon``/``delta``/``seed``/``method`` default to the
    service's values when omitted.  This is also the v1 wire schema's
    request object (:mod:`repro.serve.schema`): the server, the sync client,
    the CLI and in-process callers all build the same ``CountRequest`` and
    hand it to :meth:`CountingService.submit` / ``count_batch`` directly.
    """

    query: ConjunctiveQuery
    database: Optional[Structure] = None
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    seed: Optional[int] = None
    method: Optional[str] = None  # planner override, e.g. "exact"
    #: Per-request latency budget for the adaptive planner (seconds);
    #: ``None`` defers to ``ServiceConfig.latency_budget_seconds``.
    latency_budget_seconds: Optional[float] = None
    #: Per-request hard deadline (seconds): the count must finish within
    #: this budget or raise :class:`~repro.resilience.retry.DeadlineExceeded`
    #: (in a batch, the tighter of this and the batch deadline wins).
    #: ``None`` defers to the batch/``ServiceConfig`` deadline.
    deadline_seconds: Optional[float] = None


@dataclass(frozen=True)
class CountResult:
    """A structured counting result with provenance."""

    index: int
    estimate: float
    scheme: str
    query_class: str
    plan: QueryPlan
    seed: Optional[int]
    epsilon: float
    delta: float
    cache: str  # "hit" | "miss" | "bypass"
    plan_seconds: float
    execute_seconds: float
    #: Width parameters the scheme run relied on (from the registry
    #: envelope); ``None`` for cache hits, which skip the scheme run.
    #: Sharded local plans carry the per-component width dicts instead.
    widths: Optional[Dict[str, Any]] = None
    #: The shard strategy (``"single"`` | ``"local"`` | ``"union"`` |
    #: ``"merged"``) when the request's database was sharded and the count
    #: actually ran; ``None`` for monolithic databases and cache hits.
    shard_strategy: Optional[str] = None
    #: Resilience provenance: one note per injected fault absorbed, retry
    #: taken, cache lookup degraded, or shard recounted on the merged view.
    #: Empty for clean runs.
    degradations: Tuple[str, ...] = ()
    #: Serving provenance: ``True`` when this response was coalesced onto
    #: another identical in-flight request (the count ran once and the
    #: estimate is shared).  Always ``False`` for in-process calls; set by
    #: :mod:`repro.serve` on follower responses.
    coalesced: bool = False

    @property
    def count(self) -> int:
        """The estimate rounded to the nearest integer (answer counts are
        integers)."""
        return int(round(self.estimate))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "estimate": self.estimate,
            "count": self.count,
            "scheme": self.scheme,
            "query_class": self.query_class,
            "seed": self.seed,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "cache": self.cache,
            "plan_seconds": round(self.plan_seconds, 6),
            "execute_seconds": round(self.execute_seconds, 6),
            "widths": self.widths,
            "shard_strategy": self.shard_strategy,
            "degradations": list(self.degradations),
            "coalesced": self.coalesced,
        }


@dataclass
class BatchReport:
    """The results of a :meth:`CountingService.count_batch` call plus the
    batch-level execution/caching summary."""

    results: List[CountResult]
    wall_seconds: float
    requested_executor: str
    executed_executor: str
    max_workers: int
    cache_hits: int
    cache_misses: int
    #: Batch-level resilience summary: executor-ladder degradations plus
    #: every per-result note, and the total retry attempts tasks consumed.
    degradations: List[str] = field(default_factory=list)
    retries: int = 0

    @property
    def throughput_qps(self) -> float:
        return len(self.results) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def estimates(self) -> List[float]:
        return [result.estimate for result in self.results]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "num_queries": len(self.results),
            "wall_seconds": round(self.wall_seconds, 6),
            "throughput_qps": round(self.throughput_qps, 3),
            "requested_executor": self.requested_executor,
            "executed_executor": self.executed_executor,
            "max_workers": self.max_workers,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degradations": list(self.degradations),
            "retries": self.retries,
            "results": [result.to_dict() for result in self.results],
        }


RequestLike = Union[CountRequest, ConjunctiveQuery]


class CountingService:
    """Planning, caching, parallel batch execution — one front door for all
    of the package's counting schemes."""

    def __init__(
        self,
        database: Optional[Structure] = None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.default_database = database
        self.profiles = ProfileStore()
        if self.config.profile_path and os.path.exists(self.config.profile_path):
            # Warm-start: fold the persisted snapshot in so the adaptive
            # planner starts from past observations instead of cold.
            self.profiles.merge(ProfileStore.load(self.config.profile_path))
        self.cost_model = CostModel(
            self.profiles, min_observations=self.config.planner.min_observations
        )
        self.planner = Planner(
            config=self.config.planner,
            engine=self.config.engine,
            cache_size=self.config.plan_cache_size,
            cost_model=self.cost_model,
        )
        self.result_cache = LRUCache(self.config.result_cache_size)
        #: One circuit breaker per service instance: executor-rung trips are
        #: remembered across batches, and the "back-end unavailable" warning
        #: fires once per instance rather than once per batch.
        self.breaker = CircuitBreaker()
        #: Per-database streaming state (change log + live subscriptions),
        #: keyed by structure token; populated by :meth:`subscribe`.
        self._streams: Dict[int, Any] = {}
        #: Live subscriptions on sharded databases (no change log; deltas
        #: route by shard fingerprint — see :mod:`repro.shard.subscription`).
        self._shard_subscriptions: List[Any] = []
        #: Telemetry: the (optional) tracer spans record onto, the metrics
        #: registry every counter/histogram lands in, and the per-(canonical
        #: form, size bucket, scheme) cost profiles fed on every execution.
        self.tracer = self.config.tracer
        self.metrics = self.config.metrics or MetricsRegistry()
        self.metrics.register_collector(
            "cache.plan", lambda: self.planner.cache.stats().to_dict()
        )
        self.metrics.register_collector(
            "cache.result", lambda: self.result_cache.stats().to_dict()
        )
        # The breaker tracks rungs lazily; the tracked_rungs leaf keeps the
        # series present (and scrapable) even before any rung is touched.
        self.metrics.register_collector(
            "breaker",
            lambda: {"tracked_rungs": len(self.breaker.stats()), **self.breaker.stats()},
        )
        self.metrics.register_collector(
            "stream", lambda: {"subscriptions": self._subscription_count()}
        )
        self.metrics.register_collector("profiles", self.profiles.stats)

    def _subscription_count(self) -> int:
        return sum(
            len(state.subscriptions) for state in self._streams.values()
        ) + len(self._shard_subscriptions)

    # ------------------------------------------------------------- internals
    def _resolve(self, request: RequestLike) -> CountRequest:
        if isinstance(request, ConjunctiveQuery):
            request = CountRequest(query=request)
        if request.database is None:
            if self.default_database is None:
                raise ValueError(
                    "request has no database and the service has no default"
                )
            request = replace(request, database=self.default_database)
        return request

    def _result_key(
        self,
        query_key: str,
        request: CountRequest,
        plan: QueryPlan,
        epsilon: float,
        delta: float,
        seed: Optional[int],
    ):
        return (
            query_key,
            database_cache_key(request.database, request.query),
            plan.scheme,
            plan.engine,
            epsilon,
            delta,
            seed,
        )

    def _record_execution(
        self,
        query_key: str,
        request: CountRequest,
        plan: QueryPlan,
        seconds: float,
        estimate: float,
    ) -> None:
        """Fold one executed count into the telemetry sinks: the per-scheme
        latency histogram and the (canonical form, size bucket, scheme,
        engine) cost profile the adaptive planner will read.  The engine label
        keeps columnar-upgraded runs distinguishable from indexed ones.
        Zero-RNG by construction."""
        self.metrics.histogram(
            "scheme.latency_seconds", scheme=plan.scheme, engine=plan.engine
        ).observe(seconds)
        self.profiles.record(
            query_key,
            request.database.size(),
            plan.scheme,
            seconds,
            estimate=estimate,
            engine=plan.engine,
        )

    def _score_prediction(self, plan: QueryPlan, seconds: float, span) -> QueryPlan:
        """Predicted-vs-actual accounting: classify the executed latency
        against the plan's predicted cost, fold the verdict into the
        ``planner.predictions{outcome=}`` counter, the
        ``planner.prediction_error_ratio`` histogram, and the request's span
        tree, and return the plan with the accounting attached to its
        ``predicted`` payload.  No-op for plans the adaptive overlay did not
        touch."""
        if plan.predicted is None:
            return plan
        chosen = plan.predicted.get("candidates", {}).get(
            plan.predicted.get("chosen"), {}
        )
        expected = chosen.get("seconds")
        if not expected or expected <= 0.0:
            ratio = None
            outcome = "unscored"
        else:
            ratio = seconds / expected
            if ratio > 2.0:
                outcome = "underestimate"
            elif ratio < 0.5:
                outcome = "overestimate"
            else:
                outcome = "accurate"
        self.metrics.counter("planner.predictions", outcome=outcome).inc()
        if ratio is not None:
            self.metrics.histogram(
                "planner.prediction_error_ratio", boundaries=_RATIO_BUCKETS
            ).observe(ratio)
        span.event(
            "planner.prediction",
            scheme=plan.scheme,
            predicted_seconds=expected,
            actual_seconds=seconds,
            error_ratio=ratio,
            outcome=outcome,
        )
        predicted = dict(plan.predicted)
        predicted.update(
            actual_seconds=seconds, error_ratio=ratio, outcome=outcome
        )
        return replace(plan, predicted=predicted)

    # ---------------------------------------------------------------- public
    def plan(
        self, query: ConjunctiveQuery, database: Optional[Structure] = None,
        method: Optional[str] = None,
        latency_budget_seconds: Optional[float] = None,
    ) -> QueryPlan:
        """Plan a query without executing it (the CLI's ``plan`` command)."""
        request = self._resolve(CountRequest(query=query, database=database, method=method))
        return self.planner.plan(
            request.query,
            request.database,
            override=request.method,
            latency_budget_seconds=self._resolve_budget(latency_budget_seconds),
        )

    def _resolve_budget(self, budget: Optional[float]) -> Optional[float]:
        return budget if budget is not None else self.config.latency_budget_seconds

    def submit(
        self,
        query: Optional[ConjunctiveQuery] = None,
        database: Optional[Structure] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        seed: Optional[int] = None,
        method: Optional[str] = None,
        deadline_seconds: Optional[float] = None,
        latency_budget_seconds: Optional[float] = None,
        *,
        request: Optional[CountRequest] = None,
    ) -> CountResult:
        """Count one query synchronously (plan + cache + serial execution).

        The primary form is the schema object — ``submit(request=
        CountRequest(...))`` — the same request the v1 wire API decodes to
        (:mod:`repro.serve.schema`), so in-process and over-the-wire calls
        are one code path.  The positional/kwarg form remains as a thin
        shim that builds the ``CountRequest`` (see DESIGN.md's deprecation
        note).

        ``deadline_seconds`` (kwarg or ``request.deadline_seconds``) bounds
        the call: the deadline propagates into the task (and its shard
        tasks) and expiry raises
        :class:`~repro.resilience.retry.DeadlineExceeded`.
        ``latency_budget_seconds`` is the adaptive planner's budget — unlike
        the hard deadline it never kills a request; it only steers scheme
        choice when ``planner.adaptive`` is on."""
        if request is not None:
            if any(
                value is not None
                for value in (
                    query, database, epsilon, delta, seed, method,
                    deadline_seconds, latency_budget_seconds,
                )
            ):
                raise ValueError(
                    "pass either request= or the legacy kwargs, not both"
                )
        else:
            if query is None:
                raise ValueError("submit() needs a query or a request=")
            # Legacy kwarg shim: fold the sprawl into the one request shape.
            request = CountRequest(
                query=query,
                database=database,
                epsilon=epsilon,
                delta=delta,
                seed=seed,
                method=method,
                latency_budget_seconds=latency_budget_seconds,
                deadline_seconds=deadline_seconds,
            )
        report = self.count_batch([request], executor="serial")
        return report.results[0]

    def count_batch(
        self,
        requests: Iterable[RequestLike],
        seed: Optional[int] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
    ) -> BatchReport:
        """Count a batch of independent queries, concurrently.

        ``seed`` is the batch master seed: request ``i`` without its own seed
        is counted with ``derive_seed(seed, i)``.  Requests with an explicit
        seed keep it.  Execution back-end and worker count default to the
        service config, as do the failure-model knobs: ``fault_plan``
        injects deterministic chaos, ``retry`` sets the per-task budget, and
        ``deadline_seconds`` stamps an absolute deadline that propagates
        into every task (shard tasks included) — expiry raises
        :class:`~repro.resilience.retry.DeadlineExceeded`.

        When the service has a tracer the whole batch records a
        ``service.count_batch`` span tree (per-request plan/cache-lookup
        children, executor rungs, per-task scheme spans shipped home from
        pool workers); metrics and cost profiles are recorded always.
        Telemetry never touches seeds or RNG state — estimates are
        bit-identical with tracing on or off.
        """
        with activate(self.tracer):
            with span("service.count_batch") as batch_span:
                report = self._count_batch_inner(
                    requests,
                    seed=seed,
                    executor=executor,
                    max_workers=max_workers,
                    fault_plan=fault_plan,
                    retry=retry,
                    deadline_seconds=deadline_seconds,
                )
                batch_span.set(
                    requests=len(report.results),
                    executor=report.requested_executor,
                    executed=report.executed_executor,
                    cache_hits=report.cache_hits,
                    cache_misses=report.cache_misses,
                    retries=report.retries,
                )
        self.metrics.histogram("service.batch_seconds").observe(report.wall_seconds)
        return report

    def _count_batch_inner(
        self,
        requests: Iterable[RequestLike],
        seed: Optional[int] = None,
        executor: Optional[str] = None,
        max_workers: Optional[int] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_seconds: Optional[float] = None,
    ) -> BatchReport:
        started = time.perf_counter()
        mode = executor if executor is not None else self.config.executor
        workers = (
            max(1, int(max_workers)) if max_workers else self.config.resolved_workers()
        )
        fault_plan = fault_plan if fault_plan is not None else self.config.fault_plan
        retry = retry if retry is not None else self.config.retry
        deadline = Deadline.after(
            deadline_seconds if deadline_seconds is not None else self.config.deadline_seconds
        )
        deadline_at = None if deadline is None else deadline.expires_at

        resolved = [self._resolve(request) for request in requests]
        results: List[Optional[CountResult]] = [None] * len(resolved)
        tasks: List[CountTask] = []
        #: One entry per cache-missing request that became executor task(s):
        #: (request index, plan, plan_seconds, result_key, epsilon, delta,
        #: task_seed, task slot positions, shard strategy, shard context,
        #: request-level degradation notes, canonical query key).  Sharded
        #: local plans own several slots; everything else exactly one.
        groups: List[tuple] = []
        databases: Dict[int, Structure] = {}
        batch_degradations: List[str] = []
        cache_hits = 0
        inline_count = 0

        #: Per-request spans (index-aligned; the shared no-op span when
        #: tracing is off).  Request spans close before the batch executes,
        #: so worker task spans are reattached to them afterwards.
        request_spans: List[Any] = []
        traced = tracing_active()

        for index, request in enumerate(resolved):
            epsilon = request.epsilon if request.epsilon is not None else self.config.epsilon
            delta = request.delta if request.delta is not None else self.config.delta
            check_epsilon_delta(epsilon, delta)
            if request.seed is not None:
                task_seed: Optional[int] = request.seed
            elif seed is not None:
                task_seed = derive_seed(seed, index)
            else:
                task_seed = None
            # Per-request deadlines (the wire API's deadline_seconds field)
            # tighten — never loosen — the batch deadline.
            task_deadline_at = deadline_at
            if request.deadline_seconds is not None:
                request_deadline = Deadline.after(request.deadline_seconds)
                task_deadline_at = (
                    request_deadline.expires_at
                    if deadline_at is None
                    else min(deadline_at, request_deadline.expires_at)
                )

            with span("service.request", index=index) as request_span:
                request_spans.append(request_span)
                with span("service.plan") as plan_span:
                    plan_started = time.perf_counter()
                    # Compile once: the prepared query carries the canonical
                    # form and the width/decomposition artifacts the planner
                    # and the scheme run both read (shared process-wide
                    # across alpha-renamed shapes).
                    prepared = prepare(request.query)
                    query_key = prepared.canonical_key
                    plan = self.planner.plan(
                        request.query,
                        request.database,
                        override=request.method,
                        prepared=prepared,
                        latency_budget_seconds=self._resolve_budget(
                            request.latency_budget_seconds
                        ),
                    )
                    plan_seconds = time.perf_counter() - plan_started
                    # Attach observed per-scheme costs after the plan-cache
                    # fetch, so cached plans never carry stale observations.
                    observed = self.profiles.summary(
                        query_key, request.database.size()
                    )
                    if observed:
                        plan = replace(plan, observed=observed)
                    plan_span.set(
                        scheme=plan.scheme,
                        query_class=plan.query_class,
                        size_class=plan.size_class,
                    )

                result_key = self._result_key(
                    query_key, request, plan, epsilon, delta, task_seed
                )
                request_notes: List[str] = []
                # The cache is best-effort under the failure model: a fault
                # at the ``cache.get`` site degrades this lookup to a miss
                # (the count re-runs with the same derived seed, so only
                # latency is lost) rather than being retried.
                cached_estimate = None
                cache_faulted = False
                with span("cache.lookup") as cache_span:
                    if fault_plan is not None:
                        try:
                            note = fault_plan.apply("cache.get", (index,), 0)
                            if note is not None:
                                request_notes.append(note)
                        except FaultError as error:
                            cache_faulted = True
                            request_notes.append(
                                f"cache.get[{index}]: degraded to miss ({error})"
                            )
                            cache_span.event("degraded to miss", error=str(error))
                    if not cache_faulted:
                        cached_estimate = self.result_cache.get(result_key)
                    cache_span.set(
                        outcome="hit" if cached_estimate is not None else "miss"
                    )
                if cached_estimate is not None:
                    cache_hits += 1
                    self.metrics.counter("service.requests", cache="hit").inc()
                    request_span.set(scheme=plan.scheme, cache="hit")
                    batch_degradations.extend(request_notes)
                    results[index] = CountResult(
                        index=index,
                        estimate=cached_estimate,
                        scheme=plan.scheme,
                        query_class=plan.query_class,
                        plan=plan,
                        seed=task_seed,
                        epsilon=epsilon,
                        delta=delta,
                        cache="hit",
                        plan_seconds=plan_seconds,
                        execute_seconds=0.0,
                        degradations=tuple(request_notes),
                    )
                    continue
                self.metrics.counter("service.requests", cache="miss").inc()
                request_span.set(scheme=plan.scheme, cache="miss")

                shard_context: Optional[tuple] = None
                if isinstance(request.database, ShardedStructure):
                    slots, strategy, shard_plan, inline = self._enqueue_sharded(
                        request,
                        plan,
                        epsilon,
                        delta,
                        task_seed,
                        tasks,
                        databases,
                        fault_plan=fault_plan,
                        retry=retry,
                        deadline_at=task_deadline_at,
                    )
                    if inline is not None:
                        # Union/merged strategy: computed inline just now.
                        inline_count += 1
                        estimate, execute_seconds, inline_notes = inline
                        request_notes.extend(inline_notes)
                        batch_degradations.extend(request_notes)
                        self.result_cache.put(result_key, estimate)
                        self._record_execution(
                            query_key, request, plan, execute_seconds, estimate
                        )
                        plan = self._score_prediction(
                            plan, execute_seconds, request_span
                        )
                        results[index] = CountResult(
                            index=index,
                            estimate=estimate,
                            scheme=plan.scheme,
                            query_class=plan.query_class,
                            plan=plan,
                            seed=task_seed,
                            epsilon=epsilon,
                            delta=delta,
                            cache="miss",
                            plan_seconds=plan_seconds,
                            execute_seconds=execute_seconds,
                            shard_strategy=strategy,
                            degradations=tuple(request_notes),
                        )
                        continue
                    shard_context = (request.database, shard_plan)
                else:
                    strategy = None
                    token = request.database.structure_token
                    databases[token] = request.database
                    slots = [len(tasks)]
                    tasks.append(
                        CountTask(
                            index=len(tasks),
                            query=request.query,
                            scheme=plan.scheme,
                            engine=plan.engine,
                            epsilon=epsilon,
                            delta=delta,
                            seed=task_seed,
                            database_token=token,
                            fault_sites=(("executor.task", (index,)),),
                            fault_plan=fault_plan,
                            retry=retry,
                            deadline_at=task_deadline_at,
                            traced=traced,
                        )
                    )
                groups.append(
                    (
                        index, plan, plan_seconds, result_key, epsilon, delta,
                        task_seed, slots, strategy, shard_context, request_notes,
                        query_key,
                    )
                )

        execution = run_tasks(
            tasks, databases, mode=mode, max_workers=workers, breaker=self.breaker
        )
        if tasks:
            self.metrics.counter(
                "executor.batches", mode=execution.executed_mode
            ).inc()
            self.metrics.counter("executor.retries").inc(execution.retries)
        batch_degradations.extend(execution.degradations)
        for (
            index, plan, plan_seconds, result_key, epsilon, delta,
            task_seed, slots, strategy, shard_context, request_notes,
            query_key,
        ) in groups:
            outcomes = [execution.outcomes[slot] for slot in slots]
            # Reattach the workers' ``executor.task`` span trees (pickled
            # home on the outcomes) under this request's span.
            for outcome in outcomes:
                request_spans[index].attach(outcome.span)
            repaired = []
            for position, outcome in enumerate(outcomes):
                if outcome.failed:
                    if shard_context is None:
                        raise RuntimeError(
                            f"count of request {index} failed after retries: {outcome.error}"
                        )
                    # Shard-level degradation of last resort: recount the
                    # failed component on the merged view with the same
                    # derived seed (bit-identical, not shard-parallel).
                    from repro.shard.executor import shard_fallback_outcome

                    sharded, shard_plan = shard_context
                    outcome, note = shard_fallback_outcome(
                        shard_plan.tasks[position],
                        outcome,
                        sharded,
                        plan.scheme,
                        plan.engine,
                        epsilon,
                        delta,
                        task_seed,
                    )
                    request_notes.append(note)
                else:
                    request_notes.extend(outcome.degradations)
                repaired.append(outcome)
            outcomes = repaired
            if len(outcomes) == 1:
                estimate = outcomes[0].estimate
                widths: Optional[Dict[str, Any]] = outcomes[0].widths
            else:
                # Sharded local plan: per-component counts multiply (the
                # components share no variables, so answer tuples factor).
                from repro.shard.executor import combine_local_estimates

                estimate = combine_local_estimates(
                    [outcome.estimate for outcome in outcomes]
                )
                widths = {"components": [outcome.widths for outcome in outcomes]}
            batch_degradations.extend(request_notes)
            self.result_cache.put(result_key, estimate)
            execute_seconds = sum(outcome.seconds for outcome in outcomes)
            self._record_execution(
                query_key,
                resolved[index],
                plan,
                execute_seconds,
                estimate,
            )
            plan = self._score_prediction(
                plan, execute_seconds, request_spans[index]
            )
            results[index] = CountResult(
                index=index,
                estimate=estimate,
                scheme=plan.scheme,
                query_class=plan.query_class,
                plan=plan,
                seed=task_seed,
                epsilon=epsilon,
                delta=delta,
                cache="miss",
                plan_seconds=plan_seconds,
                execute_seconds=execute_seconds,
                widths=widths,
                shard_strategy=strategy,
                degradations=tuple(request_notes),
            )

        if tasks:
            executed = execution.executed_mode
        elif inline_count:
            executed = "inline"
        else:
            executed = "cache"
        assert all(result is not None for result in results)
        return BatchReport(
            results=[result for result in results if result is not None],
            wall_seconds=time.perf_counter() - started,
            requested_executor=mode,
            executed_executor=executed,
            max_workers=workers,
            cache_hits=cache_hits,
            cache_misses=len(resolved) - cache_hits,
            degradations=batch_degradations,
            retries=execution.retries,
        )

    def _enqueue_sharded(
        self,
        request: CountRequest,
        plan: QueryPlan,
        epsilon: float,
        delta: float,
        task_seed: Optional[int],
        tasks: List[CountTask],
        databases: Dict[int, Structure],
        fault_plan: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        deadline_at: Optional[float] = None,
    ) -> Tuple[List[int], str, Any, Optional[Tuple[float, float, Tuple[str, ...]]]]:
        """Turn one sharded request into executor tasks.

        Returns ``(slot positions, shard strategy, shard plan, inline
        result)``: single/local shard plans append one :class:`CountTask`
        per shard task (over the per-shard structures, with pass-through or
        derived seeds, faultable at ``shard.count``) and occupy slots;
        union/merged plans run inline through the
        :class:`~repro.shard.executor.ShardExecutor` and return their
        ``(estimate, wall seconds, degradation notes)`` directly.
        """
        from repro.shard.executor import ShardExecutor, shard_task_seed
        from repro.shard.plan import plan_sharded_count

        sharded = request.database
        shard_plan = plan_sharded_count(request.query, sharded)
        if shard_plan.strategy in ("single", "local"):
            slots: List[int] = []
            for shard_task in shard_plan.tasks:
                shard_structure = sharded.shards[shard_task.shard]
                databases[shard_structure.structure_token] = shard_structure
                slots.append(len(tasks))
                tasks.append(
                    CountTask(
                        index=len(tasks),
                        query=shard_task.query,
                        scheme=plan.scheme,
                        engine=plan.engine,
                        epsilon=epsilon,
                        delta=delta,
                        seed=shard_task_seed(task_seed, shard_task),
                        database_token=shard_structure.structure_token,
                        fault_sites=(
                            ("shard.count", (shard_task.shard, shard_task.component)),
                        ),
                        fault_plan=fault_plan,
                        retry=retry,
                        deadline_at=deadline_at,
                        traced=tracing_active(),
                    )
                )
            return slots, shard_plan.strategy, shard_plan, None

        shard_result = ShardExecutor(
            mode="serial", fault_plan=fault_plan, retry=retry, breaker=self.breaker
        ).count(
            request.query,
            sharded,
            scheme=plan.scheme,
            epsilon=epsilon,
            delta=delta,
            seed=task_seed,
            engine=plan.engine,
            plan=shard_plan,
            deadline_at=deadline_at,
        )
        return (
            [],
            shard_plan.strategy,
            shard_plan,
            (shard_result.estimate, shard_result.wall_seconds, shard_result.degradations),
        )

    # ------------------------------------------------------------- streaming
    def subscribe(
        self,
        request: RequestLike,
        refresh: str = "eager",
        debounce_ticks: int = 4,
        budget_seconds: float = 1.0,
    ):
        """Open a live handle on one query's count (see
        :mod:`repro.stream.live`).

        The returned :class:`~repro.stream.live.CountSubscription` serves
        untouched-relation updates from its fingerprint for free and folds
        touched-relation updates in per the ``refresh`` policy (``"eager"``,
        ``"debounced"`` or ``"budget"``) — delta-patching exact schemes
        through the database's shared change log, re-estimating approximate
        ones through the registry with deterministically derived seeds.
        """
        from repro.queries.canonical import query_relation_names
        from repro.stream.live import CountSubscription, _StreamState

        resolved = self._resolve(request)
        if isinstance(resolved.database, ShardedStructure):
            # Sharded databases have no change log; the subscription keeps one
            # fingerprint per query component on its owning shard, so only
            # touched shards recount (see repro.shard.subscription).
            from repro.shard.subscription import ShardSubscription

            subscription = ShardSubscription(
                self,
                resolved,
                refresh=refresh,
                debounce_ticks=debounce_ticks,
                budget_seconds=budget_seconds,
            )
            self._shard_subscriptions.append(subscription)
            return subscription
        token = resolved.database.structure_token
        state = self._streams.get(token)
        if state is None:
            state = _StreamState(resolved.database)
            self._streams[token] = state
        # Watch the query's relations before the subscription takes its
        # first fingerprint, so the shared change log records them from the
        # start; undo everything if construction fails (bad policy, invalid
        # query/database pairing) — a failed subscribe must not leave an
        # attached observer behind.
        relations = query_relation_names(resolved.query)
        state.watch(relations)
        try:
            subscription = CountSubscription(
                self,
                resolved,
                state,
                refresh=refresh,
                debounce_ticks=debounce_ticks,
                budget_seconds=budget_seconds,
            )
        except BaseException:
            state.unwatch(relations)
            if not state.subscriptions:
                state.changelog.detach()
                self._streams.pop(token, None)
            raise
        state.subscriptions.append(subscription)
        return subscription

    def _drop_subscription(self, subscription) -> None:
        """Called by :meth:`CountSubscription.close`; detaches the change log
        and forgets the stream state with the last subscription."""
        token = subscription._database.structure_token
        state = self._streams.get(token)
        if state is not None and state.discard(subscription):
            del self._streams[token]

    def _drop_shard_subscription(self, subscription) -> None:
        """Called by :meth:`ShardSubscription.close` (idempotent)."""
        try:
            self._shard_subscriptions.remove(subscription)
        except ValueError:
            pass

    # -------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Persist the warmed profile store to ``config.profile_path`` (when
        configured).  Idempotent; safe to call on a service that recorded
        nothing.  The context-manager protocol calls this on exit."""
        if self.config.profile_path:
            self.profiles.save(self.config.profile_path)

    def __enter__(self) -> "CountingService":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def evict(self, database: Structure) -> int:
        """Drop every result-cache entry keyed to ``database`` (any
        fingerprint), returning how many were dropped.

        Version-fingerprinted keys already guarantee stale entries are never
        *served*; this reclaims the capacity they occupy, which matters for
        long streams of mutations where dead fingerprints pile up faster
        than LRU churn retires them.
        """
        token = database.structure_token

        def keyed_to_database(key) -> bool:
            return (
                isinstance(key, tuple)
                and len(key) >= 2
                and isinstance(key[1], tuple)
                and len(key[1]) == 2
                and key[1][0] == token
            )

        return self.result_cache.invalidate_where(keyed_to_database)

    def stats(self) -> Dict[str, Any]:
        """One nested snapshot keyed by subsystem, rebuilt on the metrics
        registry: cache hit/miss/eviction statistics, executor mode tallies
        and breaker state, per-scheme latency sketches, stream subscription
        counts, and the cost-profile store's aggregates."""
        snapshot = self.metrics.snapshot()

        def label_value(label_text: str) -> str:
            # Series label texts look like "mode=process" / "scheme=exact".
            return label_text.partition("=")[2] if "=" in label_text else label_text

        def parse_labels(label_text: str) -> Dict[str, str]:
            return {
                key: value
                for key, _, value in (
                    part.partition("=") for part in label_text.split(",") if part
                )
            }

        batches = {
            label_value(label): value
            for label, value in snapshot["counters"].get("executor.batches", {}).items()
        }
        retries = snapshot["counters"].get("executor.retries", {}).get("", 0.0)
        # Latency series carry scheme + engine labels.  Key the snapshot by
        # the bare scheme name when only one engine was observed for it (the
        # shape pre-engine consumers expect); "scheme@engine" otherwise.
        latency_series = [
            (parse_labels(label), sketch)
            for label, sketch in snapshot["histograms"]
            .get("scheme.latency_seconds", {})
            .items()
        ]
        engines_per_scheme: Dict[str, int] = {}
        for labels, _ in latency_series:
            scheme = labels.get("scheme", "")
            engines_per_scheme[scheme] = engines_per_scheme.get(scheme, 0) + 1
        schemes: Dict[str, Any] = {}
        for labels, sketch in latency_series:
            scheme = labels.get("scheme", "")
            engine = labels.get("engine", "")
            label = (
                scheme if engines_per_scheme[scheme] == 1 else f"{scheme}@{engine}"
            )
            schemes[label] = dict(sketch, engine=engine)
        return {
            "caches": {
                "plan": self.planner.cache.stats().to_dict(),
                "result": self.result_cache.stats().to_dict(),
            },
            "executor": {
                "breaker": self.breaker.stats(),
                "batches": batches,
                "retries": int(retries),
            },
            "schemes": schemes,
            "stream": {"subscriptions": self._subscription_count()},
            "profiles": self.profiles.stats(),
        }
