"""Workload driver: run the :mod:`repro.workloads` generators through the
service end-to-end.

Produces mixed CQ/DCQ/ECQ batches over synthetic graph databases (the paper
has no datasets; DESIGN.md records this substitution) and measures the
service's batch throughput — the building block of ``benchmarks/record_perf.py
--suite service`` and the CLI's ``batch --workload N``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Database
from repro.service.service import BatchReport, CountingService, CountRequest
from repro.util.rng import RNGLike, as_generator
from repro.workloads import database_from_graph, erdos_renyi_graph, random_tree_query

#: The class mix a "mixed" workload cycles through: plain CQs, DCQs with one
#: or two disequalities, ECQs with one negated atom.
_MIX = (
    {"num_disequalities": 0, "num_negations": 0},  # CQ
    {"num_disequalities": 1, "num_negations": 0},  # DCQ
    {"num_disequalities": 2, "num_negations": 0},  # DCQ
    {"num_disequalities": 0, "num_negations": 1},  # ECQ
)


def mixed_query_workload(
    num_queries: int,
    num_variables: Tuple[int, int] = (3, 5),
    rng: RNGLike = None,
    relation: str = "E",
    negated_relation: str = "F",
) -> List[ConjunctiveQuery]:
    """``num_queries`` random tree-shaped queries cycling through the
    CQ/DCQ/ECQ mix, with variable counts drawn from ``num_variables``
    (inclusive range)."""
    if num_queries <= 0:
        raise ValueError("num_queries must be positive")
    generator = as_generator(rng)
    low, high = num_variables
    queries = []
    for index in range(num_queries):
        recipe = _MIX[index % len(_MIX)]
        size = int(generator.integers(low, high + 1))
        queries.append(
            random_tree_query(
                num_variables=size,
                relation=relation,
                negated_relation=negated_relation,
                rng=generator,
                **recipe,
            )
        )
    return queries


def workload_database(
    num_vertices: int = 12,
    edge_probability: float = 0.3,
    negated_facts: int = 8,
    rng: RNGLike = None,
    relation: str = "E",
    negated_relation: str = "F",
) -> Database:
    """A synthetic database for the mixed workload: an Erdős–Rényi graph as a
    symmetric binary relation plus a sparse second relation for the negated
    atoms of the workload's ECQs (the schemes require every relation a query
    mentions to be declared in the database)."""
    generator = as_generator(rng)
    database = database_from_graph(
        erdos_renyi_graph(num_vertices, edge_probability, rng=generator),
        relation=relation,
    )
    from repro.relational.signature import RelationSymbol

    database.add_relation(RelationSymbol(negated_relation, 2))
    for _ in range(negated_facts):
        u, v = (
            int(generator.integers(0, num_vertices)),
            int(generator.integers(0, num_vertices)),
        )
        database.add_fact(negated_relation, (u, v))
    return database


@dataclass
class WorkloadReport:
    """A batch report plus the per-scheme breakdown of a workload run."""

    batch: BatchReport
    scheme_counts: Dict[str, int]
    class_counts: Dict[str, int]

    @property
    def throughput_qps(self) -> float:
        return self.batch.throughput_qps

    def to_dict(self) -> Dict[str, Any]:
        payload = self.batch.to_dict()
        payload["scheme_counts"] = dict(self.scheme_counts)
        payload["class_counts"] = dict(self.class_counts)
        return payload


def run_workload(
    service: CountingService,
    queries: Sequence[ConjunctiveQuery],
    database: Optional[Database] = None,
    seed: Optional[int] = None,
    epsilon: Optional[float] = None,
    delta: Optional[float] = None,
    executor: Optional[str] = None,
    max_workers: Optional[int] = None,
) -> WorkloadReport:
    """Run a workload through ``service.count_batch`` and summarise it."""
    requests = [
        CountRequest(query=query, database=database, epsilon=epsilon, delta=delta)
        for query in queries
    ]
    batch = service.count_batch(
        requests, seed=seed, executor=executor, max_workers=max_workers
    )
    scheme_counts: Dict[str, int] = {}
    class_counts: Dict[str, int] = {}
    for result in batch.results:
        scheme_counts[result.scheme] = scheme_counts.get(result.scheme, 0) + 1
        class_counts[result.query_class] = class_counts.get(result.query_class, 0) + 1
    return WorkloadReport(
        batch=batch, scheme_counts=scheme_counts, class_counts=class_counts
    )
