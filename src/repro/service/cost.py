"""The observed-cost model: turn profile sketches into latency predictions.

PR 7 built the measurement feed — :class:`~repro.obs.profile.ProfileStore`
records a latency sketch per (canonical form, database-size bucket, scheme,
engine) on every execution — and this module is the decision side of that
loop (ROADMAP item 4): a :class:`CostModel` reads the sketches back as
per-scheme **predictions** the planner can compare against a per-request
latency budget.

Design rules, all load-bearing:

* **Predictions are p95-based.**  A plan that fits the budget "on average"
  still blows it one run in three; the p95 of the observed sketch is the
  honest number to admit against a latency budget, and the interpolated
  fixed-bucket estimate is deterministic in the sketch alone.
* **Cold means cold.**  A (form, bucket, scheme, engine) with fewer than
  ``min_observations`` recorded runs yields an explicit
  :attr:`CostPrediction.cold` verdict rather than a guess; the planner falls
  back to the paper's Figure-1 dichotomy for schemes it has not measured.
  Observations from *other* size buckets are never borrowed — the
  exact-vs-approximate tradeoff is precisely what moves across buckets.
* **Prediction is pure.**  ``predict()`` is a deterministic function of the
  profile snapshot and its arguments: same snapshot + same request ⇒ same
  predictions ⇒ same plan.  :attr:`snapshot_token` exposes the store's
  monotone version so plan caches can key on "which snapshot predicted
  this".
* **Predicting never mutates.**  The model only reads the store; recording
  stays the service's job, after real executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence

from repro.obs.profile import ProfileStore, fingerprint_class

__all__ = ["CostModel", "CostPrediction", "PREDICTION_BASIS"]

#: The quantile predictions are read at (admitting against a latency budget
#: wants a high quantile, not the mean).
PREDICTION_BASIS = "p95"


@dataclass(frozen=True)
class CostPrediction:
    """One scheme's predicted latency for one (form, size-bucket, engine).

    ``seconds is None`` iff the prediction is **cold** (fewer than the
    model's ``min_observations`` recorded runs) — the planner must then fall
    back to the dichotomy rather than trust a thin sketch.
    """

    scheme: str
    engine: str
    fingerprint_class: int
    #: Predicted seconds (the sketch's p95); ``None`` when cold.
    seconds: Optional[float]
    #: Recorded runs backing the prediction (0 when nothing was observed).
    runs: int

    @property
    def cold(self) -> bool:
        return self.seconds is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scheme": self.scheme,
            "engine": self.engine,
            "fingerprint_class": self.fingerprint_class,
            "seconds": None if self.seconds is None else round(self.seconds, 9),
            "runs": self.runs,
            "cold": self.cold,
        }


class CostModel:
    """Per-scheme latency predictions over one :class:`ProfileStore`.

    Shared by the planner (scheme selection under a budget) and the standing
    subscriptions (drift detection: rolling predicted-vs-actual error).
    """

    def __init__(self, profiles: ProfileStore, min_observations: int = 3) -> None:
        if min_observations < 1:
            raise ValueError("min_observations must be at least 1")
        self.profiles = profiles
        self.min_observations = int(min_observations)

    @property
    def snapshot_token(self) -> int:
        """The profile store's monotone version — changes whenever any
        sketch changes, so it identifies the snapshot predictions came
        from."""
        return self.profiles.version

    def predict(
        self,
        canonical_key: str,
        database_size: int,
        scheme: str,
        engine: str,
    ) -> CostPrediction:
        """Predict one scheme's latency for this canonical form at this
        database size (cold when under-observed in this exact bucket)."""
        bucket = fingerprint_class(database_size)
        profile = self.profiles.get(canonical_key, database_size, scheme, engine)
        runs = 0 if profile is None else profile.runs
        if profile is None or runs < self.min_observations:
            return CostPrediction(
                scheme=scheme,
                engine=engine,
                fingerprint_class=bucket,
                seconds=None,
                runs=runs,
            )
        return CostPrediction(
            scheme=scheme,
            engine=engine,
            fingerprint_class=bucket,
            seconds=profile.latency.quantile(0.95),
            runs=runs,
        )

    def predict_schemes(
        self,
        canonical_key: str,
        database_size: int,
        schemes: Sequence[str],
        engine: str,
    ) -> Dict[str, CostPrediction]:
        """Predictions for every candidate scheme, in the given order."""
        return {
            scheme: self.predict(canonical_key, database_size, scheme, engine)
            for scheme in schemes
        }
