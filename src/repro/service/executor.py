"""Batch task execution: serial, thread-pool, and process-pool back-ends.

Counting is CPU-bound pure Python, so the parallel back-end of choice is a
``concurrent.futures.ProcessPoolExecutor``; a thread back-end is provided for
environments where spawning processes is not allowed (it interleaves rather
than parallelises, but exercises the same code path), and ``serial`` is the
baseline the throughput benches compare against.

Determinism: every task carries its own integer seed (derived by the service
via :func:`repro.util.rng.derive_seed`), and each scheme builds a fresh
generator from it — so the estimate of a task depends only on its payload,
never on which back-end ran it or in which order.  The failure model keeps
that contract: a task that faults is retried *in the worker* with the same
payload and therefore the same seed, so a recovered batch is bit-identical
to a fault-free one.

Worker processes receive the batch's databases **once**, through the pool
initializer, keyed by structure token; task payloads then reference databases
by token instead of re-pickling them per task (the fault plan and retry
policy ride along inside each task — both are frozen primitive dataclasses,
so the per-task pickle cost stays negligible).

Back-end failures walk the degradation ladder **process → thread → serial**
(:data:`repro.resilience.breaker.EXECUTOR_LADDER`): if creating or using the
process pool fails (sandboxed environments commonly forbid the required
semaphores), the batch re-runs on the thread pool, and only if that too is
unavailable does it run serially.  A :class:`CircuitBreaker` passed by the
service remembers trips across batches (and dedupes the unavailable warning
to once per service instance); bare ``run_tasks`` calls warn on every
degradation, as before.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import REGISTRY, CountResult as SchemeCountResult
from repro.obs.trace import Span, Tracer, activate, span
from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Structure
from repro.resilience.breaker import EXECUTOR_LADDER, CircuitBreaker
from repro.resilience.faults import FaultPlan
from repro.resilience.retry import (
    Deadline,
    FaultSites,
    RetriesExhausted,
    RetryPolicy,
    run_with_retry,
)

EXECUTOR_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class CountTask:
    """One unit of work: count one query over one database with one scheme.

    The resilience fields default to "no failure model": ``fault_plan=None``
    means no injection and a single attempt (unless a ``retry`` policy asks
    for more).  ``fault_sites`` names this task's injection points; empty
    resolves to ``(("executor.task", (index,)),)``.  ``deadline_at`` is an
    absolute :func:`time.monotonic` timestamp (monotonic is system-wide on
    Linux, so the value stamped by the service front-end is meaningful
    inside same-host pool workers)."""

    index: int
    query: ConjunctiveQuery
    scheme: str
    engine: str
    epsilon: float
    delta: float
    seed: Optional[int]
    database_token: int
    fault_sites: FaultSites = ()
    fault_plan: Optional[FaultPlan] = None
    retry: Optional[RetryPolicy] = None
    deadline_at: Optional[float] = None
    #: Whether the submitting context had tracing active.  Pool workers start
    #: with an empty context, so the flag (not a context variable) tells them
    #: to run under a worker-local tracer; the finished span rides back on
    #: the outcome and is reattached to the request span by the service.
    traced: bool = False

    def resolved_sites(self) -> FaultSites:
        return self.fault_sites or (("executor.task", (self.index,)),)


@dataclass(frozen=True)
class TaskOutcome:
    """What came back: the estimate, how long the scheme took, the width
    parameters the scheme run relied on (from the registry envelope), and
    the task's resilience provenance — how many attempts it took, any
    injected-fault/retry notes, and (if retries were exhausted) the error
    instead of an estimate."""

    index: int
    estimate: float
    seconds: float
    widths: Dict[str, Any] = field(default_factory=dict)
    attempts: int = 1
    degradations: Tuple[str, ...] = ()
    error: Optional[str] = None
    #: The task's ``executor.task`` span tree (only when the task was
    #: ``traced``): recorded by a worker-local tracer, pickled home with the
    #: outcome, and reattached under the request span by the service.
    span: Optional[Span] = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def execute_scheme_result(
    scheme: str,
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    seed: Optional[int],
    engine: str,
) -> SchemeCountResult:
    """Run one counting scheme through the unified registry, returning the
    full scheme-level :class:`~repro.core.registry.CountResult` envelope."""
    return REGISTRY.count(
        scheme,
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=seed,
        engine=engine,
    )


def execute_scheme(
    scheme: str,
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    seed: Optional[int],
    engine: str,
) -> float:
    """Run one counting scheme and return the bare estimate; thin wrapper
    over :func:`execute_scheme_result`, kept as the single dispatch point
    shared by the service, every executor back-end, and the equivalence
    checks in the benches (which re-run schemes with the same seeds)."""
    return execute_scheme_result(
        scheme, query, database, epsilon=epsilon, delta=delta, seed=seed, engine=engine
    ).estimate


def _run_task(task: CountTask, database: Structure) -> TaskOutcome:
    """Run one task under the failure model, retrying *in place* so the pool
    plumbing stays a plain ``map``.

    Every retry re-runs with the task's own seed — bit-identical recovery.
    Exhausted retries become an error-carrying outcome rather than an
    exception: the caller (service or shard executor) decides per task
    whether a fallback exists (shard merged-view recount) or the batch
    fails.  An expired deadline, by contrast, *raises* — there is no point
    finishing a batch nobody is waiting for.

    Traced tasks run under a worker-local tracer (pool workers have no
    context to inherit); the finished ``executor.task`` span — scheme run,
    retry/fault events, attempt count — is shipped home on the outcome."""
    if not task.traced:
        return _run_task_untraced(task, database)
    tracer = Tracer()
    with activate(tracer):
        with span(
            "executor.task",
            index=task.index,
            scheme=task.scheme,
            engine=task.engine,
            seed=task.seed,
        ) as task_span:
            outcome = _run_task_untraced(task, database)
            task_span.set(
                attempts=outcome.attempts,
                seconds=round(outcome.seconds, 9),
                failed=outcome.failed,
            )
            for note in outcome.degradations:
                task_span.event(note)
    return replace(outcome, span=tracer.roots[0] if tracer.roots else None)


def _run_task_untraced(task: CountTask, database: Structure) -> TaskOutcome:
    started = time.perf_counter()
    deadline = (
        None if task.deadline_at is None else Deadline(expires_at=task.deadline_at)
    )

    def operation() -> SchemeCountResult:
        return execute_scheme_result(
            task.scheme,
            task.query,
            database,
            epsilon=task.epsilon,
            delta=task.delta,
            seed=task.seed,
            engine=task.engine,
        )

    try:
        result, trace = run_with_retry(
            operation,
            sites=task.resolved_sites(),
            policy=task.retry,
            plan=task.fault_plan,
            deadline=deadline,
        )
    except RetriesExhausted as error:
        return TaskOutcome(
            index=task.index,
            estimate=float("nan"),
            seconds=time.perf_counter() - started,
            attempts=error.attempts,
            degradations=(str(error),),
            error=str(error),
        )
    return TaskOutcome(
        index=task.index,
        estimate=result.estimate,
        seconds=time.perf_counter() - started,
        widths=result.widths,
        attempts=trace.attempts,
        degradations=tuple(trace.notes),
    )


# ------------------------------------------------------------ process workers
#: Databases of the current batch, installed in each worker by the pool
#: initializer (on fork platforms this is inherited copy-on-write).
_WORKER_DATABASES: Dict[int, Structure] = {}


def _init_worker(databases: Dict[int, Structure]) -> None:
    _WORKER_DATABASES.clear()
    _WORKER_DATABASES.update(databases)


def _run_task_in_worker(task: CountTask) -> TaskOutcome:
    return _run_task(task, _WORKER_DATABASES[task.database_token])


@dataclass
class ExecutionReport:
    """The outcomes (in task order) plus how they were actually executed:
    ``degradations`` records back-end rungs skipped or abandoned (per-task
    retry notes live on the outcomes), ``retries`` totals the extra attempts
    tasks needed."""

    outcomes: List[TaskOutcome]
    requested_mode: str
    executed_mode: str
    max_workers: int
    wall_seconds: float
    degradations: List[str] = field(default_factory=list)
    retries: int = 0


class ExecutorUnavailable(RuntimeError):
    """A back-end could not start or died beneath the batch (infrastructure
    failure, not a task failure) — the signal to step down the ladder."""

    def __init__(self, mode: str, cause: BaseException) -> None:
        super().__init__(f"{mode} executor unavailable ({type(cause).__name__}: {cause})")
        self.mode = mode
        self.cause = cause


def _run_serial(tasks: Sequence[CountTask], databases: Dict[int, Structure]) -> List[TaskOutcome]:
    return [_run_task(task, databases[task.database_token]) for task in tasks]


def _run_thread(
    tasks: Sequence[CountTask], databases: Dict[int, Structure], workers: int
) -> List[TaskOutcome]:
    with ThreadPoolExecutor(max_workers=workers) as pool:
        futures = []
        try:
            for task in tasks:
                futures.append(
                    pool.submit(_run_task, task, databases[task.database_token])
                )
        except RuntimeError as error:  # "can't start new thread"
            for future in futures:
                future.cancel()
            raise ExecutorUnavailable("thread", error) from error
        # future.result() re-raises task exceptions unchanged (deadline
        # expiry must abort the batch, not degrade it).
        return [future.result() for future in futures]


def _run_process(
    tasks: Sequence[CountTask], databases: Dict[int, Structure], workers: int
) -> List[TaskOutcome]:
    # Only pool-infrastructure failures are ladder-worthy: sandboxed
    # environments commonly have no usable multiprocessing start method at
    # all (get_context raises), or forbid the required semaphores (OSError
    # at pool creation), and a crashed worker raises BrokenExecutor.  An
    # exception raised *by a task* propagates unchanged, as it would
    # serially — hence the preflight is separate from the pool, so a
    # RuntimeError raised by a task inside pool.map is not mistaken for an
    # unavailable start method.
    try:
        multiprocessing.get_context()
    except (ValueError, RuntimeError, OSError) as error:
        raise ExecutorUnavailable("process", error) from error
    try:
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(dict(databases),),
        ) as pool:
            return list(pool.map(_run_task_in_worker, tasks, chunksize=1))
    except (OSError, BrokenExecutor) as error:
        raise ExecutorUnavailable("process", error) from error


_BACKENDS = {"serial": None, "thread": _run_thread, "process": _run_process}


def run_tasks(
    tasks: Sequence[CountTask],
    databases: Dict[int, Structure],
    mode: str = "process",
    max_workers: Optional[int] = None,
    breaker: Optional[CircuitBreaker] = None,
) -> ExecutionReport:
    """Execute ``tasks`` with the requested back-end, returning outcomes in
    task order.  Back-end failures degrade down the process→thread→serial
    ladder; a ``breaker`` (normally the service's) skips rungs whose circuit
    is open and dedupes the degradation warning to once per breaker."""
    if mode not in EXECUTOR_MODES:
        raise ValueError(f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}")
    workers = max(1, int(max_workers)) if max_workers else 2
    with span("executor.run_tasks", mode=mode, tasks=len(tasks)) as batch_span:
        report = _run_tasks_inner(tasks, databases, mode, workers, breaker)
        batch_span.set(
            executed_mode=report.executed_mode,
            retries=report.retries,
            degradations=len(report.degradations),
        )
        for note in report.degradations:
            batch_span.event(note)
    return report


def _run_tasks_inner(
    tasks: Sequence[CountTask],
    databases: Dict[int, Structure],
    mode: str,
    workers: int,
    breaker: Optional[CircuitBreaker],
) -> ExecutionReport:
    started = time.perf_counter()
    degradations: List[str] = []
    executed_mode = mode

    if mode == "serial" or workers == 1 or len(tasks) <= 1:
        outcomes: Optional[List[TaskOutcome]] = _run_serial(tasks, databases)
        executed_mode = "serial"
    else:
        rungs = (
            breaker.plan_modes(mode)
            if breaker is not None
            else EXECUTOR_LADDER[EXECUTOR_LADDER.index(mode):]
        )
        outcomes = None
        for position, rung in enumerate(rungs):
            try:
                if rung == "serial":
                    outcomes = _run_serial(tasks, databases)
                else:
                    outcomes = _BACKENDS[rung](tasks, databases, workers)
            except ExecutorUnavailable as error:
                next_rung = rungs[position + 1] if position + 1 < len(rungs) else "serial"
                degradations.append(f"executor: {error}; degrading to {next_rung}")
                if breaker is not None:
                    breaker.record_failure(rung)
                if breaker is None or breaker.should_warn(f"executor.{rung}"):
                    warnings.warn(
                        f"{error}; falling back to {next_rung} execution",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                continue
            executed_mode = rung if rung == mode else f"{rung}-fallback"
            if breaker is not None:
                breaker.record_success(rung)
            break
        if outcomes is None:  # every rung skipped/failed; serial is the floor
            outcomes = _run_serial(tasks, databases)
            executed_mode = "serial-fallback"

    return ExecutionReport(
        outcomes=list(outcomes),
        requested_mode=mode,
        executed_mode=executed_mode,
        max_workers=workers,
        wall_seconds=time.perf_counter() - started,
        degradations=degradations,
        retries=sum(max(0, outcome.attempts - 1) for outcome in outcomes),
    )
