"""Batch task execution: serial, thread-pool, and process-pool back-ends.

Counting is CPU-bound pure Python, so the parallel back-end of choice is a
``concurrent.futures.ProcessPoolExecutor``; a thread back-end is provided for
environments where spawning processes is not allowed (it interleaves rather
than parallelises, but exercises the same code path), and ``serial`` is the
baseline the throughput benches compare against.

Determinism: every task carries its own integer seed (derived by the service
via :func:`repro.util.rng.derive_seed`), and each scheme builds a fresh
generator from it — so the estimate of a task depends only on its payload,
never on which back-end ran it or in which order.

Worker processes receive the batch's databases **once**, through the pool
initializer, keyed by structure token; task payloads then reference databases
by token instead of re-pickling them per task.  If creating or using the
process pool fails (sandboxed environments commonly forbid the required
semaphores), execution falls back to serial and the report says so.
"""

from __future__ import annotations

import multiprocessing
import time
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.registry import REGISTRY, CountResult as SchemeCountResult
from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Structure

EXECUTOR_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class CountTask:
    """One unit of work: count one query over one database with one scheme."""

    index: int
    query: ConjunctiveQuery
    scheme: str
    engine: str
    epsilon: float
    delta: float
    seed: Optional[int]
    database_token: int


@dataclass(frozen=True)
class TaskOutcome:
    """What came back: the estimate, how long the scheme took, and the width
    parameters the scheme run relied on (from the registry envelope)."""

    index: int
    estimate: float
    seconds: float
    widths: Dict[str, Any] = field(default_factory=dict)


def execute_scheme_result(
    scheme: str,
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    seed: Optional[int],
    engine: str,
) -> SchemeCountResult:
    """Run one counting scheme through the unified registry, returning the
    full scheme-level :class:`~repro.core.registry.CountResult` envelope."""
    return REGISTRY.count(
        scheme,
        query,
        database,
        epsilon=epsilon,
        delta=delta,
        rng=seed,
        engine=engine,
    )


def execute_scheme(
    scheme: str,
    query: ConjunctiveQuery,
    database: Structure,
    epsilon: float,
    delta: float,
    seed: Optional[int],
    engine: str,
) -> float:
    """Run one counting scheme and return the bare estimate; thin wrapper
    over :func:`execute_scheme_result`, kept as the single dispatch point
    shared by the service, every executor back-end, and the equivalence
    checks in the benches (which re-run schemes with the same seeds)."""
    return execute_scheme_result(
        scheme, query, database, epsilon=epsilon, delta=delta, seed=seed, engine=engine
    ).estimate


def _run_task(task: CountTask, database: Structure) -> TaskOutcome:
    started = time.perf_counter()
    result = execute_scheme_result(
        task.scheme,
        task.query,
        database,
        epsilon=task.epsilon,
        delta=task.delta,
        seed=task.seed,
        engine=task.engine,
    )
    return TaskOutcome(
        index=task.index,
        estimate=result.estimate,
        seconds=time.perf_counter() - started,
        widths=result.widths,
    )


# ------------------------------------------------------------ process workers
#: Databases of the current batch, installed in each worker by the pool
#: initializer (on fork platforms this is inherited copy-on-write).
_WORKER_DATABASES: Dict[int, Structure] = {}


def _init_worker(databases: Dict[int, Structure]) -> None:
    _WORKER_DATABASES.clear()
    _WORKER_DATABASES.update(databases)


def _run_task_in_worker(task: CountTask) -> TaskOutcome:
    return _run_task(task, _WORKER_DATABASES[task.database_token])


@dataclass
class ExecutionReport:
    """The outcomes (in task order) plus how they were actually executed."""

    outcomes: List[TaskOutcome]
    requested_mode: str
    executed_mode: str
    max_workers: int
    wall_seconds: float


def run_tasks(
    tasks: Sequence[CountTask],
    databases: Dict[int, Structure],
    mode: str = "process",
    max_workers: Optional[int] = None,
) -> ExecutionReport:
    """Execute ``tasks`` with the requested back-end, returning outcomes in
    task order.  Process-pool failures fall back to serial execution."""
    if mode not in EXECUTOR_MODES:
        raise ValueError(f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}")
    workers = max(1, int(max_workers)) if max_workers else 2
    started = time.perf_counter()
    executed_mode = mode

    if mode == "serial" or workers == 1 or len(tasks) <= 1:
        outcomes = [_run_task(task, databases[task.database_token]) for task in tasks]
        executed_mode = "serial"
    elif mode == "thread":
        with ThreadPoolExecutor(max_workers=workers) as pool:
            outcomes = list(
                pool.map(lambda t: _run_task(t, databases[t.database_token]), tasks)
            )
    else:
        # Only pool-infrastructure failures trigger the serial fallback:
        # sandboxed environments commonly have no usable multiprocessing
        # start method at all (get_context raises), or forbid the required
        # semaphores (OSError at pool creation), and a crashed worker raises
        # BrokenExecutor.  An exception raised *by a task* propagates
        # unchanged, as it would serially.
        fallback_error: Optional[BaseException] = None
        try:
            # Preflight, separately from the pool so that a RuntimeError
            # raised *by a task* inside pool.map is not mistaken for an
            # unavailable start method.
            multiprocessing.get_context()
        except (ValueError, RuntimeError, OSError) as error:
            fallback_error = error
        if fallback_error is None:
            try:
                with ProcessPoolExecutor(
                    max_workers=workers,
                    initializer=_init_worker,
                    initargs=(dict(databases),),
                ) as pool:
                    outcomes = list(pool.map(_run_task_in_worker, tasks, chunksize=1))
            except (OSError, BrokenExecutor) as error:
                fallback_error = error
        if fallback_error is not None:
            warnings.warn(
                "process executor unavailable "
                f"({type(fallback_error).__name__}: {fallback_error}); "
                "falling back to serial execution",
                RuntimeWarning,
                stacklevel=2,
            )
            outcomes = [_run_task(task, databases[task.database_token]) for task in tasks]
            executed_mode = "serial-fallback"

    return ExecutionReport(
        outcomes=list(outcomes),
        requested_mode=mode,
        executed_mode=executed_mode,
        max_workers=workers,
        wall_seconds=time.perf_counter() - started,
    )
