"""Cache keys: canonical query forms and version-keyed database fingerprints.

The canonical query serialisation moved to :mod:`repro.queries.canonical` so
the prepared-query layer can use it without depending on the service package;
this module re-exports it under the historical import path and keeps the
database-side key:

:func:`database_cache_key` pairs the database's identity token with the
version counters of exactly the relations the query mentions (plus the
universe version).  Mutating a relation bumps its counter and silently
strands every cached entry built over the old contents; mutating a relation
the query does not mention leaves the query's keys valid.
"""

from __future__ import annotations

from typing import Tuple

from repro.queries.canonical import (
    canonical_query_key,
    canonical_variable_renaming,
    query_relation_names,
)
from repro.queries.query import ConjunctiveQuery
from repro.relational.structure import Structure

__all__ = [
    "canonical_query_key",
    "canonical_variable_renaming",
    "query_relation_names",
    "database_cache_key",
]


def database_cache_key(
    database: Structure, query: ConjunctiveQuery
) -> Tuple[int, Tuple[int, Tuple[Tuple[str, int], ...]]]:
    """The database component of a result-cache key: identity token plus the
    version fingerprint restricted to the query's relations."""
    return (
        database.structure_token,
        database.version_fingerprint(query_relation_names(query)),
    )
