"""Compatibility re-export: the LRU cache now lives in :mod:`repro.util.cache`
so the queries/core layers (most importantly the prepared-query cache of
:mod:`repro.queries.prepared`) can use it without a dependency on the service
layer.  Existing imports of ``repro.service.cache`` keep working unchanged."""

from repro.util.cache import CacheStats, LRUCache

__all__ = ["CacheStats", "LRUCache"]
