"""Approximate uniform sampling of query answers (Section 6).

The paper notes that all of its counting problems are self-partitionable, so
approximate counting and approximately uniform sampling are interchangeable
(Jerrum–Valiant–Vazirani).  :func:`sample_answers` implements the standard
self-reducibility sampler on top of the package's counters.
"""

from repro.sampling.jvv import exact_uniform_answer_sampler, sample_answers

__all__ = ["sample_answers", "exact_uniform_answer_sampler"]
