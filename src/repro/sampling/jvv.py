"""Jerrum–Valiant–Vazirani style sampling of answers via self-reducibility.

To draw an (approximately) uniform answer of ``(phi, D)``:

1. Order the free variables ``x_1, ..., x_l``.
2. For the first unassigned free variable, estimate — for every candidate
   value ``v ∈ U(D)`` — the number of answers extending the current partial
   assignment with ``x_i = v`` (using the "constants via singleton unary
   relations" trick of Section 1.1 to pin already-chosen values).
3. Choose ``v`` with probability proportional to the estimates and recurse.

With exact counts the sampler is exactly uniform; with (epsilon, delta)
counts it is approximately uniform (the standard JVV argument).  The exact
variant is used as ground truth in tests; the approximate variant demonstrates
Section 6's reduction.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.exact import count_answers_exact, enumerate_answers_exact
from repro.queries.query import ConjunctiveQuery
from repro.queries.rewriting import add_constant_constraint
from repro.relational.csp import DEFAULT_ENGINE
from repro.relational.structure import Structure
from repro.util.rng import RNGLike, as_generator, weighted_choice

Element = Hashable
AnswerTuple = Tuple[Element, ...]
#: A counting procedure: (query, database) -> (approximate) answer count.
Counter = Callable[[ConjunctiveQuery, Structure], float]


def exact_uniform_answer_sampler(
    query: ConjunctiveQuery,
    database: Structure,
    num_samples: int,
    rng: RNGLike = None,
    engine: str = DEFAULT_ENGINE,
) -> List[AnswerTuple]:
    """Exactly uniform answer samples, by enumerating Ans(phi, D) (ground
    truth for the approximate sampler's tests)."""
    generator = as_generator(rng)
    answers = sorted(enumerate_answers_exact(query, database, engine=engine), key=repr)
    if not answers:
        return []
    indices = generator.integers(0, len(answers), size=num_samples)
    return [answers[int(index)] for index in indices]


def _pin_value(
    query: ConjunctiveQuery,
    database: Structure,
    variable: str,
    value: Element,
    tag: int,
) -> Tuple[ConjunctiveQuery, Structure]:
    """Pin ``variable = value`` via a fresh singleton unary relation."""
    return add_constant_constraint(
        query, database, variable, value, relation_name=f"R_pin_{tag}_{variable}"
    )


def sample_answers(
    query: ConjunctiveQuery,
    database: Structure,
    num_samples: int = 1,
    epsilon: float = 0.25,
    delta: float = 0.1,
    rng: RNGLike = None,
    counter: Optional[Counter] = None,
    exact: bool = False,
    engine: str = DEFAULT_ENGINE,
) -> List[AnswerTuple]:
    """Draw ``num_samples`` (approximately) uniform answers of ``(phi, D)``.

    Parameters
    ----------
    counter:
        The counting procedure used inside the self-reducibility recursion.
        Defaults to the exact counter when ``exact`` is true and to the
        appropriate approximation scheme otherwise.
    exact:
        Use exact counts, yielding an exactly uniform sampler (slower).
    engine:
        The CSP engine (``"indexed"``/``"naive"``) backing the default
        counters; ignored when an explicit ``counter`` is given.

    Returns an empty list when the query has no answers.
    """
    generator = as_generator(rng)
    if counter is None:
        if exact:
            counter = lambda q, d: float(count_answers_exact(q, d, engine=engine))  # noqa: E731
        else:
            # Dispatch through the unified scheme registry.  The pinned
            # queries of the self-reducibility recursion share one *shape*
            # per (recursion depth, variable) — only the pinned value in the
            # database changes — so the prepared-query cache computes each
            # shape's widths once instead of once per candidate value.
            from repro.core.registry import REGISTRY
            from repro.queries.query import QueryClass

            def counter(q: ConjunctiveQuery, d: Structure) -> float:
                scheme = (
                    "fptras_ecq"
                    if q.query_class() is QueryClass.ECQ
                    else "fptras_dcq"
                )
                return REGISTRY.count(
                    scheme, q, d, epsilon=epsilon, delta=delta,
                    rng=generator, engine=engine,
                ).estimate

    total = counter(query, database)
    if total <= 0.5:
        return []

    universe = database.canonical_universe()
    samples: List[AnswerTuple] = []
    for _ in range(num_samples):
        current_query, current_database = query, database
        chosen: Dict[str, Element] = {}
        failed = False
        for position, variable in enumerate(query.free_variables):
            weights: List[float] = []
            candidates: List[Element] = []
            for value in universe:
                pinned_query, pinned_database = _pin_value(
                    current_query, current_database, variable, value, tag=position
                )
                weight = max(0.0, float(counter(pinned_query, pinned_database)))
                if weight > 0:
                    candidates.append(value)
                    weights.append(weight)
            if not candidates:
                failed = True
                break
            value = weighted_choice(candidates, weights, rng=generator)
            chosen[variable] = value
            current_query, current_database = _pin_value(
                current_query, current_database, variable, value, tag=position
            )
        if failed:
            continue
        samples.append(tuple(chosen[v] for v in query.free_variables))
    return samples
