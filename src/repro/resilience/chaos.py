"""The chaos harness: replay workloads under escalating fault rates and
assert bit-identity with the fault-free oracle.

Every layer of the repo promises the same correctness oracle — estimates are
a deterministic function of the derived seeds, never of scheduling, back-end
or (now) injected failure.  The harness makes that promise executable: for
each scenario it runs a **fault-free oracle** and a **chaos twin** of the
same workload under the same seeds, with a deterministic
:func:`~repro.resilience.faults.uniform_plan` injecting crashes at an
escalating rate into the twin, and demands exact estimate equality (plus a
fresh service as a second oracle, guarding against the twin corrupting
shared state).

Three scenarios:

* **batch** — a mixed CQ/DCQ/ECQ workload through ``count_batch`` with
  faults at ``executor.task`` and ``cache.get``, across serial and thread
  back-ends (process adds only pool plumbing already covered by the
  differential tests, at much higher cost per run);
* **shard** — localising queries over 1/2/4-shard databases with faults at
  ``shard.count``, including a permanent-fault case that must take the
  merged-view fallback and still agree;
* **stream** — twin databases replaying one mutation schedule, the chaos
  twin's refreshes faulted at ``stream.refresh``; every read must agree
  with the fault-free twin's.

Run it directly (the CI ``chaos`` job does)::

    python -m repro.resilience.chaos --seed 2022 [--smoke] [--rates 0.1 0.5 1.0]

Exit status 0 iff every comparison matched.  This module deliberately lives
outside the package's ``__init__`` exports: it drives
:class:`repro.service.CountingService`, whose executor imports
:mod:`repro.resilience` — importing chaos at package level would close that
cycle.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.resilience.faults import FaultPlan, FaultRule, uniform_plan
from repro.resilience.retry import RetryPolicy

#: Retry budget every chaos twin runs under: enough attempts to absorb the
#: ``times=1`` transient faults the uniform plans inject.
CHAOS_RETRY = RetryPolicy(max_attempts=3)


@dataclass
class ChaosCase:
    """One scenario at one fault rate: how many comparisons ran and agreed."""

    scenario: str
    rate: float
    checks: int = 0
    mismatches: List[str] = field(default_factory=list)
    retries: int = 0
    degradations: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def compare(self, label: str, expected: float, actual: float) -> None:
        self.checks += 1
        if expected != actual:
            self.mismatches.append(f"{label}: expected {expected!r}, got {actual!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "scenario": self.scenario,
            "rate": self.rate,
            "checks": self.checks,
            "ok": self.ok,
            "mismatches": self.mismatches,
            "retries": self.retries,
            "degradations": self.degradations,
            "seconds": round(self.seconds, 4),
        }


@dataclass
class ChaosReport:
    """All cases of one harness run."""

    seed: int
    cases: List[ChaosCase] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def total_checks(self) -> int:
        return sum(case.checks for case in self.cases)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "ok": self.ok,
            "total_checks": self.total_checks,
            "cases": [case.to_dict() for case in self.cases],
        }


def _batch_workload(seed: int, num_queries: int):
    from repro.service.workload import mixed_query_workload, workload_database

    database = workload_database(num_vertices=10, edge_probability=0.3, rng=seed)
    queries = mixed_query_workload(num_queries, num_variables=(3, 4), rng=seed + 1)
    return database, queries


def run_chaos_batch(
    seed: int, rate: float, num_queries: int = 6, executors: Sequence[str] = ("serial", "thread")
) -> ChaosCase:
    """Mixed batch workload: chaos twin (faults at ``executor.task`` and
    ``cache.get``) must reproduce the fault-free oracle's estimates."""
    from repro.service import CountingService, ServiceConfig

    case = ChaosCase(scenario="batch", rate=rate)
    started = time.perf_counter()
    database, queries = _batch_workload(seed, num_queries)
    plan = uniform_plan(seed, rate, sites=("executor.task", "cache.get"))
    for executor in executors:
        oracle = CountingService(database, ServiceConfig(executor="serial"))
        clean = oracle.count_batch(queries, seed=seed)
        chaos_service = CountingService(database, ServiceConfig(executor=executor))
        faulted = chaos_service.count_batch(
            queries, seed=seed, fault_plan=plan, retry=CHAOS_RETRY
        )
        case.retries += faulted.retries
        case.degradations += len(faulted.degradations)
        for clean_result, chaos_result in zip(clean.results, faulted.results):
            case.compare(
                f"batch[{executor}] query {clean_result.index} ({clean_result.scheme})",
                clean_result.estimate,
                chaos_result.estimate,
            )
    case.seconds = time.perf_counter() - started
    return case


def run_chaos_shard(
    seed: int, rate: float, shard_counts: Sequence[int] = (1, 2, 4)
) -> ChaosCase:
    """Sharded counts under ``shard.count`` faults, across shard counts;
    one permanent-fault rule per run forces the merged-view fallback."""
    from repro.queries import parse_query
    from repro.service import CountingService, ServiceConfig
    from repro.service.workload import workload_database
    from repro.shard.partition import ByRelationPartitioner
    from repro.shard.sharded import ShardedStructure

    case = ChaosCase(scenario="shard", rate=rate)
    started = time.perf_counter()
    database = workload_database(num_vertices=10, edge_probability=0.3, rng=seed + 2)
    queries = [
        parse_query("Ans(x, y) :- E(x, y)"),
        parse_query("Ans(x, u) :- E(x, y), F(u, v)"),
        parse_query("Ans(x) :- E(x, y), E(y, z), x != z"),
    ]
    transient = uniform_plan(seed, rate, sites=("shard.count",))
    # Shard 0 permanently down: every one of its tasks must exhaust retries
    # and recount on the merged view — and still agree with the oracle.
    permanent = FaultPlan(
        seed=seed,
        rules=(FaultRule(site="shard.count", kind="crash", rate=rate, times=99, match=(0,)),),
    )
    for num_shards in shard_counts:
        sharded = ShardedStructure.from_structure(
            database, ByRelationPartitioner(num_shards, assignment={"E": 0, "F": num_shards - 1})
        )
        oracle = CountingService(sharded, ServiceConfig(executor="serial"))
        clean = oracle.count_batch(queries, seed=seed)
        for label, plan in (("transient", transient), ("permanent", permanent)):
            chaos_service = CountingService(sharded, ServiceConfig(executor="serial"))
            faulted = chaos_service.count_batch(
                queries, seed=seed, fault_plan=plan, retry=CHAOS_RETRY
            )
            case.retries += faulted.retries
            case.degradations += len(faulted.degradations)
            for clean_result, chaos_result in zip(clean.results, faulted.results):
                case.compare(
                    f"shard[{num_shards}] {label} query {clean_result.index} "
                    f"({chaos_result.shard_strategy})",
                    clean_result.estimate,
                    chaos_result.estimate,
                )
    case.seconds = time.perf_counter() - started
    return case


def run_chaos_stream(seed: int, rate: float, num_events: int = 30) -> ChaosCase:
    """Twin services replay one mutation schedule; the chaos twin's
    refreshes are faulted at ``stream.refresh`` and every read must agree
    with the fault-free twin's."""
    from repro.queries import parse_query
    from repro.relational.structure import Database
    from repro.service import CountingService, ServiceConfig
    from repro.stream.workload import stream_schedule
    from repro.util.rng import as_generator

    case = ChaosCase(scenario="stream", rate=rate)
    started = time.perf_counter()

    def build_database() -> Database:
        generator = as_generator(seed + 3)
        facts = set()
        while len(facts) < 12:
            pair = tuple(int(v) for v in generator.integers(0, 10, size=2))
            if pair[0] != pair[1]:
                facts.add(pair)
        return Database.from_relations({"E": sorted(facts)})

    schedule_db = build_database()
    schedule = stream_schedule(num_events, schedule_db, num_queries=1, rng=seed + 4)
    queries = [
        parse_query("Ans(x) :- E(x, y), E(y, z)"),
        parse_query("Ans(x) :- E(x, y), E(y, z), x != z"),
    ]
    plan = uniform_plan(seed, rate, sites=("stream.refresh",))

    clean_db, chaos_db = build_database(), build_database()
    oracle = CountingService(clean_db, ServiceConfig(executor="serial"))
    twin = CountingService(
        chaos_db,
        ServiceConfig(executor="serial", fault_plan=plan, retry=CHAOS_RETRY),
    )
    clean_subs = [oracle.subscribe(query) for query in queries]
    chaos_subs = [twin.subscribe(query) for query in queries]
    for position, event in enumerate(schedule):
        if event.kind == "insert":
            clean_db.add_fact(event.relation, event.fact)
            chaos_db.add_fact(event.relation, event.fact)
        elif event.kind == "delete":
            clean_db.remove_fact(event.relation, event.fact)
            chaos_db.remove_fact(event.relation, event.fact)
        else:  # read
            for query_index, (clean_sub, chaos_sub) in enumerate(
                zip(clean_subs, chaos_subs)
            ):
                clean_read = clean_sub.read()
                chaos_read = chaos_sub.read()
                case.degradations += len(chaos_read.degradations)
                case.compare(
                    f"stream event {position} query {query_index} "
                    f"({chaos_read.mode})",
                    clean_read.estimate,
                    chaos_read.estimate,
                )
    for subscription in (*clean_subs, *chaos_subs):
        subscription.close()
    case.seconds = time.perf_counter() - started
    return case


def run_telemetry_probe(
    seed: int,
    rate: float,
    num_queries: int = 4,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> ChaosCase:
    """Telemetry under chaos: a traced + metriced faulted batch must be
    bit-identical to its untraced faulted twin, the span dump must record
    the request path, and the metrics snapshot must expose the core
    executor/cache/breaker series.

    Optionally writes the JSON-lines span dump and the Prometheus snapshot
    to ``trace_path``/``metrics_path`` (the CI chaos job uploads both as
    artifacts)."""
    from repro.obs import Tracer
    from repro.service import CountingService, ServiceConfig

    case = ChaosCase(scenario="telemetry", rate=rate)
    started = time.perf_counter()
    database, queries = _batch_workload(seed, num_queries)
    plan = uniform_plan(seed, rate, sites=("executor.task", "cache.get"))

    untraced = CountingService(database, ServiceConfig(executor="serial"))
    baseline = untraced.count_batch(queries, seed=seed, fault_plan=plan, retry=CHAOS_RETRY)

    tracer = Tracer()
    traced_service = CountingService(
        database, ServiceConfig(executor="serial", tracer=tracer)
    )
    traced = traced_service.count_batch(
        queries, seed=seed, fault_plan=plan, retry=CHAOS_RETRY
    )
    case.retries += traced.retries
    case.degradations += len(traced.degradations)
    for baseline_result, traced_result in zip(baseline.results, traced.results):
        case.compare(
            f"telemetry query {baseline_result.index} ({baseline_result.scheme})",
            baseline_result.estimate,
            traced_result.estimate,
        )

    # The span tree must actually record the request path ...
    for name in ("service.count_batch", "service.request", "executor.task", "scheme.count"):
        found = tracer.find(name)
        case.checks += 1
        if not found:
            case.mismatches.append(f"telemetry: no {name!r} span recorded")
    # ... and the metrics exposition must carry the core series.
    rendered = traced_service.metrics.render_prometheus()
    for series in (
        "repro_service_requests",
        "repro_executor_batches",
        "repro_scheme_latency_seconds",
        "repro_cache_result_hit_rate",
        "repro_breaker",
    ):
        case.checks += 1
        if series not in rendered:
            case.mismatches.append(f"telemetry: metrics snapshot lacks {series!r}")

    if trace_path:
        with open(trace_path, "w") as handle:
            text = tracer.to_jsonl()
            handle.write(text + "\n" if text else "")
    if metrics_path:
        with open(metrics_path, "w") as handle:
            handle.write(rendered)
    case.seconds = time.perf_counter() - started
    return case


def run_chaos(
    seed: int = 2022,
    rates: Sequence[float] = (0.1, 0.5, 1.0),
    smoke: bool = False,
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> ChaosReport:
    """The full harness: every scenario at every escalating fault rate, plus
    one telemetry probe at the highest rate (which writes the span/metrics
    artifacts when paths are given)."""
    if smoke:
        rates = rates[:1] or (0.1,)
    report = ChaosReport(seed=seed)
    for rate in rates:
        report.cases.append(
            run_chaos_batch(seed, rate, num_queries=3 if smoke else 6)
        )
        report.cases.append(
            run_chaos_shard(seed, rate, shard_counts=(2,) if smoke else (1, 2, 4))
        )
        report.cases.append(
            run_chaos_stream(seed, rate, num_events=15 if smoke else 30)
        )
    report.cases.append(
        run_telemetry_probe(
            seed,
            rates[-1],
            num_queries=3 if smoke else 4,
            trace_path=trace_path,
            metrics_path=metrics_path,
        )
    )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience.chaos",
        description="Replay workloads under deterministic fault injection and "
        "assert estimates equal the fault-free oracle.",
    )
    parser.add_argument("--seed", type=int, default=2022, help="fault-plan seed")
    parser.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.1, 0.5, 1.0],
        help="escalating fault rates to sweep",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="one rate, smaller workloads"
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write the telemetry probe's span dump to PATH as JSON lines "
        "(uploaded as a CI artifact by the chaos job)",
    )
    parser.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write the telemetry probe's Prometheus-style metrics snapshot "
        "to PATH",
    )
    args = parser.parse_args(argv)
    report = run_chaos(
        seed=args.seed,
        rates=tuple(args.rates),
        smoke=args.smoke,
        trace_path=args.trace,
        metrics_path=args.metrics,
    )
    for case in report.cases:
        status = "ok" if case.ok else "MISMATCH"
        print(
            f"chaos {case.scenario:<7} rate={case.rate:<4} checks={case.checks:<3} "
            f"retries={case.retries:<3} degradations={case.degradations:<3} "
            f"{case.seconds:6.2f}s  {status}"
        )
        for mismatch in case.mismatches:
            print(f"  !! {mismatch}")
    print(
        f"chaos: {report.total_checks} comparisons, "
        f"{'all bit-identical' if report.ok else 'MISMATCHES FOUND'} (seed {report.seed})"
    )
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
