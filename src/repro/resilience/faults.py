"""Deterministic fault injection: the :class:`FaultPlan`.

Every prior layer of the repo assumes workers never die, tasks never hang,
and counting calls never error.  Before shards live on other nodes and
requests arrive over a wire (ROADMAP #2/#3), the repo needs a failure model
it can *test* — and the package-wide correctness oracle is bit-identity
under equal seeds, so the failure model must be deterministic too.

A :class:`FaultPlan` is a seeded, **stateless** description of which
operations fail and how.  Each injection point in the codebase is a named
*site*:

* ``"executor.task"`` — one counting task inside
  :func:`repro.service.executor.run_tasks` (any back-end, key =
  ``(task index,)``),
* ``"shard.count"`` — one shard task of a sharded count (key =
  ``(shard, component)``; union/merged strategies use symbolic keys),
* ``"stream.refresh"`` — one refresh of a live subscription (key =
  ``(subscription ordinal, refresh index)``),
* ``"cache.get"`` — one service result-cache lookup (key =
  ``(request index,)``).

Whether a given ``(site, key)`` operation is selected is a pure function of
the plan seed, the rule, the site, and the key — computed through the same
process-stable BLAKE2 hash the shard partitioners use — so a worker process
re-evaluating the plan reaches exactly the same verdict as the parent, and
replaying a chaos run with the same plan replays the same faults.  A
selected operation faults on its first ``times`` attempts and then succeeds,
which is what lets the retry layer (:mod:`repro.resilience.retry`) recover
bit-identical results: the retried attempt re-runs under the *same* derived
seed.

Four fault kinds:

``"crash"``
    The operation dies mid-flight (:class:`InjectedCrash`) — a worker
    process being OOM-killed, a task raising from a dying interpreter.
``"error"``
    The operation raises an ordinary transient error
    (:class:`InjectedError`) — a flaky downstream dependency.
``"latency"``
    The operation is delayed by ``latency_seconds`` and then succeeds —
    a slow disk, a GC pause.
``"hang"``
    The operation stalls; the injector sleeps until the caller's timeout
    (or ``latency_seconds``, whichever is smaller) and raises
    :class:`InjectedTimeout` — a hang cut down by the watchdog.

Plans serialise to/from JSON (``--fault-plan`` on the CLI) so a chaos run
can be reproduced from its command line alone.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.util.hashing import stable_fraction

#: The named injection points threaded through the codebase.
FAULT_SITES = ("executor.task", "shard.count", "stream.refresh", "cache.get")

#: The supported failure modes.
FAULT_KINDS = ("crash", "error", "latency", "hang")

#: Key prefix type: a tuple of primitives identifying one operation at a site.
FaultKey = Tuple[Any, ...]


class FaultPlanError(ValueError):
    """A fault-plan configuration is invalid (bad site/kind/rate/JSON)."""


class FaultError(RuntimeError):
    """Base class of every injected failure.

    The retry layer treats exactly this hierarchy as transient/retryable;
    genuine task errors (bad queries, missing relations) propagate unchanged.
    """

    def __init__(self, site: str, key: FaultKey, attempt: int, kind: str) -> None:
        super().__init__(
            f"injected {kind} at {site}{list(key)} (attempt {attempt})"
        )
        self.site = site
        self.key = tuple(key)
        self.attempt = attempt
        self.kind = kind


class InjectedCrash(FaultError):
    """The operation crashed mid-flight (simulated worker death)."""


class InjectedError(FaultError):
    """The operation raised a transient error."""


class InjectedTimeout(FaultError):
    """The operation hung and was cut down at the timeout."""


@dataclass(frozen=True)
class FaultRule:
    """One injection rule: *where* (site, optional key prefix), *what*
    (kind), *how often* (rate) and *how persistently* (times).

    ``rate`` selects operations: each ``(site, key)`` pair is independently
    selected with this probability, deterministically (the coin is a hash of
    the plan seed, the rule and the key — not global mutable state, so
    worker processes agree with the parent).  ``match`` restricts the rule
    to keys with the given prefix (e.g. ``match=(0,)`` on
    ``"executor.task"`` faults exactly task 0).  A selected operation faults
    on attempts ``0 .. times-1`` and succeeds from attempt ``times`` on;
    ``times`` at or above the retry budget makes the fault permanent, which
    is what drives the degradation ladders.
    """

    site: str
    kind: str = "crash"
    rate: float = 1.0
    times: int = 1
    latency_seconds: float = 0.0
    match: Optional[Tuple[Any, ...]] = None

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise FaultPlanError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.kind not in FAULT_KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 <= self.rate <= 1.0:
            raise FaultPlanError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.times < 1:
            raise FaultPlanError(f"times must be at least 1, got {self.times}")
        if self.latency_seconds < 0:
            raise FaultPlanError("latency_seconds must be non-negative")
        if self.match is not None:
            object.__setattr__(self, "match", tuple(self.match))

    def matches_key(self, key: FaultKey) -> bool:
        return self.match is None or tuple(key)[: len(self.match)] == self.match

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "site": self.site,
            "kind": self.kind,
            "rate": self.rate,
            "times": self.times,
        }
        if self.latency_seconds:
            payload["latency_seconds"] = self.latency_seconds
        if self.match is not None:
            payload["match"] = list(self.match)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultRule":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault rule must be an object, got {payload!r}")
        known = {"site", "kind", "rate", "times", "latency_seconds", "match"}
        unknown = set(payload) - known
        if unknown:
            raise FaultPlanError(
                f"unknown fault rule field(s) {sorted(unknown)}; expected {sorted(known)}"
            )
        if "site" not in payload:
            raise FaultPlanError("fault rule needs a 'site'")
        match = payload.get("match")
        return cls(
            site=payload["site"],
            kind=payload.get("kind", "crash"),
            rate=float(payload.get("rate", 1.0)),
            times=int(payload.get("times", 1)),
            latency_seconds=float(payload.get("latency_seconds", 0.0)),
            match=None if match is None else tuple(match),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, serialisable, stateless chaos schedule.

    Frozen and built from primitives so it pickles into process-pool task
    payloads unchanged; every decision is recomputed from the seed, never
    remembered — two copies of the plan in two processes always agree.
    """

    seed: int
    rules: Tuple[FaultRule, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    # -------------------------------------------------------------- decisions
    def selection_fraction(self, rule_index: int, site: str, key: FaultKey) -> float:
        """The deterministic uniform-[0,1) coin of one (rule, operation)."""
        return stable_fraction(int(self.seed), int(rule_index), site, tuple(key))

    def decide(self, site: str, key: FaultKey, attempt: int) -> Optional[FaultRule]:
        """The first rule injecting a fault into attempt ``attempt`` of
        operation ``(site, key)``, or ``None``.  Pure: no state is consumed."""
        for rule_index, rule in enumerate(self.rules):
            if rule.site != site or not rule.matches_key(key):
                continue
            if attempt >= rule.times:
                continue
            if self.selection_fraction(rule_index, site, key) < rule.rate:
                return rule
        return None

    def apply(
        self,
        site: str,
        key: FaultKey,
        attempt: int,
        timeout_hint: Optional[float] = None,
        sleeper: Callable[[float], None] = time.sleep,
    ) -> Optional[str]:
        """Inject the planned fault for this attempt, if any.

        Raises the matching :class:`FaultError` subclass for ``crash`` /
        ``error`` / ``hang``; sleeps and returns a provenance note for
        ``latency``; returns ``None`` when the operation is clean.
        ``timeout_hint`` caps how long a ``hang`` stalls before the
        simulated watchdog cuts it (the retry layer passes its per-attempt
        timeout / remaining deadline)."""
        rule = self.decide(site, key, attempt)
        if rule is None:
            return None
        if rule.kind == "latency":
            if rule.latency_seconds > 0:
                sleeper(rule.latency_seconds)
            return (
                f"{site}{list(key)}: injected latency "
                f"{rule.latency_seconds:.3f}s (attempt {attempt})"
            )
        if rule.kind == "crash":
            raise InjectedCrash(site, key, attempt, "crash")
        if rule.kind == "error":
            raise InjectedError(site, key, attempt, "error")
        # hang: stall until the watchdog (timeout hint) cuts us down.
        stall = rule.latency_seconds
        if timeout_hint is not None:
            stall = min(stall, max(0.0, timeout_hint))
        if stall > 0:
            sleeper(stall)
        raise InjectedTimeout(site, key, attempt, "hang")

    # ---------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {"seed": self.seed, "rules": [rule.to_dict() for rule in self.rules]}

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(payload, dict):
            raise FaultPlanError(f"fault plan must be an object, got {payload!r}")
        unknown = set(payload) - {"seed", "rules"}
        if unknown:
            raise FaultPlanError(
                f"unknown fault plan field(s) {sorted(unknown)}; expected ['rules', 'seed']"
            )
        if "seed" not in payload:
            raise FaultPlanError("fault plan needs an integer 'seed'")
        try:
            seed = int(payload["seed"])
        except (TypeError, ValueError):
            raise FaultPlanError(f"fault plan seed must be an integer, got {payload['seed']!r}")
        rules = payload.get("rules", [])
        if not isinstance(rules, (list, tuple)):
            raise FaultPlanError("fault plan 'rules' must be a list")
        return cls(seed=seed, rules=tuple(FaultRule.from_dict(rule) for rule in rules))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as error:
            raise FaultPlanError(f"fault plan is not valid JSON: {error}")
        return cls.from_dict(payload)


def uniform_plan(
    seed: int,
    rate: float,
    sites: Tuple[str, ...] = FAULT_SITES,
    kind: str = "crash",
    times: int = 1,
    latency_seconds: float = 0.0,
) -> FaultPlan:
    """One rule per site at a common rate — the chaos harness's escalation
    unit (``rate`` is the knob the chaos suite turns up)."""
    return FaultPlan(
        seed=seed,
        rules=tuple(
            FaultRule(
                site=site,
                kind=kind,
                rate=rate,
                times=times,
                latency_seconds=latency_seconds,
            )
            for site in sites
        ),
    )


__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "FaultPlanError",
    "FaultError",
    "InjectedCrash",
    "InjectedError",
    "InjectedTimeout",
    "FaultRule",
    "FaultPlan",
    "uniform_plan",
]
