"""repro.resilience — the failure model: deterministic fault injection,
bounded retries with deadlines, and circuit-breaker degradation ladders.

Three pillars (see DESIGN.md "Failure model & degradation ladder"):

* :mod:`repro.resilience.faults` — seeded, stateless :class:`FaultPlan`
  injecting crashes / errors / latency / hangs at named sites,
* :mod:`repro.resilience.retry` — :class:`RetryPolicy` + deadlines; retried
  tasks re-run under the *same* derived seed, so recovery is bit-identical,
* :mod:`repro.resilience.breaker` — per-back-end :class:`CircuitBreaker`
  driving the process → thread → serial executor ladder.

The chaos harness lives in :mod:`repro.resilience.chaos` and is *not*
imported here: it drives :class:`repro.service.CountingService`, whose
executor imports this package — importing chaos from the package root would
close that cycle.  ``python -m repro.resilience.chaos`` runs it directly.
"""

from repro.resilience.breaker import (
    CLOSED,
    EXECUTOR_LADDER,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
)
from repro.resilience.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    FaultError,
    FaultPlan,
    FaultPlanError,
    FaultRule,
    InjectedCrash,
    InjectedError,
    InjectedTimeout,
    uniform_plan,
)
from repro.resilience.retry import (
    DEFAULT_RETRY_POLICY,
    Deadline,
    DeadlineExceeded,
    RetriesExhausted,
    RetryPolicy,
    RetryTrace,
    describe_sites,
    run_with_retry,
)

__all__ = [
    "FAULT_SITES",
    "FAULT_KINDS",
    "FaultPlanError",
    "FaultError",
    "InjectedCrash",
    "InjectedError",
    "InjectedTimeout",
    "FaultRule",
    "FaultPlan",
    "uniform_plan",
    "Deadline",
    "DeadlineExceeded",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryTrace",
    "DEFAULT_RETRY_POLICY",
    "run_with_retry",
    "describe_sites",
    "EXECUTOR_LADDER",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
]
