"""Circuit breakers and the executor degradation ladder.

PR 5 taught :func:`repro.service.executor.run_tasks` one ad-hoc degradation:
preflight ``multiprocessing.get_context`` and fall back to serial when the
process back-end cannot start.  This module generalises that into a
per-back-end **circuit breaker** with the classic three states:

``closed``
    The back-end is healthy; use it.
``open``
    The back-end tripped (``failure_threshold`` consecutive failures) and is
    skipped outright until ``reset_seconds`` elapse.
``half-open``
    The cool-down elapsed; the next batch is allowed one probe.  Success
    closes the breaker, failure re-opens it (and restarts the cool-down).

The **ladder** orders back-ends by how much can go wrong with them —
``process`` (workers can die) → ``thread`` (no worker death, still
parallel) → ``serial`` (always works).  :meth:`CircuitBreaker.plan_modes`
returns the rungs to try for a requested mode, skipping open breakers; the
last rung (``serial``) is never skipped, so a batch always has somewhere to
run.  Because every rung executes tasks with the same derived seeds,
degrading is invisible to the estimates — only latency and the
``degradations`` provenance change.

The breaker also owns the warn-once registry (satellite: the process-pool
unavailable warning fired once per *batch*; now once per breaker, i.e. once
per service instance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from threading import Lock
from typing import Callable, Dict, Optional, Set, Tuple

#: The degradation ladder, most-capable (and most fragile) rung first.
EXECUTOR_LADDER: Tuple[str, ...] = ("process", "thread", "serial")

#: Breaker states.
CLOSED, OPEN, HALF_OPEN = "closed", "open", "half-open"


@dataclass
class _Rung:
    consecutive_failures: int = 0
    opened_at: Optional[float] = None
    total_failures: int = 0
    total_successes: int = 0


@dataclass
class CircuitBreaker:
    """Per-back-end trip wire shared by every batch of one service instance.

    Thread-safe: the service runs batches from multiple threads against one
    breaker.  ``clock`` is injectable so tests can force cool-down expiry
    without sleeping.
    """

    failure_threshold: int = 2
    reset_seconds: float = 30.0
    ladder: Tuple[str, ...] = EXECUTOR_LADDER
    clock: Callable[[], float] = time.monotonic
    _rungs: Dict[str, _Rung] = field(default_factory=dict, repr=False)
    _warned: Set[str] = field(default_factory=set, repr=False)
    _lock: Lock = field(default_factory=Lock, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if self.reset_seconds < 0:
            raise ValueError("reset_seconds must be non-negative")
        if not self.ladder:
            raise ValueError("ladder must name at least one back-end")

    def _rung(self, mode: str) -> _Rung:
        return self._rungs.setdefault(mode, _Rung())

    # ------------------------------------------------------------------ state
    def state(self, mode: str) -> str:
        with self._lock:
            return self._state_locked(self._rung(mode))

    def _state_locked(self, rung: _Rung) -> str:
        if rung.opened_at is None:
            return CLOSED
        if self.clock() - rung.opened_at >= self.reset_seconds:
            return HALF_OPEN
        return OPEN

    def record_success(self, mode: str) -> None:
        """A batch ran cleanly on ``mode``: close its breaker."""
        with self._lock:
            rung = self._rung(mode)
            rung.consecutive_failures = 0
            rung.opened_at = None
            rung.total_successes += 1

    def record_failure(self, mode: str) -> bool:
        """A batch failed on ``mode``; returns ``True`` if the breaker
        tripped open (threshold reached, or a half-open probe failed)."""
        with self._lock:
            rung = self._rung(mode)
            probe_failed = rung.opened_at is not None
            rung.consecutive_failures += 1
            rung.total_failures += 1
            if probe_failed or rung.consecutive_failures >= self.failure_threshold:
                rung.opened_at = self.clock()
                return True
            return False

    # ----------------------------------------------------------------- ladder
    def plan_modes(self, requested: str) -> Tuple[str, ...]:
        """The rungs to try for ``requested``, healthiest-first.

        Starts at the requested rung and walks down the ladder, skipping
        back-ends whose breaker is open (half-open rungs get their probe).
        The bottom rung is always included — serial execution has no failure
        mode to trip on, so the batch always has a floor.  A requested mode
        outside the ladder (a future back-end) is tried as-is first.
        """
        if requested in self.ladder:
            rungs = self.ladder[self.ladder.index(requested):]
        else:
            rungs = (requested,) + self.ladder
        with self._lock:
            planned = tuple(
                mode
                for index, mode in enumerate(rungs)
                if index == len(rungs) - 1
                or self._state_locked(self._rung(mode)) != OPEN
            )
        return planned

    # -------------------------------------------------------------- warn-once
    def should_warn(self, token: str) -> bool:
        """``True`` exactly once per ``token`` for this breaker's lifetime —
        the once-per-service-instance warning dedupe."""
        with self._lock:
            if token in self._warned:
                return False
            self._warned.add(token)
            return True

    # ------------------------------------------------------------------ stats
    def stats(self) -> Dict[str, Dict[str, object]]:
        with self._lock:
            return {
                mode: {
                    "state": self._state_locked(rung),
                    "consecutive_failures": rung.consecutive_failures,
                    "total_failures": rung.total_failures,
                    "total_successes": rung.total_successes,
                }
                for mode, rung in sorted(self._rungs.items())
            }


__all__ = [
    "EXECUTOR_LADDER",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "CircuitBreaker",
]
