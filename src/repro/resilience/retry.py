"""Bounded retries, deadlines, and the shared retry loop.

The determinism contract: a retried attempt re-runs the *same* operation
with the *same* derived seed, so a task that crashes once and succeeds on
retry produces the exact estimate of a fault-free run.  Only injected faults
(:class:`~repro.resilience.faults.FaultError`) are treated as transient —
genuine task errors are deterministic (a bad query fails identically on
every attempt) and propagate unchanged.

Backoff jitter is deterministic too: the jittered fraction of each delay is
a stable hash of the operation's site/key/attempt, not fresh entropy, so a
chaos replay sleeps the same schedule it slept the first time.

Deadlines are absolute :func:`time.monotonic` timestamps.  On Linux the
monotonic clock is system-wide, so a deadline stamped by the service
front-end is meaningful inside pool worker processes on the same host —
which is all the current executors span (the ROADMAP's multi-node transport
will need a wire-level budget instead, and gets one honest building block
here: remaining-time propagation, checked between attempts).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.resilience.faults import FaultError, FaultKey, FaultPlan
from repro.util.hashing import stable_fraction

#: Injection points of one operation: ``((site, key), ...)``.
FaultSites = Tuple[Tuple[str, FaultKey], ...]


class RetriesExhausted(RuntimeError):
    """Every attempt of an operation faulted; carries the last fault."""

    def __init__(self, site: str, key: FaultKey, attempts: int, last: BaseException) -> None:
        super().__init__(
            f"{site}{list(key)}: {attempts} attempt(s) exhausted "
            f"({type(last).__name__}: {last})"
        )
        self.site = site
        self.key = tuple(key)
        self.attempts = attempts
        self.last = last


class DeadlineExceeded(RuntimeError):
    """The request's deadline expired before the operation completed."""


@dataclass(frozen=True)
class Deadline:
    """An absolute point on the monotonic clock a request must finish by."""

    expires_at: float

    @classmethod
    def after(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline ``seconds`` from now (``None`` stays ``None``)."""
        if seconds is None:
            return None
        if seconds <= 0:
            raise ValueError("deadline seconds must be positive")
        return cls(expires_at=time.monotonic() + float(seconds))

    def remaining(self) -> float:
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with deterministic exponential backoff.

    ``max_attempts`` counts the first try; ``timeout_seconds`` is the
    per-attempt watchdog hint handed to injected hangs (a hang sleeps at
    most this long before raising).  ``jitter`` spreads each backoff delay
    by up to that fraction, derived from the operation key — reproducible,
    unlike random jitter, yet still decorrelating distinct tasks.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_delay_seconds: float = 0.25
    jitter: float = 0.0
    timeout_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_seconds < 0 or self.max_delay_seconds < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be at least 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")

    def backoff_delay(self, attempt: int, site: str = "", key: FaultKey = ()) -> float:
        """The delay before retry number ``attempt + 1`` (deterministic)."""
        if self.base_delay_seconds <= 0:
            return 0.0
        delay = min(
            self.base_delay_seconds * (self.backoff_factor**attempt),
            self.max_delay_seconds,
        )
        if self.jitter > 0:
            delay *= 1.0 - self.jitter * stable_fraction(site, tuple(key), attempt)
        return delay


#: The policy used whenever a fault plan is active but no policy was given:
#: enough attempts to absorb the chaos harness's one-fault-per-site default.
DEFAULT_RETRY_POLICY = RetryPolicy(max_attempts=3)


@dataclass
class RetryTrace:
    """What one resilient operation went through: attempts and provenance
    notes (one human-readable string per fault seen, latency paid, or
    backoff slept)."""

    attempts: int = 1
    notes: List[str] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return self.attempts > 1


def run_with_retry(
    operation: Callable[[], Any],
    sites: FaultSites,
    policy: Optional[RetryPolicy] = None,
    plan: Optional[FaultPlan] = None,
    deadline: Optional[Deadline] = None,
    sleeper: Callable[[float], None] = time.sleep,
    retryable: Tuple[type, ...] = (FaultError,),
) -> Tuple[Any, RetryTrace]:
    """Run ``operation`` under the failure model, returning
    ``(value, trace)``.

    Before each attempt the fault plan (if any) is applied at every listed
    ``(site, key)`` injection point; a raised fault consumes one attempt,
    backs off per the policy, and retries.  Exhausting ``max_attempts``
    raises :class:`RetriesExhausted`; an expired deadline raises
    :class:`DeadlineExceeded` instead of starting another attempt.  Errors
    outside ``retryable`` propagate unchanged — determinism means genuine
    failures do not deserve retries.
    """
    if policy is None:
        policy = DEFAULT_RETRY_POLICY if plan is not None else RetryPolicy(max_attempts=1)
    primary_site, primary_key = sites[0] if sites else ("", ())
    trace = RetryTrace()
    attempt = 0
    while True:
        if deadline is not None and deadline.expired:
            raise DeadlineExceeded(
                f"{primary_site}{list(primary_key)}: deadline expired before "
                f"attempt {attempt}"
            )
        trace.attempts = attempt + 1
        try:
            if plan is not None:
                timeout_hint = policy.timeout_seconds
                if deadline is not None:
                    remaining = max(0.0, deadline.remaining())
                    timeout_hint = (
                        remaining if timeout_hint is None else min(timeout_hint, remaining)
                    )
                for site, key in sites:
                    note = plan.apply(
                        site, key, attempt, timeout_hint=timeout_hint, sleeper=sleeper
                    )
                    if note is not None:
                        trace.notes.append(note)
            return operation(), trace
        except retryable as error:
            trace.notes.append(
                f"{getattr(error, 'site', primary_site)}"
                f"{list(getattr(error, 'key', primary_key))}: "
                f"{type(error).__name__} on attempt {attempt + 1}/{policy.max_attempts}"
            )
            if attempt + 1 >= policy.max_attempts:
                raise RetriesExhausted(primary_site, primary_key, attempt + 1, error) from error
            delay = policy.backoff_delay(attempt, primary_site, primary_key)
            if deadline is not None:
                delay = min(delay, max(0.0, deadline.remaining()))
            if delay > 0:
                sleeper(delay)
                trace.notes.append(
                    f"{primary_site}{list(primary_key)}: backed off {delay:.3f}s"
                )
            attempt += 1


def describe_sites(sites: Sequence[Tuple[str, FaultKey]]) -> str:
    """A compact human-readable rendering of an operation's fault sites."""
    return ", ".join(f"{site}{list(key)}" for site, key in sites)


__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "RetriesExhausted",
    "RetryPolicy",
    "RetryTrace",
    "DEFAULT_RETRY_POLICY",
    "run_with_retry",
    "describe_sites",
    "FaultSites",
]
