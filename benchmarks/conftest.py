"""Shared helpers for the benchmark harness.

Every bench module regenerates one row/figure of the paper's "evaluation"
(the Figure-1 classification and the algorithmic theorems — see DESIGN.md's
per-experiment index).  Since the paper reports no absolute numbers, each
bench prints the qualitative series it measured (who wins, how the error and
runtime behave) in addition to the pytest-benchmark timings; EXPERIMENTS.md
summarises the outcomes.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import pytest


def print_table(title: str, header: Sequence[str], rows: Iterable[Sequence[object]]) -> None:
    """Print a small aligned table to stdout (shown with pytest -s, and kept
    in the benchmark logs)."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    header = tuple(str(cell) for cell in header)
    widths = [len(column) for column in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = " | ".join(column.ljust(width) for column, width in zip(header, widths))
    separator = "-+-".join("-" * width for width in widths)
    print(f"\n=== {title} ===")
    print(line)
    print(separator)
    for row in rows:
        print(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))


@pytest.fixture
def table_printer():
    return print_table
