"""Experiment: the Section-6 extensions — approximately uniform sampling of
answers (via self-reducibility / JVV) and Karp–Luby counting for unions of
queries.

Claims reproduced:

* approximate counting yields approximately uniform sampling: the empirical
  distribution over answers is close to uniform (total-variation distance
  reported),
* the Karp–Luby estimator for unions of (E)CQs tracks the exact union size.
"""

from __future__ import annotations

import collections

import pytest

from repro.core import count_answers_exact, enumerate_answers_exact
from repro.queries import parse_query
from repro.sampling import sample_answers
from repro.unions import approx_count_union, exact_count_union
from repro.util.estimation import relative_error
from repro.workloads import database_from_graph, erdos_renyi_graph

DATABASE = database_from_graph(erdos_renyi_graph(9, 0.35, rng=33))
QUERY = parse_query("Ans(x, y) :- E(x, z), E(z, y)")
UNION = [
    parse_query("Ans(x, y) :- E(x, y)"),
    parse_query("Ans(x, y) :- E(x, z), E(z, y)"),
]


def test_sampling_uniformity_summary(table_printer, benchmark):
    answers = sorted(enumerate_answers_exact(QUERY, DATABASE), key=repr)
    num_samples = 150
    samples = benchmark.pedantic(
        lambda: sample_answers(QUERY, DATABASE, num_samples=num_samples, rng=0, exact=True),
        rounds=1,
        iterations=1,
    )
    counts = collections.Counter(samples)
    uniform = 1.0 / len(answers)
    total_variation = 0.5 * sum(
        abs(counts.get(answer, 0) / num_samples - uniform) for answer in answers
    )
    table_printer(
        "Section 6 — sampling answers via self-reducibility",
        ["#answers", "#samples", "TV distance to uniform"],
        [[len(answers), num_samples, f"{total_variation:.3f}"]],
    )
    assert total_variation <= 0.35


def test_sampling_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: sample_answers(QUERY, DATABASE, num_samples=5, rng=1, exact=True),
        rounds=1,
        iterations=1,
    )
    assert len(result) == 5


def test_union_accuracy_summary(table_printer, benchmark):
    truth = exact_count_union(UNION, DATABASE)
    estimate = benchmark.pedantic(
        lambda: approx_count_union(
            UNION, DATABASE, epsilon=0.25, delta=0.1, rng=2, exact_components=True,
            num_samples=400,
        ),
        rounds=1,
        iterations=1,
    )
    error = relative_error(estimate, truth) if truth else 0.0
    table_printer(
        "Section 6 — Karp–Luby union counting",
        ["#queries", "exact union", "Karp–Luby estimate", "rel. error"],
        [[len(UNION), truth, f"{estimate:.1f}", f"{error:.3f}"]],
    )
    assert error <= 0.35 or abs(estimate - truth) <= 2


def test_union_runtime(benchmark):
    result = benchmark.pedantic(
        lambda: approx_count_union(
            UNION, DATABASE, epsilon=0.3, delta=0.2, rng=3, exact_components=True,
            num_samples=150,
        ),
        rounds=1,
        iterations=1,
    )
    assert result >= 0
