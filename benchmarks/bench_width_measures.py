"""Experiment: Lemma 12 / Observation 34 — the width-measure landscape that
Figure 1 is phrased in.

Claims reproduced:

* treewidth <= arity * adaptive-width - 1 (Observation 34),
* aw <= fhw <= (g)hw on every instance (the per-instance consequences of the
  domination chain of Lemma 12),
* the single-hyperedge family separates treewidth (unbounded) from the
  hypergraph measures (all 1) — the reason the unbounded-arity half of
  Figure 1 needs the finer measures.

The bench also times the width computations themselves (they are part of the
algorithms' preprocessing: Lemma 43 needs an fhw decomposition).
"""

from __future__ import annotations

import pytest

from repro.decomposition import (
    estimate_adaptive_width,
    exact_treewidth,
    fractional_hypertreewidth,
    generalized_hypertreewidth,
    width_profile,
)
from repro.hypergraph import (
    complete_graph_hypergraph,
    cycle_hypergraph,
    grid_hypergraph,
    path_hypergraph,
    star_hypergraph,
)
from repro.hypergraph.generators import single_edge_hypergraph

FAMILIES = {
    "path-8": path_hypergraph(8),
    "cycle-8": cycle_hypergraph(8),
    "star-8": star_hypergraph(8),
    "grid-3x3": grid_hypergraph(3, 3),
    "clique-6": complete_graph_hypergraph(6),
    "one-edge-arity-8": single_edge_hypergraph(8),
}


@pytest.mark.parametrize("name", list(FAMILIES))
def test_width_profile_runtime(benchmark, name):
    hypergraph = FAMILIES[name]
    profile = benchmark(lambda: width_profile(hypergraph, rng=0, adaptive_samples=4))
    assert profile.satisfies_lemma_12_chain()


def test_width_landscape_summary(table_printer, benchmark):
    profiles = benchmark.pedantic(
        lambda: {name: width_profile(h, rng=0, adaptive_samples=4) for name, h in FAMILIES.items()},
        rounds=1,
        iterations=1,
    )
    rows = []
    for name, profile in profiles.items():
        rows.append(
            [
                name,
                profile.arity,
                profile.treewidth,
                f"{profile.hypertreewidth:.1f}",
                f"{profile.fractional_hypertreewidth:.2f}",
                f"[{profile.adaptive_width.lower_bound:.2f}, "
                f"{profile.adaptive_width.upper_bound:.2f}]",
            ]
        )
        assert profile.satisfies_lemma_12_chain()
    table_printer(
        "Width measures (Figure 1 landscape / Lemma 12 / Observation 34)",
        ["family", "arity", "tw", "hw", "fhw", "aw bracket"],
        rows,
    )


@pytest.mark.parametrize(
    "name, computation",
    [
        ("treewidth", lambda h: exact_treewidth(h)),
        ("fhw", lambda h: fractional_hypertreewidth(h)[0]),
        ("ghw", lambda h: generalized_hypertreewidth(h)[0]),
        ("adaptive", lambda h: estimate_adaptive_width(h, samples=4, rng=0).upper_bound),
    ],
)
def test_individual_width_computation(benchmark, name, computation):
    hypergraph = grid_hypergraph(3, 3)
    value = benchmark(lambda: computation(hypergraph))
    assert value >= 0
