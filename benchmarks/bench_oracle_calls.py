"""Experiment: the oracle-call cost of the Lemma-22 reduction.

Theorem 17 bounds the number of EdgeFree oracle calls by
``T = Theta(log(1/delta) eps^-2 l^{6l} (log N)^{4l+7})`` — polylogarithmic in
the number of vertices ``N`` for fixed ``l``.  Our DLM substitute does not
match that worst-case bound (DESIGN.md, substitution 1), but the bench records
how the number of EdgeFree calls and Hom queries actually grows with the
database and with the number of free variables, which is the quantity a user
of the oracle framework cares about.
"""

from __future__ import annotations

import pytest

from repro.core.oracle_counting import approx_count_answers_via_oracle
from repro.queries.builders import path_query
from repro.workloads import database_from_graph, erdos_renyi_graph


def _run(num_vertices: int, num_free: int, seed: int = 0):
    graph = erdos_renyi_graph(num_vertices, 0.3, rng=seed)
    database = database_from_graph(graph)
    if num_free == 1:
        from repro.queries import parse_query

        query = parse_query("Ans(x) :- E(x, y), E(y, z)")
    else:
        query = path_query(num_free, free_endpoints_only=False)
    return approx_count_answers_via_oracle(
        query, database, epsilon=0.5, delta=0.25, rng=seed, oracle_mode="direct",
        return_statistics=True,
    )


@pytest.mark.parametrize("num_vertices", [8, 12, 16])
def test_oracle_calls_vs_database(benchmark, num_vertices):
    _, statistics = benchmark(lambda: _run(num_vertices, num_free=2))
    assert statistics.edgefree_calls > 0


def test_oracle_call_summary(table_printer, benchmark):
    results = benchmark.pedantic(
        lambda: [
            (num_vertices, num_free, _run(num_vertices, num_free))
            for num_vertices in (8, 12, 16)
            for num_free in (1, 2)
        ],
        rounds=1,
        iterations=1,
    )
    rows = []
    for num_vertices, num_free, (estimate, statistics) in results:
        rows.append(
                [
                    num_vertices,
                    num_free,
                    f"{estimate:.1f}",
                    statistics.edgefree_calls,
                    statistics.aligned_calls,
                    statistics.oracle_mode,
                ]
            )
    table_printer(
        "Lemma 22 oracle cost (EdgeFree calls)",
        ["|U(D)|", "l", "estimate", "EdgeFree calls", "aligned calls", "oracle mode"],
        rows,
    )
    assert True
