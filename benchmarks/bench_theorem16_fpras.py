"""Experiment: Figure 1, unbounded-arity CQ FPRAS cell / Theorem 16.

Claim reproduced: plain CQs with bounded fractional hypertreewidth admit an
FPRAS (strengthening Arenas et al.'s bounded-hypertreewidth result).  The
bench runs the tree-automaton pipeline (Lemmas 43, 48, 52 + the ACJR-style
counter) on bounded-fhw CQs with existential variables — the regime where
exact counting is #P-hard — and compares against the exact baseline.
"""

from __future__ import annotations

import pytest

from repro.core import count_answers_exact, fpras_count_cq
from repro.decomposition import fractional_hypertreewidth
from repro.queries import parse_query
from repro.queries.builders import high_arity_acyclic_query, path_query, star_query
from repro.util.estimation import relative_error
from repro.workloads import (
    database_from_graph,
    erdos_renyi_graph,
    random_high_arity_database,
)

EPSILON = 0.3
DELTA = 0.1


def _graph_case(name, query, size, seed):
    graph = erdos_renyi_graph(size, 0.3, rng=seed)
    return name, query, database_from_graph(graph)


CASES = [
    _graph_case("two-hop (1 existential var)", path_query(2, free_endpoints_only=True), 16, 0),
    _graph_case("three-hop (2 existential vars)", path_query(3, free_endpoints_only=True), 12, 1),
    _graph_case("star-3 (quantified centre)", star_query(3), 12, 2),
]


@pytest.mark.parametrize("name, query, database", CASES, ids=[c[0] for c in CASES])
def test_theorem16_accuracy(name, query, database, table_printer, benchmark):
    fhw, _ = fractional_hypertreewidth(query.hypergraph())
    truth = count_answers_exact(query, database)
    estimate = benchmark.pedantic(
        lambda: fpras_count_cq(query, database, EPSILON, DELTA, rng=5),
        rounds=1,
        iterations=1,
    )
    error = relative_error(estimate, truth) if truth else 0.0
    table_printer(
        f"Theorem 16 accuracy — {name}",
        ["fhw", "|U(D)|", "exact", "FPRAS", "rel. error"],
        [[f"{fhw:.1f}", len(database.universe), truth, f"{estimate:.1f}", f"{error:.3f}"]],
    )
    assert error <= 0.5 or abs(estimate - truth) <= 2


def test_theorem16_high_arity(table_printer, benchmark):
    """The case Arenas et al. do not cover directly: arity larger than 2 with
    bounded fhw (acyclic chain of arity-3 atoms)."""
    query = high_arity_acyclic_query(num_blocks=2, block_arity=3, shared=1, num_free=2)
    database = random_high_arity_database(
        universe_size=7, relation_names=["R0", "R1"], arity=3, facts_per_relation=35, rng=6
    )
    truth = count_answers_exact(query, database)
    estimate = benchmark.pedantic(
        lambda: fpras_count_cq(query, database, EPSILON, DELTA, rng=7),
        rounds=1,
        iterations=1,
    )
    error = relative_error(estimate, truth) if truth else 0.0
    table_printer(
        "Theorem 16 accuracy — arity-3 acyclic chain",
        ["fhw", "|U(D)|", "exact", "FPRAS", "rel. error"],
        [["1.0", 7, truth, f"{estimate:.1f}", f"{error:.3f}"]],
    )
    assert error <= 0.5 or abs(estimate - truth) <= 2


@pytest.mark.parametrize("size", [10, 16, 22])
def test_theorem16_runtime(benchmark, size):
    """FPRAS runtime as the database grows (fixed two-hop query)."""
    graph = erdos_renyi_graph(size, 0.3, rng=size)
    database = database_from_graph(graph)
    query = path_query(2, free_endpoints_only=True)
    result = benchmark(lambda: fpras_count_cq(query, database, EPSILON, DELTA, rng=size))
    assert result >= 0
