"""Experiment: the runtime *shape* of Theorem 5 / Theorem 16.

Claim reproduced: the approximation schemes run in time
``f(||phi||) * poly(||D||, 1/epsilon, log(1/delta))`` — i.e. for a *fixed*
query the cost grows polynomially with the database.  The bench sweeps the
database size for a fixed two-hop query and reports wall-clock times for the
FPTRAS, the FPRAS and the exact baseline so the growth curves can be compared
(who wins: approximate counting stays moderate while brute force grows with
the answer count; the crossover appears once the answer sets get large).
"""

from __future__ import annotations

import time

import pytest

from repro.core import count_answers_exact, fpras_count_cq, fptras_count_dcq
from repro.queries.builders import path_query
from repro.workloads import database_from_graph, erdos_renyi_graph

QUERY = path_query(2, free_endpoints_only=True)
SIZES = [8, 14, 20]


def _database(size: int):
    return database_from_graph(erdos_renyi_graph(size, 0.3, rng=size))


@pytest.mark.parametrize("size", SIZES)
def test_fpras_scaling_in_database(benchmark, size):
    database = _database(size)
    result = benchmark(lambda: fpras_count_cq(QUERY, database, 0.3, 0.1, rng=size))
    assert result >= 0


@pytest.mark.parametrize("size", SIZES)
def test_fptras_scaling_in_database(benchmark, size):
    database = _database(size)
    result = benchmark(lambda: fptras_count_dcq(QUERY, database, 0.4, 0.2, rng=size))
    assert result >= 0


@pytest.mark.parametrize("size", SIZES)
def test_exact_scaling_in_database(benchmark, size):
    database = _database(size)
    result = benchmark(lambda: count_answers_exact(QUERY, database))
    assert result >= 0


def test_scaling_summary(table_printer, benchmark):
    def run():
        rows = []
        for size in SIZES:
            database = _database(size)
            timings = {}
            start = time.perf_counter()
            exact = count_answers_exact(QUERY, database)
            timings["exact"] = time.perf_counter() - start
            start = time.perf_counter()
            fpras = fpras_count_cq(QUERY, database, 0.3, 0.1, rng=size)
            timings["fpras"] = time.perf_counter() - start
            start = time.perf_counter()
            fptras = fptras_count_dcq(QUERY, database, 0.4, 0.2, rng=size)
            timings["fptras"] = time.perf_counter() - start
            rows.append(
                [
                    size,
                    exact,
                    f"{fpras:.1f}",
                    f"{fptras:.1f}",
                    f"{timings['exact'] * 1000:.0f}ms",
                    f"{timings['fpras'] * 1000:.0f}ms",
                    f"{timings['fptras'] * 1000:.0f}ms",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Runtime shape — fixed two-hop query, growing database",
        ["|U(D)|", "exact", "FPRAS est.", "FPTRAS est.", "t exact", "t FPRAS", "t FPTRAS"],
        rows,
    )
    assert True
