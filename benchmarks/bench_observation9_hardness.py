"""Experiment: Figure 1, bounded-arity hard cell / Observation 9.

Claim reproduced (empirically, not as a proof): for query classes of
*unbounded treewidth* — the k-clique queries — no FPTRAS exists under rETH.
What can be demonstrated on a laptop is the mechanism behind the lower bound:
the cost of (even brute-force/backtracking) counting grows exponentially with
the clique size k, while for a bounded-treewidth family of the same size
(paths with k atoms) it stays polynomial.
"""

from __future__ import annotations

import time

import pytest

from repro.core import count_answers_exact
from repro.decomposition import exact_treewidth
from repro.queries.builders import clique_query, path_query
from repro.workloads import database_from_graph, erdos_renyi_graph


def _database(size: int, seed: int):
    return database_from_graph(erdos_renyi_graph(size, 0.5, rng=seed))


@pytest.mark.parametrize("k", [2, 3, 4])
def test_clique_query_exact_counting(benchmark, k):
    """Exact counting for the unbounded-treewidth family (k-cliques)."""
    database = _database(12, seed=k)
    query = clique_query(k)
    result = benchmark(lambda: count_answers_exact(query, database))
    assert result >= 0


@pytest.mark.parametrize("k", [2, 3, 4])
def test_path_query_exact_counting(benchmark, k):
    """Exact counting for a bounded-treewidth family of the same size."""
    database = _database(12, seed=k)
    query = path_query(k)
    result = benchmark(lambda: count_answers_exact(query, database))
    assert result >= 0


def test_treewidth_growth_summary(table_printer, benchmark):
    """The structural difference driving Observation 9: clique queries have
    treewidth k-1 (unbounded over the family), path queries have treewidth 1."""
    rows = []
    database = _database(10, seed=0)

    def run() -> None:
        rows.clear()
        _collect(rows, database)

    benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Observation 9 — unbounded vs bounded treewidth (exact counting)",
        ["k", "tw(clique_k)", "time", "count", "tw(path_k)", "time", "count"],
        rows,
    )
    assert True


def _collect(rows, database):
    for k in (2, 3, 4):
        clique = clique_query(k)
        path = path_query(k)
        start = time.perf_counter()
        clique_count = count_answers_exact(clique, database)
        clique_time = time.perf_counter() - start
        start = time.perf_counter()
        path_count = count_answers_exact(path, database)
        path_time = time.perf_counter() - start
        rows.append(
            [
                k,
                exact_treewidth(clique.hypergraph()),
                f"{clique_time * 1000:.1f}ms",
                clique_count,
                exact_treewidth(path.hypergraph()),
                f"{path_time * 1000:.1f}ms",
                path_count,
            ]
        )
