"""Experiment: the indexed, propagation-based CSP engine vs. the naive scan.

The Hom oracle (Lemma 22 / Theorems 31, 36) and every exact baseline bottom
out in the CSP engine of :mod:`repro.relational.csp`.  This bench compares
the two engines — ``engine="indexed"`` (tuple indexes, support-counting GAC,
forward checking) against ``engine="naive"`` (full table scans, fixpoint
re-scans) — on the medium configurations of ``bench_scaling_database`` and
``bench_star_queries``, asserting identical counts in every run.

``benchmarks/record_perf.py`` runs the same comparison standalone and appends
a machine-readable speedup record to ``BENCH_engine.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.applications import star_instance
from repro.core import count_answers_exact
from repro.queries.builders import path_query
from repro.relational import count_homomorphisms
from repro.relational.structure import Structure
from repro.workloads import database_from_graph, erdos_renyi_graph

pytestmark = pytest.mark.bench

TWO_HOP = path_query(2, free_endpoints_only=True)
STAR_GRAPH = erdos_renyi_graph(12, 0.3, rng=17)
ENGINES = ["indexed", "naive"]


def _database(size: int):
    return database_from_graph(erdos_renyi_graph(size, 0.3, rng=size))


@pytest.mark.parametrize("engine", ENGINES)
def test_exact_two_hop_by_engine(benchmark, engine):
    database = _database(14)
    result = benchmark(lambda: count_answers_exact(TWO_HOP, database, engine=engine))
    assert result == count_answers_exact(TWO_HOP, database, engine="naive")


@pytest.mark.parametrize("engine", ENGINES)
def test_exact_star_by_engine(benchmark, engine):
    query, database = star_instance(STAR_GRAPH, 3)
    result = benchmark(lambda: count_answers_exact(query, database, engine=engine))
    assert result == count_answers_exact(query, database, engine="naive")


@pytest.mark.parametrize("engine", ENGINES)
def test_hom_counting_by_engine(benchmark, engine):
    source = Structure.from_graph([(0, 1), (1, 2), (2, 3), (0, 3)])
    target = _database(14)
    result = benchmark(lambda: count_homomorphisms(source, target, engine=engine))
    assert result == count_homomorphisms(source, target, engine="naive")


def test_engine_summary(table_printer, benchmark):
    """One row per configuration: naive vs indexed wall clock and speedup,
    with count equality checked in-bench."""

    def run():
        rows = []
        configs = [
            ("two-hop |U|=14", lambda e: count_answers_exact(TWO_HOP, _database(14), engine=e)),
            ("two-hop |U|=20", lambda e: count_answers_exact(TWO_HOP, _database(20), engine=e)),
        ]
        for k in (3, 4):
            query, database = star_instance(STAR_GRAPH, k)
            configs.append(
                (f"star k={k}", lambda e, q=query, d=database: count_answers_exact(q, d, engine=e))
            )
        for name, call in configs:
            start = time.perf_counter()
            naive = call("naive")
            naive_time = time.perf_counter() - start
            start = time.perf_counter()
            indexed = call("indexed")
            indexed_time = time.perf_counter() - start
            assert naive == indexed
            rows.append(
                [
                    name,
                    naive,
                    f"{naive_time * 1000:.0f}ms",
                    f"{indexed_time * 1000:.0f}ms",
                    f"{naive_time / indexed_time:.1f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_printer(
        "Indexed vs naive CSP engine (identical counts asserted)",
        ["config", "count", "t naive", "t indexed", "speedup"],
        rows,
    )
    assert True
