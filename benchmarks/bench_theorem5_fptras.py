"""Experiment: Figure 1, bounded-arity tractable cell / Theorem 5.

Claim reproduced: for ECQs whose hypergraphs have bounded treewidth and arity,
the FPTRAS of Theorem 5 computes (epsilon, delta)-approximations of
|Ans(phi, D)| whose accuracy tracks the exact count, at a cost that does not
explode with the database (the f(||phi||) factor is paid once per query).

The bench runs the FPTRAS and the exact baseline on seeded Erdős–Rényi
databases for three bounded-treewidth ECQ shapes (the introduction's friends
query, a two-hop query with a disequality, and a star query with pairwise
distinct leaves) and reports count, estimate and relative error.
"""

from __future__ import annotations

import pytest

from repro.core import count_answers_exact, fptras_count_ecq
from repro.queries import parse_query
from repro.queries.builders import friends_query, star_query
from repro.relational import Database
from repro.util.estimation import relative_error
from repro.workloads import database_from_graph, erdos_renyi_graph

EPSILON = 0.4
DELTA = 0.2


def _friends_database(num_people: int, seed: int) -> Database:
    graph = erdos_renyi_graph(num_people, 0.25, rng=seed)
    return database_from_graph(graph, relation="F")


CASES = [
    ("friends (intro example)", friends_query(), "F", 14),
    ("two-hop with disequality", parse_query("Ans(x, y) :- E(x, z), E(z, y), x != y"), "E", 12),
    ("star-3 distinct leaves", star_query(3, with_disequalities=True), "E", 10),
]


@pytest.mark.parametrize("name, query, relation, size", CASES, ids=[c[0] for c in CASES])
def test_theorem5_accuracy(name, query, relation, size, table_printer, benchmark):
    """Accuracy of the Theorem-5 FPTRAS against the exact count."""
    graph = erdos_renyi_graph(size, 0.3, rng=hash(name) % 1000)
    database = database_from_graph(graph, relation=relation)
    truth = count_answers_exact(query, database)
    estimate = benchmark.pedantic(
        lambda: fptras_count_ecq(query, database, EPSILON, DELTA, rng=1),
        rounds=1,
        iterations=1,
    )
    error = relative_error(estimate, truth) if truth else 0.0
    table_printer(
        f"Theorem 5 accuracy — {name}",
        ["query class", "treewidth", "|U(D)|", "exact", "FPTRAS", "rel. error"],
        [[query.query_class().value, 1, size, truth, f"{estimate:.1f}", f"{error:.3f}"]],
    )
    assert error <= 0.6 or abs(estimate - truth) <= 2


@pytest.mark.parametrize("size", [8, 12, 16])
def test_theorem5_fptras_runtime(benchmark, size):
    """Runtime of the FPTRAS as the database grows (fixed query)."""
    graph = erdos_renyi_graph(size, 0.3, rng=size)
    database = database_from_graph(graph, relation="F")
    query = friends_query()

    result = benchmark(
        lambda: fptras_count_ecq(query, database, EPSILON, DELTA, rng=size)
    )
    assert result >= 0


@pytest.mark.parametrize("size", [8, 12, 16])
def test_exact_baseline_runtime(benchmark, size):
    """Exact-counting baseline on the same instances (for comparison)."""
    graph = erdos_renyi_graph(size, 0.3, rng=size)
    database = database_from_graph(graph, relation="F")
    query = friends_query()
    result = benchmark(lambda: count_answers_exact(query, database))
    assert result >= 0
